//! Parallel execution plumbing for the search engines.
//!
//! [`ExecContext`] bundles the three `hi-exec` pieces — thread pool,
//! cancellation token and (through [`SharedSimEvaluator`]) the shared
//! evaluation cache — behind one handle that every batch entry point
//! (`exhaustive_search_par`, `explore_par`, `simulated_annealing_restarts`,
//! `explore_tradeoff_par`) accepts. A context built with `threads <= 1`
//! spawns no pool at all and runs the exact sequential code path, so the
//! parallel entry points strictly generalize the sequential ones.

use hi_exec::{CancelToken, EvalError, ThreadPool};
use hi_trace::{wellknown as wk, Collector};

use crate::evaluator::{Evaluation, PointEvaluator};
use crate::point::DesignPoint;

/// Execution resources for the batch search entry points.
#[derive(Debug)]
pub struct ExecContext {
    pool: Option<ThreadPool>,
    cancel: CancelToken,
    collector: Collector,
}

impl ExecContext {
    /// A context with `threads` workers. `threads <= 1` means strictly
    /// sequential: no pool is spawned and evaluations run on the calling
    /// thread in input order.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: (threads > 1).then(|| ThreadPool::new(threads)),
            cancel: CancelToken::new(),
            collector: Collector::disabled(),
        }
    }

    /// The strictly sequential context.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A context sized by [`hi_exec::default_threads`] (the
    /// `HI_EXEC_THREADS` environment variable, else the machine's
    /// available parallelism).
    pub fn from_env() -> Self {
        Self::new(hi_exec::default_threads())
    }

    /// Worker threads evaluations run on (1 for the sequential context).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ThreadPool::threads)
    }

    /// A clone of the context's cancellation token; cancelling it makes
    /// every engine running under this context stop between evaluations
    /// and report [`StopReason::Cancelled`](crate::StopReason::Cancelled)
    /// (or return its current partial result).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether the context has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Attaches a tracing/metrics collector. Every batch fanned out
    /// through this context opens a fresh collector epoch and records
    /// work item `i` on lane `i + 1`, so trace layout is identical for
    /// every thread count (see `hi-trace`'s module docs).
    #[must_use]
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// The context's collector (disabled unless set via
    /// [`with_collector`](Self::with_collector)).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Folds the thread pool's lifetime statistics (tasks run, steals,
    /// park/unpark episodes) into the collector's metrics registry.
    ///
    /// The pool counts are cumulative totals, so call this once, when the
    /// run is over. No-op for disabled collectors and for sequential
    /// contexts (which have no pool).
    pub fn flush_pool_stats(&self) {
        let (Some(registry), Some(pool)) = (self.collector.registry(), &self.pool) else {
            return;
        };
        let stats = pool.stats();
        registry.add(wk::EXEC_TASKS_RUN, stats.tasks_run);
        registry.add(wk::EXEC_STEALS, stats.steals);
        registry.add(wk::EXEC_PARKS, stats.parks);
        registry.add(wk::EXEC_UNPARKS, stats.unparks);
    }

    /// Applies `f` to every item — on the pool if there is one, else
    /// sequentially in input order — returning results in input order.
    /// `None` marks items skipped after cancellation; without
    /// cancellation every slot is `Some` regardless of thread count.
    pub(crate) fn map_cancellable<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Option<R>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let mut batch_span = hi_trace::span("exec.batch");
        if batch_span.is_recording() {
            batch_span.arg("items", items.len() as u64);
            batch_span.arg("threads", self.threads() as u64);
        }
        let batch = self.collector.open_batch();
        let epoch = batch.as_ref().map(hi_trace::BatchToken::epoch);
        let collector = self.collector.clone();
        let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        let run_one = move |(i, item): (usize, T)| {
            let _lane = epoch.map(|e| collector.install(e, lane_for(i)));
            f(item)
        };
        match &self.pool {
            None => indexed
                .into_iter()
                .map(|it| (!self.cancel.is_cancelled()).then(|| run_one(it)))
                .collect(),
            Some(pool) => pool.par_map_cancellable(indexed, self.cancel.clone(), run_one),
        }
    }

    /// Evaluates `points` against `evaluator`, returning evaluations in
    /// input order. `None` marks points skipped after cancellation;
    /// without cancellation every slot is `Some`, bit-identical for every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics on the first point whose evaluation fails; use
    /// [`try_eval_points`](Self::try_eval_points) on paths that must
    /// survive broken points.
    pub fn eval_points<P: PointEvaluator>(
        &self,
        evaluator: &P,
        points: &[DesignPoint],
    ) -> Vec<Option<Evaluation>> {
        self.try_eval_points(evaluator, points)
            .into_iter()
            .zip(points)
            .map(|(slot, point)| {
                slot.map(|r| match r {
                    Ok(eval) => eval,
                    Err(e) => panic!("evaluation of {point} failed: {e}"),
                })
            })
            .collect()
    }

    /// [`eval_points`](Self::eval_points), hardened: a failing (or
    /// panicking) evaluation degrades to a per-slot [`EvalError`] instead
    /// of aborting the batch. Both execution paths catch panics, so the
    /// slot-level results are bit-identical for every thread count.
    pub fn try_eval_points<P: PointEvaluator>(
        &self,
        evaluator: &P,
        points: &[DesignPoint],
    ) -> Vec<Option<Result<Evaluation, EvalError>>> {
        let evaluator = evaluator.clone();
        let mut batch_span = hi_trace::span("exec.batch");
        if batch_span.is_recording() {
            batch_span.arg("items", points.len() as u64);
            batch_span.arg("threads", self.threads() as u64);
        }
        let batch = self.collector.open_batch();
        let epoch = batch.as_ref().map(hi_trace::BatchToken::epoch);
        let collector = self.collector.clone();
        let eval_one = move |(i, p): (usize, DesignPoint)| {
            let _lane = epoch.map(|e| collector.install(e, lane_for(i)));
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| evaluator.try_eval(&p)))
                .unwrap_or_else(|payload| Err(EvalError::from_panic(payload.as_ref())))
        };
        let indexed: Vec<(usize, DesignPoint)> = points.iter().copied().enumerate().collect();
        match &self.pool {
            None => indexed
                .into_iter()
                .map(|it| (!self.cancel.is_cancelled()).then(|| eval_one(it)))
                .collect(),
            Some(pool) => pool.par_map_catching(indexed, self.cancel.clone(), eval_one),
        }
    }
}

/// Trace lane for work item `i` of a batch: lane 0 belongs to the driving
/// thread, so items start at 1. Lanes saturate rather than wrap — batches
/// anywhere near `u32::MAX` items are far beyond this workspace's sizes,
/// and saturation keeps the key order monotone even then.
fn lane_for(i: usize) -> u32 {
    u32::try_from(i.saturating_add(1)).unwrap_or(u32::MAX)
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimProtocol;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_des::SimDuration;
    use hi_net::TxPower;

    fn points() -> Vec<DesignPoint> {
        TxPower::ALL
            .iter()
            .map(|&tx_power| DesignPoint {
                placement: Placement::from_indices([0, 1, 3, 5]),
                tx_power,
                mac: MacChoice::Tdma,
                routing: RouteChoice::Star,
            })
            .collect()
    }

    #[test]
    fn sequential_context_has_no_pool() {
        let ctx = ExecContext::sequential();
        assert_eq!(ctx.threads(), 1);
        let ctx = ExecContext::new(0);
        assert_eq!(ctx.threads(), 1);
    }

    #[test]
    fn eval_points_is_thread_count_invariant() {
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 17);
        let run = |threads: usize| {
            let ctx = ExecContext::new(threads);
            let ev = protocol.shared_evaluator();
            ctx.eval_points(&ev, &points())
        };
        let sequential = run(1);
        assert!(sequential.iter().all(Option::is_some));
        assert_eq!(sequential, run(4));
    }

    #[test]
    fn cancelled_context_skips_sequential_work() {
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 17);
        let ctx = ExecContext::sequential();
        ctx.cancel_token().cancel();
        assert!(ctx.is_cancelled());
        let ev = protocol.shared_evaluator();
        let out = ctx.eval_points(&ev, &points());
        assert!(out.iter().all(Option::is_none));
        assert_eq!(ev.cache_len(), 0);
    }
}
