//! Experiment E7 (extension): posture sensitivity of the selected
//! designs. The measurement dataset behind the paper captures daily
//! activity; this harness shows how the star and mesh optima hold up in
//! each posture and under a realistic activity mix — the "high temporal
//! variations of the WBAN channel" that §1 cites as a design driver.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_posture
//! ```

use hi_bench::ExpOptions;
use hi_channel::posture::{FixedPostureChannel, Posture, PostureParams, PosturedChannel};
use hi_channel::{BodyLocation, ChannelParams};
use hi_net::{simulate, MacKind, NetworkConfig, Routing, TxPower};

fn main() {
    let opts = ExpOptions::from_args();
    let placements = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
    ];
    let configs = [
        (
            "Star 0dBm",
            NetworkConfig::new(
                placements.clone(),
                TxPower::ZeroDbm,
                MacKind::tdma(),
                Routing::Star { coordinator: 0 },
            ),
        ),
        (
            "Mesh 0dBm",
            NetworkConfig::new(
                placements.clone(),
                TxPower::ZeroDbm,
                MacKind::tdma(),
                Routing::mesh(),
            ),
        ),
    ];
    println!("# Experiment E7: PDR per posture (4-node designs, TDMA)");
    print!("{:<12}", "design");
    for p in Posture::ALL {
        print!("\t{p}");
    }
    println!("\tactivity-mix");
    for (label, cfg) in &configs {
        print!("{label:<12}");
        for posture in Posture::ALL {
            let ch = FixedPostureChannel::new(ChannelParams::default(), posture, opts.seed);
            let out = simulate(cfg, ch, opts.t_sim, opts.seed).expect("valid");
            print!("\t{:.1}%", out.pdr_percent());
        }
        let ch = PosturedChannel::new(
            ChannelParams::default(),
            PostureParams::default(),
            opts.seed,
        );
        let out = simulate(cfg, ch, opts.t_sim, opts.seed).expect("valid");
        println!("\t{:.1}%", out.pdr_percent());
    }
    println!("\n# limb links suffer while sitting/lying; the mesh's redundant");
    println!("# relays absorb most of the posture penalty the star pays in full.");
}
