//! Static validation of fleet user profiles and of the serving daemon's
//! own configuration.
//!
//! The `hi-serve` profile parser is deliberately *total over semantics*:
//! it rejects malformed text (non-numeric fields, unknown keywords,
//! trailing junk) but accepts any finite number, because a profile that
//! *parses* and a profile that *makes sense* are different questions —
//! and the second one belongs here, where every front end (daemon
//! startup, `hi-opt lint`, tests) gets the same answer:
//!
//! * **HL042** — a user profile is structurally broken (error): an empty
//!   or duplicated profile id, a traffic mix that generates nothing
//!   (rate ≤ 0), a reliability floor outside `[0, 1]`, a non-positive
//!   body-geometry scale, or zero replications. Running such a profile
//!   would compute garbage, so the daemon bounces the submission with
//!   the findings instead of a job id.
//! * **HL043** — the daemon configuration is broken (error): a job
//!   queue with capacity zero (every submission would bounce), or a
//!   per-job DES event budget below the warm-up floor (every job would
//!   trip its logical deadline before a single packet crosses the
//!   network — same floor as HL038's supervision check).
//!
//! Like the rest of the crate this module is dependency-free: `hi-serve`
//! lowers parsed profiles into [`ProfileSpec`]s and its configuration
//! into a [`ServerSpec`].

use crate::report::{Finding, Report, RuleId, Span};

/// One fleet user profile, lowered to the numbers the rules need.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// The profile's id (empty ids are representable and a finding).
    pub id: String,
    /// Application packet generation rate, packets per second.
    pub packets_per_second: f64,
    /// Reliability floor `PDRmin` the exploration runs against.
    pub pdr_min: f64,
    /// Body-geometry scale factor applied to every link distance.
    pub geometry_scale: f64,
    /// Simulation replications averaged per evaluation.
    pub runs: u32,
}

/// The serving daemon's configuration, lowered to plain numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSpec {
    /// Maximum number of queued-or-running jobs admitted at once.
    pub queue_capacity: usize,
    /// Per-replication DES event budget applied to every job, if any.
    pub job_max_events: Option<u64>,
    /// The DES warm-up floor (`hi_core::warmup_events_floor()`): below
    /// this many events not even the largest topology's node-powerup
    /// events have all dispatched.
    pub warmup_events_floor: u64,
}

/// Lints a batch of fleet user profiles (rule HL042).
pub fn lint_profile(specs: &[ProfileSpec]) -> Report {
    let mut report = Report::new();
    for (index, spec) in specs.iter().enumerate() {
        let span = || Span::Profile {
            id: spec.id.clone(),
        };
        if spec.id.is_empty() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "profile #{index} has an empty id — results could \
                     never be routed back to a user"
                ),
            ));
        } else if let Some(first) = specs[..index].iter().position(|p| p.id == spec.id) {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "duplicate profile id (also profile #{first}) — \
                     results for the two submissions would be \
                     indistinguishable"
                ),
            ));
        }
        if spec.packets_per_second <= 0.0 || spec.packets_per_second.is_nan() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "traffic mix generates nothing ({} packet(s)/s) — \
                     PDR over zero packets is undefined",
                    spec.packets_per_second
                ),
            ));
        }
        if !(0.0..=1.0).contains(&spec.pdr_min) || spec.pdr_min.is_nan() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "PDRmin {} outside [0, 1] — a delivery ratio can \
                     never satisfy it (or always does, vacuously)",
                    spec.pdr_min
                ),
            ));
        }
        if spec.geometry_scale <= 0.0 || !spec.geometry_scale.is_finite() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "body-geometry scale {} is not a positive finite \
                     number — link distances would be zero or negative",
                    spec.geometry_scale
                ),
            ));
        }
        if spec.runs == 0 {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                "0 simulation replications — every evaluation would \
                 average an empty sample",
            ));
        }
    }
    report
}

/// Lints the serving daemon's configuration (rule HL043).
pub fn lint_server(spec: &ServerSpec) -> Report {
    let mut report = Report::new();
    if spec.queue_capacity == 0 {
        report.push(Finding::new(
            RuleId::ServeMisconfigured,
            Span::Model,
            "job queue configured with capacity 0 — every submission \
             would be bounced before a single job runs",
        ));
    }
    if let Some(budget) = spec.job_max_events {
        if budget < spec.warmup_events_floor {
            report.push(Finding::new(
                RuleId::ServeMisconfigured,
                Span::Model,
                format!(
                    "per-job event budget {budget} is below the DES \
                     warm-up floor {} — every job would trip its \
                     deadline before simulating a single packet",
                    spec.warmup_events_floor
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> ProfileSpec {
        ProfileSpec {
            id: "alice".into(),
            packets_per_second: 10.0,
            pdr_min: 0.9,
            geometry_scale: 1.0,
            runs: 3,
        }
    }

    #[test]
    fn a_sane_profile_batch_is_clean() {
        let specs = vec![
            sane(),
            ProfileSpec {
                id: "bob".into(),
                ..sane()
            },
        ];
        assert!(lint_profile(&specs).is_clean());
        assert!(lint_profile(&[]).is_clean());
    }

    #[test]
    fn hl042_fires_on_each_broken_field() {
        let report = lint_profile(&[ProfileSpec {
            id: String::new(),
            ..sane()
        }]);
        assert!(report.has_rule(RuleId::ProfileInvalid));
        assert!(report.has_errors(), "HL042 is an error");
        assert!(report.to_string().contains("empty id"), "{report}");

        let report = lint_profile(&[sane(), sane()]);
        assert_eq!(report.error_count(), 1, "only the later copy fires");
        assert!(report.to_string().contains("duplicate profile id"));

        let report = lint_profile(&[ProfileSpec {
            packets_per_second: 0.0,
            ..sane()
        }]);
        assert!(report.to_string().contains("generates nothing"));

        let report = lint_profile(&[ProfileSpec {
            pdr_min: 1.5,
            ..sane()
        }]);
        assert!(report.to_string().contains("outside [0, 1]"));
        assert!(!lint_profile(&[ProfileSpec {
            pdr_min: f64::NAN,
            ..sane()
        }])
        .is_clean());

        let report = lint_profile(&[ProfileSpec {
            geometry_scale: 0.0,
            ..sane()
        }]);
        assert!(report.to_string().contains("geometry"), "{report}");

        let report = lint_profile(&[ProfileSpec { runs: 0, ..sane() }]);
        assert!(report.to_string().contains("replications"));
    }

    #[test]
    fn hl042_findings_accumulate_per_profile() {
        let report = lint_profile(&[ProfileSpec {
            id: String::new(),
            packets_per_second: -1.0,
            pdr_min: 2.0,
            geometry_scale: f64::INFINITY,
            runs: 0,
        }]);
        assert_eq!(report.error_count(), 5);
    }

    #[test]
    fn hl043_fires_on_server_misconfiguration() {
        let sane = ServerSpec {
            queue_capacity: 64,
            job_max_events: Some(1_000_000),
            warmup_events_floor: 11,
        };
        assert!(lint_server(&sane).is_clean());
        assert!(lint_server(&ServerSpec {
            job_max_events: None,
            ..sane
        })
        .is_clean());

        let report = lint_server(&ServerSpec {
            queue_capacity: 0,
            ..sane
        });
        assert!(report.has_rule(RuleId::ServeMisconfigured));
        assert!(report.has_errors(), "HL043 is an error");

        let report = lint_server(&ServerSpec {
            job_max_events: Some(10),
            ..sane
        });
        assert!(report.to_string().contains("warm-up floor 11"), "{report}");

        let report = lint_server(&ServerSpec {
            queue_capacity: 0,
            job_max_events: Some(3),
            ..sane
        });
        assert_eq!(report.error_count(), 2);
    }
}
