//! End-to-end smoke tests of the `hi-opt` CLI binary.

use std::process::Command;

fn hi_opt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hi-opt"))
}

#[test]
fn space_prints_the_design_space() {
    let out = hi_opt().arg("space").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("feasible placements  : 110"));
    assert!(text.contains("feasible points      : 1320"));
    assert!(text.contains("12288"));
}

#[test]
fn help_exits_zero() {
    let out = hi_opt().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = hi_opt().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_runs_an_explicit_config() {
    let out = hi_opt()
        .args([
            "simulate",
            "--sites",
            "0,1,3,5",
            "--power",
            "0",
            "--mac",
            "tdma",
            "--routing",
            "star",
            "--tsim",
            "5",
            "--runs",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PDR"));
    assert!(text.contains("lifetime"));
    assert!(text.contains("Star TDMA 0dBm"));
}

#[test]
fn simulate_rejects_star_without_chest() {
    let out = hi_opt()
        .args([
            "simulate",
            "--sites",
            "1,3,5",
            "--power",
            "0",
            "--mac",
            "tdma",
            "--routing",
            "star",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("chest"));
}

#[test]
fn explore_finds_an_optimum_quickly() {
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.6", "--tsim", "5", "--runs", "1"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal design"));
    assert!(text.contains("simulations"));
}

#[test]
fn lint_runs_clean_on_paper_scenario() {
    let out = hi_opt().arg("lint").output().expect("binary runs");
    assert!(
        out.status.success(),
        "lint must find zero error-severity issues; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("configuration space"));
    assert!(text.contains("cut ladder"));
    assert!(text.contains("event schedule sample"));
    assert!(text.contains("summary: 0 error(s)"), "{text}");
}

#[test]
fn lint_rejects_unknown_options() {
    let out = hi_opt()
        .args(["lint", "--frobnicate", "1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn explore_validates_pdr_min() {
    let out = hi_opt()
        .args(["explore", "--pdr-min", "1.7"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}

#[test]
fn robust_without_faults_is_a_usage_error() {
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.6", "--robust", "worst"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--faults"));
}

#[test]
fn missing_fault_suite_is_an_io_error() {
    let out = hi_opt()
        .args([
            "explore",
            "--pdr-min",
            "0.6",
            "--faults",
            "/definitely/not/here.suite",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "unreadable files exit 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn malformed_fault_suite_is_a_spec_error_with_line_numbers() {
    let dir = std::env::temp_dir();
    let path = dir.join("hi_opt_smoke_bad.suite");
    std::fs::write(&path, "scenario bad\noutage 5 nine 2\n").expect("tmp write");
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.6"])
        .arg("--faults")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4), "malformed specs exit 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains(":2:"));
}

#[test]
fn inverted_fault_window_fails_suite_lint() {
    let dir = std::env::temp_dir();
    let path = dir.join("hi_opt_smoke_inverted.suite");
    std::fs::write(&path, "scenario inverted\noutage 5 9 2\n").expect("tmp write");
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.6", "--tsim", "5", "--runs", "1"])
        .arg("--faults")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&out.stderr).contains("HL033"));
}

#[test]
fn robust_explore_reports_the_fault_scorecard() {
    let dir = std::env::temp_dir();
    let path = dir.join("hi_opt_smoke_ok.suite");
    std::fs::write(&path, "scenario wrist nap\noutage 5 1 3\n").expect("tmp write");
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.5", "--tsim", "2", "--runs", "1"])
        .arg("--faults")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fault suite    : 1 scenario(s), worst-case aggregation"));
    assert!(text.contains("nominal PDR"));
    assert!(text.contains("worst PDR"));
}

#[test]
fn corrupt_checkpoint_is_a_spec_error() {
    let dir = std::env::temp_dir();
    let path = dir.join("hi_opt_smoke_corrupt.ckpt");
    std::fs::write(&path, "not a checkpoint\n").expect("tmp write");
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.6", "--resume"])
        .arg("--checkpoint")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn budget_checkpoint_resume_matches_a_straight_run() {
    let dir = std::env::temp_dir();
    let path = dir.join("hi_opt_smoke_resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let common = ["--pdr-min", "0.6", "--tsim", "2", "--runs", "1"];
    let straight = hi_opt()
        .arg("explore")
        .args(common)
        .output()
        .expect("binary runs");
    assert!(straight.status.success());
    let partial = hi_opt()
        .arg("explore")
        .args(common)
        .args(["--budget", "10"])
        .arg("--checkpoint")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(partial.status.success());
    assert!(String::from_utf8_lossy(&partial.stdout).contains("BudgetExhausted"));
    let resumed = hi_opt()
        .arg("explore")
        .args(common)
        .arg("--resume")
        .arg("--checkpoint")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&straight.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "a resumed run must print byte-identical stdout"
    );
}
