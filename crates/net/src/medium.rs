//! Shared-medium arbitration: concurrent transmissions and collisions.
//!
//! The body-area network shares a single wireless channel. A transmission
//! is *audible* at a receiver when the link budget closes at transmission
//! start (`TxdBm ≥ RxdBm + PL(i,j,t)`). Two audible transmissions that
//! overlap in time at the same receiver corrupt each other there (no
//! capture effect). A node that starts transmitting while a reception is
//! in progress loses that reception (half-duplex radio).
//!
//! Corruption is applied *eagerly* when the second transmission starts, so
//! no interval history is needed; at `end_tx` the surviving receptions are
//! handed to the protocol stack.

use hi_des::SimTime;

use crate::packet::Packet;

/// The outcome of one reception attempt at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reception {
    /// Receiving node index.
    pub receiver: usize,
    /// Whether an overlapping transmission (or the receiver's own
    /// transmission) corrupted this reception.
    pub corrupted: bool,
}

#[derive(Debug)]
struct ActiveTx {
    tx: usize,
    packet: Packet,
    #[allow(dead_code)] // retained for debugging/tracing
    start: SimTime,
    receptions: Vec<Reception>,
}

/// The shared channel's bookkeeping of in-flight transmissions.
#[derive(Debug, Default)]
pub struct Medium {
    active: Vec<ActiveTx>,
    collisions: u64,
}

impl Medium {
    /// An idle medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node indices currently transmitting.
    pub fn active_transmitters(&self) -> impl Iterator<Item = usize> + '_ {
        self.active.iter().map(|a| a.tx)
    }

    /// `(transmitter, start time)` of each in-flight transmission —
    /// persistent CSMA uses this to re-sense exactly when the channel
    /// frees.
    pub fn active_transmissions(&self) -> impl Iterator<Item = (usize, SimTime)> + '_ {
        self.active.iter().map(|a| (a.tx, a.start))
    }

    /// Number of in-flight transmissions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total receptions corrupted by collisions so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Registers a transmission starting now.
    ///
    /// `audible` lists the receivers whose link budget closes for this
    /// transmission (already excluding nodes that are themselves
    /// transmitting). Overlap corruption with concurrently active
    /// transmissions is applied immediately, in both directions.
    ///
    /// # Panics
    ///
    /// Panics if `tx` already has an active transmission.
    pub fn start_tx(&mut self, tx: usize, packet: Packet, start: SimTime, audible: &[usize]) {
        assert!(
            self.active.iter().all(|a| a.tx != tx),
            "node {tx} started a transmission while already transmitting"
        );
        let mut receptions: Vec<Reception> = audible
            .iter()
            .map(|&receiver| Reception {
                receiver,
                corrupted: false,
            })
            .collect();
        for a in &mut self.active {
            // The new transmitter abandons any reception in progress.
            for r in &mut a.receptions {
                if r.receiver == tx && !r.corrupted {
                    r.corrupted = true;
                    self.collisions += 1;
                }
            }
            // Mutual corruption wherever both transmissions are audible.
            for new_r in &mut receptions {
                if let Some(old_r) = a
                    .receptions
                    .iter_mut()
                    .find(|r| r.receiver == new_r.receiver)
                {
                    if !old_r.corrupted {
                        old_r.corrupted = true;
                        self.collisions += 1;
                    }
                    if !new_r.corrupted {
                        new_r.corrupted = true;
                        self.collisions += 1;
                    }
                }
            }
        }
        self.active.push(ActiveTx {
            tx,
            packet,
            start,
            receptions,
        });
    }

    /// Completes `tx`'s transmission, returning the packet and the final
    /// reception outcomes (corrupted and clean alike — the radio spent
    /// receive energy either way).
    ///
    /// # Panics
    ///
    /// Panics if `tx` has no active transmission.
    pub fn end_tx(&mut self, tx: usize) -> (Packet, Vec<Reception>) {
        let idx = self
            .active
            .iter()
            .position(|a| a.tx == tx)
            .unwrap_or_else(|| panic!("node {tx} has no active transmission to end"));
        let a = self.active.swap_remove(idx);
        (a.packet, a.receptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(origin: usize) -> Packet {
        Packet::new(origin, 0)
    }

    #[test]
    fn single_tx_delivers_clean() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[1, 2]);
        let (_, recs) = m.end_tx(0);
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| !r.corrupted));
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn overlapping_txs_corrupt_shared_receivers() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[2, 3]);
        m.start_tx(1, pkt(1), SimTime::from_nanos(10), &[2]);
        let (_, r0) = m.end_tx(0);
        let (_, r1) = m.end_tx(1);
        // Receiver 2 hears both -> both corrupted there; 3 hears only tx0.
        assert!(r0.iter().find(|r| r.receiver == 2).unwrap().corrupted);
        assert!(!r0.iter().find(|r| r.receiver == 3).unwrap().corrupted);
        assert!(r1.iter().find(|r| r.receiver == 2).unwrap().corrupted);
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn disjoint_receivers_do_not_collide() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[2]);
        m.start_tx(1, pkt(1), SimTime::ZERO, &[3]);
        let (_, r0) = m.end_tx(0);
        let (_, r1) = m.end_tx(1);
        assert!(!r0[0].corrupted);
        assert!(!r1[0].corrupted);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn transmitter_loses_reception_in_progress() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[1]);
        // Node 1 starts its own transmission mid-reception.
        m.start_tx(1, pkt(1), SimTime::from_nanos(5), &[2]);
        let (_, r0) = m.end_tx(0);
        assert!(r0[0].corrupted);
        // Node 1's own transmission to 2 is unaffected.
        let (_, r1) = m.end_tx(1);
        assert!(!r1[0].corrupted);
    }

    #[test]
    fn sequential_txs_do_not_interact() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[1]);
        let (_, r0) = m.end_tx(0);
        m.start_tx(1, pkt(1), SimTime::from_nanos(100), &[0]);
        let (_, r1) = m.end_tx(1);
        assert!(!r0[0].corrupted);
        assert!(!r1[0].corrupted);
    }

    #[test]
    fn active_transmitters_listed() {
        let mut m = Medium::new();
        m.start_tx(4, pkt(4), SimTime::ZERO, &[]);
        m.start_tx(7, pkt(7), SimTime::ZERO, &[]);
        let mut txs: Vec<_> = m.active_transmitters().collect();
        txs.sort_unstable();
        assert_eq!(txs, vec![4, 7]);
        assert_eq!(m.active_count(), 2);
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_start_panics() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[]);
        m.start_tx(0, pkt(0), SimTime::ZERO, &[]);
    }

    #[test]
    #[should_panic(expected = "no active transmission")]
    fn end_without_start_panics() {
        let mut m = Medium::new();
        m.end_tx(3);
    }

    #[test]
    fn three_way_collision_counts_each_corruption_once() {
        let mut m = Medium::new();
        m.start_tx(0, pkt(0), SimTime::ZERO, &[9]);
        m.start_tx(1, pkt(1), SimTime::ZERO, &[9]);
        m.start_tx(2, pkt(2), SimTime::ZERO, &[9]);
        // tx0/tx1 corrupt each other (2); tx2 corrupts nothing new on the
        // already-corrupted entries but its own reception is corrupted (1).
        let (_, r2) = m.end_tx(2);
        assert!(r2[0].corrupted);
        assert_eq!(m.collisions(), 3);
    }
}
