//! Interval (bound) propagation over a [`LintModel`].
//!
//! Classic MILP presolve machinery: from the variable bounds, compute each
//! row's activity interval `[L, U]`; a `<=` row with `L > rhs` can never be
//! satisfied, one with `U <= rhs` is always satisfied. Rows also *imply*
//! bounds on their variables, which tighten the intervals and may expose
//! infeasibility several steps removed from any single row — the "trivial
//! infeasibility" class of Algorithm-1 regressions this crate exists to
//! catch before the solver reports a bare `Infeasible`.

use crate::model::{LintModel, LintRow, RowSense, TOL, ZERO_TOL};
use crate::report::{Finding, RuleId, Span};

/// Result of a propagation pass.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Tightened lower bounds (same indexing as the model's variables).
    pub lower: Vec<f64>,
    /// Tightened upper bounds.
    pub upper: Vec<f64>,
    /// Infeasibility and redundancy findings discovered along the way.
    pub findings: Vec<Finding>,
}

/// One-sided row view: `terms <= rhs`. `Ge` rows are negated into this
/// form and `Eq` rows contribute one of each.
struct LeRow<'a> {
    /// Index of the originating row (for spans).
    origin: usize,
    name: &'a str,
    terms: Vec<(usize, f64)>,
    rhs: f64,
}

fn le_views(index: usize, row: &LintRow) -> Vec<LeRow<'_>> {
    let terms: Vec<(usize, f64)> = row
        .terms
        .iter()
        .filter(|(_, c)| c.abs() > ZERO_TOL && c.is_finite())
        .copied()
        .collect();
    if terms.is_empty() || !row.rhs.is_finite() {
        return Vec::new();
    }
    let neg = || terms.iter().map(|&(v, c)| (v, -c)).collect::<Vec<_>>();
    match row.sense {
        RowSense::Le => vec![LeRow {
            origin: index,
            name: &row.name,
            terms,
            rhs: row.rhs,
        }],
        RowSense::Ge => vec![LeRow {
            origin: index,
            name: &row.name,
            terms: neg(),
            rhs: -row.rhs,
        }],
        RowSense::Eq => vec![
            LeRow {
                origin: index,
                name: &row.name,
                terms: neg(),
                rhs: -row.rhs,
            },
            LeRow {
                origin: index,
                name: &row.name,
                terms,
                rhs: row.rhs,
            },
        ],
    }
}

/// `coeff * bound` with the IEEE edge cases resolved for activity sums
/// (`coeff` is finite and nonzero here, so no `0 * inf`).
fn mul(coeff: f64, bound: f64) -> f64 {
    coeff * bound
}

/// The minimum of `sum terms` over the box `[lower, upper]`.
fn min_activity(terms: &[(usize, f64)], lower: &[f64], upper: &[f64]) -> f64 {
    terms
        .iter()
        .map(|&(v, c)| {
            if c > 0.0 {
                mul(c, lower[v])
            } else {
                mul(c, upper[v])
            }
        })
        .sum()
}

/// Runs up to `max_rounds` of propagation.
///
/// Returns tightened bounds and any [`RuleId::BoundInfeasible`] /
/// [`RuleId::RedundantRow`] findings. Variables with out-of-range indices
/// are skipped here — [`analyze`](crate::analyze) reports those separately.
pub fn propagate(model: &LintModel, max_rounds: usize) -> Propagation {
    let n = model.vars.len();
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    let mut findings = Vec::new();

    // Integer bounds round inward before any row is consulted.
    for (i, v) in model.vars.iter().enumerate() {
        if v.integer {
            if lower[i].is_finite() {
                lower[i] = (lower[i] - TOL).ceil();
            }
            if upper[i].is_finite() {
                upper[i] = (upper[i] + TOL).floor();
            }
        }
    }

    let rows: Vec<LeRow<'_>> = model
        .rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.terms.iter().all(|&(v, _)| v < n))
        .flat_map(|(i, r)| le_views(i, r))
        .collect();

    // Initial box inconsistency (NaN bounds are caught by other rules and
    // poison comparisons to `false`, which safely reports nothing here).
    for i in 0..n {
        if lower[i] > upper[i] + TOL {
            return Propagation {
                lower,
                upper,
                findings, // CrossedBounds already covers this; stay silent
            };
        }
    }

    let mut infeasible_rows: Vec<usize> = Vec::new();
    for _round in 0..max_rounds {
        let mut changed = false;
        for row in &rows {
            let min_act = min_activity(&row.terms, &lower, &upper);
            if min_act > row.rhs + TOL {
                if !infeasible_rows.contains(&row.origin) {
                    infeasible_rows.push(row.origin);
                    findings.push(Finding::new(
                        RuleId::BoundInfeasible,
                        Span::Row {
                            index: row.origin,
                            name: row.name.to_owned(),
                        },
                        format!(
                            "minimum activity {min_act:.6} exceeds rhs {:.6}: \
                             the row cannot be satisfied within the variable bounds",
                            row.rhs
                        ),
                    ));
                }
                continue;
            }
            if !min_act.is_finite() {
                continue; // unbounded below: no implied bounds from this row
            }
            // Implied bound for each variable: c_k x_k <= rhs - (min_act - c_k·best_k).
            for &(v, c) in &row.terms {
                let best = if c > 0.0 { lower[v] } else { upper[v] };
                let rest = min_act - mul(c, best);
                if !rest.is_finite() {
                    continue;
                }
                let limit = (row.rhs - rest) / c;
                if c > 0.0 {
                    let mut new_ub = limit;
                    if model.vars[v].integer {
                        new_ub = (new_ub + TOL).floor();
                    }
                    if new_ub < upper[v] - TOL {
                        upper[v] = new_ub;
                        changed = true;
                    }
                } else {
                    let mut new_lb = limit;
                    if model.vars[v].integer {
                        new_lb = (new_lb - TOL).ceil();
                    }
                    if new_lb > lower[v] + TOL {
                        lower[v] = new_lb;
                        changed = true;
                    }
                }
            }
        }
        // Crossed tightened bounds: the model is infeasible even though no
        // single row is.
        for i in 0..n {
            if lower[i] > upper[i] + TOL {
                findings.push(Finding::new(
                    RuleId::BoundInfeasible,
                    Span::Variable {
                        index: i,
                        name: model.vars[i].name.clone(),
                    },
                    format!(
                        "bound propagation tightened `{}` to the empty interval \
                         [{:.6}, {:.6}]",
                        model.vars[i].name, lower[i], upper[i]
                    ),
                ));
                return Propagation {
                    lower,
                    upper,
                    findings,
                };
            }
        }
        if !changed {
            break;
        }
    }

    // Redundancy: a row always satisfied over the (original) box. Uses the
    // *original* bounds so the verdict does not depend on propagation order.
    let orig_lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let orig_upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    let mut redundant_seen: Vec<usize> = Vec::new();
    for row in &rows {
        // max activity = -min activity of the negated row.
        let neg: Vec<(usize, f64)> = row.terms.iter().map(|&(v, c)| (v, -c)).collect();
        let max_act = -min_activity(&neg, &orig_lower, &orig_upper);
        if max_act.is_finite()
            && max_act <= row.rhs + TOL
            && !redundant_seen.contains(&row.origin)
            && !matches!(model.rows[row.origin].sense, RowSense::Eq)
        {
            redundant_seen.push(row.origin);
            findings.push(Finding::new(
                RuleId::RedundantRow,
                Span::Row {
                    index: row.origin,
                    name: row.name.to_owned(),
                },
                format!(
                    "maximum activity {max_act:.6} never exceeds rhs {:.6}: \
                     the row is always satisfied",
                    row.rhs
                ),
            ));
        }
    }

    Propagation {
        lower,
        upper,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(m: &mut LintModel, name: &str, lo: f64, hi: f64) -> usize {
        m.var(name, lo, hi, false)
    }

    #[test]
    fn detects_single_row_infeasibility() {
        // x in [0,1], y in [0,1], x + y >= 3 can never hold.
        let mut m = LintModel::new();
        let x = var(&mut m, "x", 0.0, 1.0);
        let y = var(&mut m, "y", 0.0, 1.0);
        m.row("c0", vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 3.0);
        let p = propagate(&m, 8);
        assert!(p.findings.iter().any(|f| f.rule == RuleId::BoundInfeasible));
    }

    #[test]
    fn detects_chained_infeasibility() {
        // No single row is infeasible, but together: x >= 2 and x + y <= 1
        // force y <= -1 while y >= 0.
        let mut m = LintModel::new();
        let x = var(&mut m, "x", 0.0, 10.0);
        let y = var(&mut m, "y", 0.0, 10.0);
        m.row("c0", vec![(x, 1.0)], RowSense::Ge, 2.0);
        m.row("c1", vec![(x, 1.0), (y, 1.0)], RowSense::Le, 1.0);
        let p = propagate(&m, 8);
        assert!(
            p.findings.iter().any(|f| f.rule == RuleId::BoundInfeasible),
            "{:?}",
            p.findings
        );
    }

    #[test]
    fn clean_model_reports_nothing() {
        let mut m = LintModel::new();
        let x = var(&mut m, "x", 0.0, 1.0);
        let y = var(&mut m, "y", 0.0, 1.0);
        m.row("c0", vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 1.0);
        let p = propagate(&m, 8);
        assert!(p.findings.is_empty(), "{:?}", p.findings);
    }

    #[test]
    fn tightens_bounds() {
        // x + y <= 1 with x, y >= 0 implies x <= 1, y <= 1.
        let mut m = LintModel::new();
        let x = var(&mut m, "x", 0.0, 100.0);
        let y = var(&mut m, "y", 0.0, 100.0);
        m.row("c0", vec![(x, 1.0), (y, 1.0)], RowSense::Le, 1.0);
        let p = propagate(&m, 8);
        assert!(p.upper[x] <= 1.0 + 1e-9);
        assert!(p.upper[y] <= 1.0 + 1e-9);
    }

    #[test]
    fn integer_bounds_round_inward() {
        // 2x <= 5 for integer x implies x <= 2 (not 2.5).
        let mut m = LintModel::new();
        let x = m.var("x", 0.0, 10.0, true);
        m.row("c0", vec![(x, 2.0)], RowSense::Le, 5.0);
        let p = propagate(&m, 8);
        assert_eq!(p.upper[x], 2.0);
    }

    #[test]
    fn flags_redundant_row() {
        // x <= 5 with x in [0,1] is always satisfied.
        let mut m = LintModel::new();
        let x = var(&mut m, "x", 0.0, 1.0);
        m.row("c0", vec![(x, 1.0)], RowSense::Le, 5.0);
        let p = propagate(&m, 8);
        assert!(p.findings.iter().any(|f| f.rule == RuleId::RedundantRow));
        assert!(!p.findings.iter().any(|f| f.rule == RuleId::BoundInfeasible));
    }

    #[test]
    fn free_variables_disable_implied_bounds_safely() {
        let mut m = LintModel::new();
        let x = var(&mut m, "x", f64::NEG_INFINITY, f64::INFINITY);
        let y = var(&mut m, "y", 0.0, 1.0);
        m.row("c0", vec![(x, 1.0), (y, 1.0)], RowSense::Le, 10.0);
        let p = propagate(&m, 8);
        assert!(p.findings.is_empty(), "{:?}", p.findings);
        assert_eq!(p.lower[x], f64::NEG_INFINITY);
    }

    #[test]
    fn equality_propagates_both_directions() {
        // x + y == 2 with y in [0, 1] forces x in [1, 2].
        let mut m = LintModel::new();
        let x = var(&mut m, "x", -100.0, 100.0);
        let y = var(&mut m, "y", 0.0, 1.0);
        m.row("c0", vec![(x, 1.0), (y, 1.0)], RowSense::Eq, 2.0);
        let p = propagate(&m, 8);
        assert!((p.lower[x] - 1.0).abs() < 1e-6, "lb {}", p.lower[x]);
        assert!((p.upper[x] - 2.0).abs() < 1e-6, "ub {}", p.upper[x]);
    }
}
