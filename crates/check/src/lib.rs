//! `hi-check`: a std-only, loom-style concurrency checker for the
//! `hi-exec` substrate.
//!
//! The checker runs a *model program* — ordinary Rust code written
//! against the shadow primitives in [`sync`] and [`thread`] — under a
//! deterministic scheduler that enumerates thread interleavings with a
//! bounded-preemption DFS. While exploring it maintains:
//!
//! - **vector clocks** over every shadow mutex, atomic and [`sync::Data`]
//!   cell, reporting happens-before **data races** (the signature of a
//!   too-weak `Ordering`: a `Relaxed` store publishes nothing, so an
//!   acquire load of the flag learns nothing about the data behind it);
//! - a **lock-order graph** with cycle detection (two locks nested in
//!   opposite orders anywhere in the program is a deadlock waiting for
//!   the right interleaving), plus recursive-lock and leaked-lock
//!   detection;
//! - **condvar semantics** as documented, not as commonly observed:
//!   `notify_one` wakes the earliest parked waiter, a notify with no
//!   waiter is lost, and progress must never *require* a spurious wakeup
//!   — a state where parked waiters exist but no runnable thread can
//!   notify them is reported as a **lost wakeup**.
//!
//! Every violation carries a **schedule-replay string** (the chosen
//! thread ids, `,`-separated); [`replay`] re-runs that exact execution
//! deterministically.
//!
//! ```
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = hi_check::explore(&hi_check::Config::default(), || {
//!     let flag = Arc::new(hi_check::sync::AtomicBool::new(false));
//!     let data = Arc::new(hi_check::sync::Data::named(0u64, "payload"));
//!     let t = {
//!         let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
//!         hi_check::thread::spawn(move || {
//!             data.set(42);
//!             flag.store(true, Ordering::Relaxed); // bug: must be Release
//!         })
//!     };
//!     if flag.load(Ordering::Acquire) {
//!         let _ = data.get(); // races with the write above
//!     }
//!     let _ = t.join();
//! });
//! let violation = report.expect_violation("relaxed publish");
//! assert_eq!(violation.kind, hi_check::ViolationKind::DataRace);
//! ```
//!
//! The model catalog for `hi-exec`'s real protocols (work stealing,
//! generation parking, cache settle/waiter handoff, cancellation,
//! supervised retry) lives in [`models`], together with seeded mutants
//! that the self-tests assert are all caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod models;
pub mod report;
mod runtime;
pub mod sync;
pub mod thread;

pub use report::{CheckReport, LockUsage, Violation, ViolationKind};
pub use runtime::{explore, replay, Config};
