//! Posture/activity modulation of the body channel.
//!
//! The measurement campaign behind the paper captured "the daily activity
//! of adult subjects": much of an on-body channel's large-scale variation
//! is driven by *posture* — arms swinging while walking, legs folded
//! while sitting, the torso pressed against a mattress while lying down.
//! This module adds a semi-Markov posture process on top of the
//! [`Channel`]'s fast fading:
//!
//! ```text
//! PL_ij(t) = PL̄_ij + Δ_posture(ij, s(t)) + δPL_ij(t)
//! ```
//!
//! where `s(t)` is a continuous-time Markov chain over [`Posture`] states
//! with exponential sojourn times, and `Δ_posture` is a per-link-class
//! offset (torso↔torso links barely move; limb links swing by several
//! dB). All values are documented defaults, overridable via
//! [`PostureParams`].

use hi_des::{rng, SimTime};

use crate::{BodyLocation, Channel, ChannelModel, ChannelParams};

/// Gross body postures of the activity model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Posture {
    /// Upright and stationary.
    Standing,
    /// Upright and in motion (limbs swinging).
    Walking,
    /// Seated; legs folded, forearms near the lap.
    Sitting,
    /// Supine; the mattress shadows the back.
    Lying,
}

impl Posture {
    /// All modelled postures.
    pub const ALL: [Posture; 4] = [
        Posture::Standing,
        Posture::Walking,
        Posture::Sitting,
        Posture::Lying,
    ];

    /// Short display name.
    pub const fn name(self) -> &'static str {
        match self {
            Posture::Standing => "standing",
            Posture::Walking => "walking",
            Posture::Sitting => "sitting",
            Posture::Lying => "lying",
        }
    }
}

impl std::fmt::Display for Posture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the semi-Markov posture process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostureParams {
    /// Mean sojourn time per posture, seconds, indexed like
    /// [`Posture::ALL`].
    pub mean_dwell_s: [f64; 4],
    /// Initial posture.
    pub initial: Posture,
}

impl Default for PostureParams {
    fn default() -> Self {
        Self {
            // Typical daily-activity mix: long sits, short walks.
            mean_dwell_s: [45.0, 30.0, 90.0, 120.0],
            initial: Posture::Standing,
        }
    }
}

/// Link classes with distinct posture sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkClass {
    /// Both endpoints on the torso/head (chest, hips, back, head, arm).
    Trunk,
    /// One endpoint on a distal limb (wrist/ankle).
    TrunkLimb,
    /// Both endpoints on distal limbs.
    LimbLimb,
}

fn classify(a: BodyLocation, b: BodyLocation) -> LinkClass {
    match (a.is_distal(), b.is_distal()) {
        (false, false) => LinkClass::Trunk,
        (true, true) => LinkClass::LimbLimb,
        _ => LinkClass::TrunkLimb,
    }
}

/// Posture offset in dB for a link class (positive = extra loss).
///
/// Values follow the qualitative findings of on-body campaigns: walking
/// *improves* limb links on average (swing periodically clears the body),
/// sitting hurts ankle/wrist links (folded joints, lap occlusion), lying
/// hurts everything involving the back half and limb links pressed into
/// the mattress.
fn posture_offset_db(posture: Posture, a: BodyLocation, b: BodyLocation) -> f64 {
    let class = classify(a, b);
    let involves_back = a == BodyLocation::Back || b == BodyLocation::Back;
    let base = match (posture, class) {
        (Posture::Standing, _) => 0.0,
        (Posture::Walking, LinkClass::Trunk) => 0.0,
        (Posture::Walking, LinkClass::TrunkLimb) => -2.0,
        (Posture::Walking, LinkClass::LimbLimb) => -3.0,
        (Posture::Sitting, LinkClass::Trunk) => 0.5,
        (Posture::Sitting, LinkClass::TrunkLimb) => 3.0,
        (Posture::Sitting, LinkClass::LimbLimb) => 5.0,
        (Posture::Lying, LinkClass::Trunk) => 2.0,
        (Posture::Lying, LinkClass::TrunkLimb) => 4.0,
        (Posture::Lying, LinkClass::LimbLimb) => 6.0,
    };
    // Lying presses the back into the mattress.
    if involves_back && posture == Posture::Lying {
        base + 6.0
    } else {
        base
    }
}

/// The posture chain itself: advances through exponential sojourns as it
/// is queried with (globally monotone) times.
#[derive(Debug)]
pub struct PostureProcess {
    params: PostureParams,
    current: Posture,
    /// Time at which the current sojourn ends.
    until: SimTime,
    rng: rng::Rng,
}

impl PostureProcess {
    /// Creates a process starting in `params.initial` at `t = 0`.
    pub fn new(params: PostureParams, seed: u64) -> Self {
        let mut p = Self {
            params,
            current: params.initial,
            until: SimTime::ZERO,
            rng: rng::stream(seed, 0xB0D7),
        };
        p.until = p.draw_sojourn_end(SimTime::ZERO);
        p
    }

    fn dwell_index(posture: Posture) -> usize {
        Posture::ALL
            .iter()
            .position(|&p| p == posture)
            .expect("posture in ALL")
    }

    fn draw_sojourn_end(&mut self, from: SimTime) -> SimTime {
        let mean = self.params.mean_dwell_s[Self::dwell_index(self.current)];
        let u: f64 = self.rng.gen_f64().max(1e-12);
        let sojourn = -mean * u.ln();
        from + hi_des::SimDuration::from_secs(sojourn.min(1e7))
    }

    /// The posture at time `t` (advances internal state; `t` must be
    /// non-decreasing across calls).
    pub fn posture_at(&mut self, t: SimTime) -> Posture {
        while t >= self.until {
            // Uniform jump to one of the other postures.
            let others: Vec<Posture> = Posture::ALL
                .iter()
                .copied()
                .filter(|&p| p != self.current)
                .collect();
            self.current = others[self.rng.gen_range(0..others.len())];
            self.until = self.draw_sojourn_end(self.until);
        }
        self.current
    }
}

/// A [`ChannelModel`] layering the posture process over the stochastic
/// [`Channel`].
///
/// # Examples
///
/// ```
/// use hi_channel::posture::{PostureParams, PosturedChannel};
/// use hi_channel::{BodyLocation, ChannelModel, ChannelParams};
/// use hi_des::SimTime;
///
/// let mut ch = PosturedChannel::new(
///     ChannelParams::default(), PostureParams::default(), 7);
/// let pl = ch.path_loss_db(BodyLocation::Chest, BodyLocation::LeftWrist,
///                          SimTime::from_secs(3.0));
/// assert!(pl.is_finite());
/// ```
#[derive(Debug)]
pub struct PosturedChannel {
    inner: Channel,
    posture: PostureProcess,
}

impl PosturedChannel {
    /// Builds the composite channel; `seed` drives both layers.
    pub fn new(channel: ChannelParams, posture: PostureParams, seed: u64) -> Self {
        Self {
            inner: Channel::new(channel, seed),
            posture: PostureProcess::new(posture, seed ^ 0x9E37_79B9),
        }
    }

    /// The posture at time `t` (for instrumentation).
    pub fn posture_at(&mut self, t: SimTime) -> Posture {
        self.posture.posture_at(t)
    }
}

impl ChannelModel for PosturedChannel {
    fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, t: SimTime) -> f64 {
        if a == b {
            return 0.0;
        }
        let posture = self.posture.posture_at(t);
        self.inner.path_loss_db(a, b, t) + posture_offset_db(posture, a, b)
    }
}

/// A [`ChannelModel`] pinned to one posture — for per-posture experiments.
#[derive(Debug)]
pub struct FixedPostureChannel {
    inner: Channel,
    posture: Posture,
}

impl FixedPostureChannel {
    /// Builds a channel frozen in `posture`.
    pub fn new(channel: ChannelParams, posture: Posture, seed: u64) -> Self {
        Self {
            inner: Channel::new(channel, seed),
            posture,
        }
    }
}

impl ChannelModel for FixedPostureChannel {
    fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, t: SimTime) -> f64 {
        if a == b {
            return 0.0;
        }
        self.inner.path_loss_db(a, b, t) + posture_offset_db(self.posture, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_des::SimDuration;

    #[test]
    fn starts_in_initial_posture() {
        let mut p = PostureProcess::new(PostureParams::default(), 1);
        assert_eq!(p.posture_at(SimTime::ZERO), Posture::Standing);
    }

    #[test]
    fn transitions_change_posture() {
        let params = PostureParams {
            mean_dwell_s: [0.1, 0.1, 0.1, 0.1],
            initial: Posture::Standing,
        };
        let mut p = PostureProcess::new(params, 2);
        let mut seen = std::collections::HashSet::new();
        for k in 1..2_000 {
            seen.insert(p.posture_at(SimTime::from_secs(k as f64 * 0.05)));
        }
        assert_eq!(seen.len(), 4, "all postures visited: {seen:?}");
    }

    #[test]
    fn dwell_times_track_parameters() {
        // Long-dwell posture occupies more time than short-dwell ones.
        let params = PostureParams {
            mean_dwell_s: [1.0, 1.0, 1.0, 30.0], // lying is sticky
            initial: Posture::Standing,
        };
        let mut p = PostureProcess::new(params, 3);
        let mut lying = 0u32;
        let total = 200_000u32;
        for k in 1..=total {
            if p.posture_at(SimTime::from_secs(k as f64 * 0.1)) == Posture::Lying {
                lying += 1;
            }
        }
        let frac = lying as f64 / total as f64;
        // Stationary share of lying = 30 / (1 + 1 + 1 + 30) = 0.909 with
        // uniform jumps; allow wide tolerance.
        assert!(frac > 0.75, "lying fraction {frac}");
    }

    #[test]
    fn standing_has_zero_offset() {
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                assert_eq!(posture_offset_db(Posture::Standing, a, b), 0.0);
            }
        }
    }

    #[test]
    fn walking_helps_limb_links_sitting_hurts() {
        let (a, b) = (BodyLocation::LeftWrist, BodyLocation::RightAnkle);
        assert!(posture_offset_db(Posture::Walking, a, b) < 0.0);
        assert!(posture_offset_db(Posture::Sitting, a, b) > 0.0);
        assert!(
            posture_offset_db(Posture::Lying, a, b)
                > posture_offset_db(Posture::Sitting, a, b) - 1e-12
        );
    }

    #[test]
    fn lying_penalizes_back_links_extra() {
        let with_back = posture_offset_db(Posture::Lying, BodyLocation::Back, BodyLocation::Chest);
        let without = posture_offset_db(Posture::Lying, BodyLocation::Head, BodyLocation::Chest);
        assert!(with_back > without + 5.0);
    }

    #[test]
    fn postured_channel_is_deterministic() {
        let run = |seed| {
            let mut ch =
                PosturedChannel::new(ChannelParams::default(), PostureParams::default(), seed);
            (1..20)
                .map(|k| {
                    ch.path_loss_db(
                        BodyLocation::Chest,
                        BodyLocation::LeftWrist,
                        SimTime::ZERO + SimDuration::from_secs(k as f64),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn fixed_posture_shifts_mean_loss() {
        // Compare long-run averages between standing and lying for a limb
        // link; the offset should show through the fading.
        let avg = |posture| {
            let mut ch = FixedPostureChannel::new(ChannelParams::default(), posture, 11);
            let n = 4_000;
            (1..=n)
                .map(|k| {
                    ch.path_loss_db(
                        BodyLocation::LeftWrist,
                        BodyLocation::LeftAnkle,
                        SimTime::from_secs(10.0 * k as f64),
                    )
                })
                .sum::<f64>()
                / n as f64
        };
        let standing = avg(Posture::Standing);
        let lying = avg(Posture::Lying);
        assert!(
            (lying - standing - 6.0).abs() < 1.0,
            "lying-standing gap {} should be ~6 dB",
            lying - standing
        );
    }
}
