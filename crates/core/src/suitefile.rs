//! The fault-suite file format: parsing `scenario`/`outage`/`blackout`/
//! `deplete`/`interfere` lines into the [`FaultSuite`] the robust
//! evaluator scores against, plus the lowered [`FaultWindowSpec`]s the
//! lint pass (HL033+) checks.
//!
//! The grammar is line-oriented (`#` starts a comment; times in
//! seconds):
//!
//! ```text
//! scenario <name>                       start a named scenario
//! outage <site> <from> <until|inf>      node crash/recover window
//! blackout <a> <b> <from> <until|inf>   link blackout between two sites
//! deplete <site> <at>                   battery death, never recovers
//! interfere <from> <until|inf> <dB>     wideband interference burst
//! ```
//!
//! Parsing is total: malformed input of any shape — truncation mid-file,
//! bit-flipped numbers, overlong lines, CRLF endings — yields a typed
//! [`SuiteParseError`] carrying the 1-based offending line, never a
//! panic and never a silently-partial suite. Semantic oddities that are
//! *representable* (inverted windows, past-horizon faults) parse
//! successfully on purpose: the lint pass explains them instead of the
//! parser rejecting them.

use std::fmt;

use hi_channel::BodyLocation;
use hi_des::SimDuration;
use hi_lint::{FaultEntity, FaultWindowSpec};
use hi_net::{
    BatteryDepletion, FaultScenario, InterferenceBurst, LinkBlackout, SiteOutage, Window,
};

use crate::robust::FaultSuite;

/// Why a fault-suite file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteParseError {
    /// One line is malformed. `line` is 1-based; `message` names the
    /// field that was missing or bad.
    Line {
        /// 1-based line number in the input text.
        line: usize,
        /// What was wrong on that line.
        message: String,
    },
    /// The file parsed but declares no scenario at all (an empty suite
    /// would silently score nominal-only, so it is rejected here).
    NoScenario,
}

impl fmt::Display for SuiteParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Line { line, message } => write!(f, "line {line}: {message}"),
            Self::NoScenario => write!(f, "declares no scenario"),
        }
    }
}

impl std::error::Error for SuiteParseError {}

/// One field off a suite line, or a message naming what was missing.
fn field<'a>(fields: &mut std::str::SplitWhitespace<'a>, what: &str) -> Result<&'a str, String> {
    fields.next().ok_or_else(|| format!("missing {what}"))
}

fn site_field(fields: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<usize, String> {
    let v = field(fields, what)?;
    let site: usize = v
        .parse()
        .map_err(|_| format!("bad {what} `{v}` (expected a site index)"))?;
    if site >= BodyLocation::COUNT {
        return Err(format!(
            "{what} {site} is out of range (sites are 0..={})",
            BodyLocation::COUNT - 1
        ));
    }
    Ok(site)
}

fn secs_field(fields: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<f64, String> {
    let v = field(fields, what)?;
    let x: f64 = v.parse().map_err(|_| format!("bad {what} `{v}`"))?;
    if !x.is_finite() || x < 0.0 {
        return Err(format!("{what} must be finite and non-negative"));
    }
    Ok(x)
}

fn until_field(fields: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<f64, String> {
    let v = field(fields, what)?;
    if v == "inf" {
        return Ok(f64::INFINITY);
    }
    let x: f64 = v
        .parse()
        .map_err(|_| format!("bad {what} `{v}` (expected seconds or `inf`)"))?;
    // An inverted window (until < from) is representable on purpose: the
    // lint pass explains it (HL033) instead of the parser rejecting it.
    if x.is_nan() || x < 0.0 {
        return Err(format!("{what} must be non-negative (or `inf`)"));
    }
    Ok(x)
}

fn parse_suite_line(
    line: &str,
    scenarios: &mut Vec<FaultScenario>,
    windows: &mut Vec<FaultWindowSpec>,
) -> Result<(), String> {
    let mut fields = line.split_whitespace();
    let Some(keyword) = fields.next() else {
        return Ok(());
    };
    if keyword == "scenario" {
        let name = line[keyword.len()..].trim();
        if name.is_empty() {
            return Err("`scenario` needs a name".into());
        }
        scenarios.push(FaultScenario::named(name));
        return Ok(());
    }
    let Some(scenario) = scenarios.last_mut() else {
        return Err(format!("`{keyword}` entry before any `scenario` line"));
    };
    let name = scenario.name.clone();
    match keyword {
        "outage" => {
            let site = site_field(&mut fields, "outage site")?;
            let from_s = secs_field(&mut fields, "outage start")?;
            let until_s = until_field(&mut fields, "outage end")?;
            scenario.outages.push(SiteOutage {
                site,
                window: Window::from_secs(from_s, until_s),
            });
            windows.push(FaultWindowSpec {
                label: format!("{name}/outage"),
                entity: FaultEntity::Node(site),
                from_s,
                until_s,
            });
        }
        "blackout" => {
            let site_a = site_field(&mut fields, "blackout site")?;
            let site_b = site_field(&mut fields, "blackout site")?;
            let from_s = secs_field(&mut fields, "blackout start")?;
            let until_s = until_field(&mut fields, "blackout end")?;
            scenario.blackouts.push(LinkBlackout {
                site_a,
                site_b,
                window: Window::from_secs(from_s, until_s),
            });
            windows.push(FaultWindowSpec {
                label: format!("{name}/blackout"),
                entity: FaultEntity::Link(site_a, site_b),
                from_s,
                until_s,
            });
        }
        "deplete" => {
            let site = site_field(&mut fields, "depletion site")?;
            let at_s = secs_field(&mut fields, "depletion time")?;
            scenario.depletions.push(BatteryDepletion {
                site,
                at: SimDuration::from_secs(at_s),
            });
            windows.push(FaultWindowSpec {
                label: format!("{name}/deplete"),
                entity: FaultEntity::Node(site),
                from_s: at_s,
                until_s: f64::INFINITY,
            });
        }
        "interfere" => {
            let from_s = secs_field(&mut fields, "interference start")?;
            let until_s = until_field(&mut fields, "interference end")?;
            let extra_loss_db = secs_field(&mut fields, "interference loss (dB)")?;
            scenario.bursts.push(InterferenceBurst {
                window: Window::from_secs(from_s, until_s),
                extra_loss_db,
            });
            windows.push(FaultWindowSpec {
                label: format!("{name}/interfere"),
                entity: FaultEntity::Medium,
                from_s,
                until_s,
            });
        }
        other => {
            return Err(format!(
                "unknown entry `{other}` (expected scenario, outage, blackout, \
                 deplete or interfere)"
            ));
        }
    }
    if let Some(extra) = fields.next() {
        return Err(format!("trailing field `{extra}`"));
    }
    Ok(())
}

/// Parses a fault-suite file into the scenarios the simulator runs and
/// the lowered window specs the lint pass checks.
///
/// # Errors
///
/// [`SuiteParseError::Line`] (with the 1-based line) on any malformed
/// entry; [`SuiteParseError::NoScenario`] when the text declares no
/// scenario at all.
pub fn parse_fault_suite(
    text: &str,
) -> Result<(FaultSuite, Vec<FaultWindowSpec>), SuiteParseError> {
    let mut scenarios: Vec<FaultScenario> = Vec::new();
    let mut windows: Vec<FaultWindowSpec> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        parse_suite_line(line, &mut scenarios, &mut windows).map_err(|message| {
            SuiteParseError::Line {
                line: line_no,
                message,
            }
        })?;
    }
    if scenarios.is_empty() {
        return Err(SuiteParseError::NoScenario);
    }
    Ok((FaultSuite::new(scenarios), windows))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# a demo suite
scenario hip outage
outage 1 10 60        # l-hip down for 50 s
blackout 0 5 20 inf
scenario noisy room
interfere 0 300 6.0
deplete 4 120
";

    #[test]
    fn a_wellformed_suite_parses_fully() {
        let (suite, windows) = parse_fault_suite(DEMO).unwrap();
        assert_eq!(suite.len(), 2);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].label, "hip outage/outage");
        assert_eq!(windows[3].entity, FaultEntity::Node(4));
    }

    #[test]
    fn errors_carry_the_one_based_line() {
        let err = parse_fault_suite("scenario a\n\noutage 99 0 inf\n").unwrap_err();
        assert_eq!(
            err,
            SuiteParseError::Line {
                line: 3,
                message: "outage site 99 is out of range (sites are 0..=9)".into()
            }
        );
        assert!(err.to_string().starts_with("line 3: "));
    }

    #[test]
    fn an_empty_or_commented_file_is_no_scenario() {
        assert_eq!(
            parse_fault_suite("").unwrap_err(),
            SuiteParseError::NoScenario
        );
        assert_eq!(
            parse_fault_suite("# nothing\n\n   \n").unwrap_err(),
            SuiteParseError::NoScenario
        );
    }

    #[test]
    fn crlf_endings_parse_like_lf() {
        let crlf = DEMO.replace('\n', "\r\n");
        let (suite, windows) = parse_fault_suite(&crlf).unwrap();
        assert_eq!(suite.len(), 2);
        assert_eq!(windows.len(), 4);
    }

    #[test]
    fn entries_before_any_scenario_are_rejected() {
        let err = parse_fault_suite("outage 1 0 inf\n").unwrap_err();
        match err {
            SuiteParseError::Line { line: 1, message } => {
                assert!(message.contains("before any `scenario`"), "{message}");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
