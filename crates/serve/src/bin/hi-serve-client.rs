//! `hi-serve-client` — a protocol driver for a running `hi-opt serve`
//! daemon. Exists so tests and the CI gate can speak the wire protocol
//! without depending on `nc`; it is deliberately small — request in,
//! response out, exit code mirrors the server's verdict — but it is
//! *not* naive about failure: every command runs under a bounded,
//! deterministic reconnect loop, and every submit carries an
//! idempotency token, so a retried submit resolves to the job the
//! first attempt created instead of a duplicate.
//!
//! ```text
//! hi-serve-client [--retries N] [--backoff-ms B] [--token T] <addr> <command>
//!
//! hi-serve-client <addr> submit <profile-file>
//! hi-serve-client <addr> status|result|wait|cancel|front <job-id>
//! hi-serve-client <addr> stats
//! hi-serve-client <addr> shutdown
//! hi-serve-client <addr> run <profile-file>   # submit + wait + result, all jobs
//! ```
//!
//! `<addr>` is `host:port` or a path to a file whose first line is the
//! address (the daemon writes `<state_dir>/addr`). Counted `OK` blocks
//! go to stdout; `EVENT` streams go to stderr; exit codes: 0 success,
//! 2 usage or a policy rejected by lint, 3 I/O failure after the last
//! reconnect attempt, 4 the server answered `ERR`.
//!
//! Reconnects are `--retries` attempts with seed-indexed exponential
//! backoff (`hi_exec::backoff_delay_ms`, base `--backoff-ms`); each
//! attempt is logged to stderr and mirrors the daemon-side counter
//! `serve.reconnect.attempts` semantics. The retry policy is linted at
//! startup (rule HL045): zero retries (unbounded) or a zero backoff
//! base (busy-loop) are refused before the first connect. When no
//! `--token` is given, submits derive one from the payload
//! (`hi_serve::derive_token`), so re-running the same submit against
//! the same daemon state replays instead of duplicating.

use hi_serve::derive_token;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hi-serve-client [--retries N] [--backoff-ms B] [--token T] <addr> <command>\n\
         commands:\n\
         \x20 submit <profile-file>      submit every profile in the file, print job ids\n\
         \x20 status <job-id>            one-line lifecycle state\n\
         \x20 result <job-id>            print the terminal result block\n\
         \x20 wait <job-id>              stream progress events until terminal\n\
         \x20 cancel <job-id>            cancel a queued or running job\n\
         \x20 front <job-id>             print the job's stream's Pareto front\n\
         \x20 stats                      print the daemon's metric snapshot\n\
         \x20 shutdown                   drain running jobs, flush segments and exit\n\
         \x20 run <profile-file>         submit, wait for and print every result\n\
         flags:\n\
         \x20 --retries N      connection attempts before giving up (default 5)\n\
         \x20 --backoff-ms B   exponential backoff base in ms (default 50)\n\
         \x20 --token T        idempotency token for submit/run (default: derived\n\
         \x20                  from the payload, so retried submits replay)\n\
         <addr> is host:port, or a file whose first line is host:port"
    );
    ExitCode::from(2)
}

/// Bounded-reconnect policy, linted at startup (HL045).
#[derive(Clone)]
struct Policy {
    retries: u32,
    backoff_ms: u64,
    token: Option<String>,
    /// Backoff jitter seed, derived from the address + command words so
    /// two different invocations do not march in lockstep while one
    /// invocation stays reproducible.
    seed: u64,
}

fn main() -> ExitCode {
    let mut retries: u32 = 5;
    let mut backoff_ms: u64 = 50;
    let mut token: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let flag_value = |args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--retries" => match flag_value(&mut args).map(|v| v.parse::<u32>()) {
                Ok(Ok(n)) => retries = n,
                _ => return usage(),
            },
            "--backoff-ms" => match flag_value(&mut args).map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => backoff_ms = n,
                _ => return usage(),
            },
            "--token" => match flag_value(&mut args) {
                Ok(t) => token = Some(t),
                _ => return usage(),
            },
            _ => rest.push(arg),
        }
    }
    let (addr_spec, command) = match rest.split_first() {
        Some((addr, tail)) if !tail.is_empty() => (addr.clone(), tail.to_vec()),
        _ => return usage(),
    };

    // Self-lint the retry policy before touching the network (HL045):
    // an unbounded loop or a zero-delay backoff is a configuration bug,
    // not a transport condition, so it gets the usage exit code.
    let report = hi_lint::lint_client_retry(&hi_lint::ClientRetrySpec {
        max_attempts: retries,
        backoff_base_ms: backoff_ms as f64,
    });
    if report.has_errors() {
        eprintln!("hi-serve-client: retry policy rejected:\n{report}");
        return ExitCode::from(2);
    }
    if let Some(t) = &token {
        if let Err(e) = hi_serve::validate_token(t) {
            eprintln!("hi-serve-client: {e}");
            return ExitCode::from(2);
        }
    }

    let addr = match resolve_addr(&addr_spec) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("hi-serve-client: {e}");
            return ExitCode::from(3);
        }
    };
    let policy = Policy {
        retries,
        backoff_ms,
        token,
        seed: token_seed(&format!("{addr_spec} {}", command.join(" "))),
    };

    let outcome = match (command[0].as_str(), command.len()) {
        ("submit", 2) => with_profile(&command[1], |text| {
            let token = policy.token_for(&text);
            with_reconnect(&policy, &addr, |conn| {
                session(conn, &[Step::Submit(text.clone(), token.clone())])
            })
        }),
        ("status", 2) => run_line(&policy, &addr, format!("STATUS {}", command[1])),
        ("result", 2) => run_line(&policy, &addr, format!("RESULT {}", command[1])),
        ("wait", 2) => run_line(&policy, &addr, format!("WAIT {}", command[1])),
        ("cancel", 2) => run_line(&policy, &addr, format!("CANCEL {}", command[1])),
        ("front", 2) => run_line(&policy, &addr, format!("FRONT {}", command[1])),
        ("stats", 1) => run_line(&policy, &addr, "STATS".into()),
        ("shutdown", 1) => run_line(&policy, &addr, "SHUTDOWN".into()),
        ("run", 2) => with_profile(&command[1], |text| {
            let token = policy.token_for(&text);
            with_reconnect(&policy, &addr, |conn| run_fleet(conn, &text, &token))
        }),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(ClientError::Io(e)) => {
            eprintln!("hi-serve-client: {e}");
            ExitCode::from(3)
        }
        Err(ClientError::Server(line)) => {
            eprintln!("{line}");
            ExitCode::from(4)
        }
    }
}

impl Policy {
    /// The token a submit of `payload` carries: the explicit `--token`
    /// if given, else one derived from the payload bytes.
    fn token_for(&self, payload: &str) -> String {
        self.token.clone().unwrap_or_else(|| derive_token(payload))
    }
}

/// Lowers a string to a backoff seed by reusing the token-derivation
/// hash (`auto-<16 hex digits>`), so there is exactly one FNV in the
/// workspace.
fn token_seed(text: &str) -> u64 {
    let hex = derive_token(text);
    u64::from_str_radix(hex.trim_start_matches("auto-"), 16).unwrap_or(0)
}

enum ClientError {
    Io(String),
    Server(String),
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

enum Step {
    /// One request line, no payload.
    Line(String),
    /// `SUBMIT <n> <token>` framing around a profile file's text.
    Submit(String, String),
}

fn resolve_addr(spec: &str) -> Result<String, String> {
    if std::path::Path::new(spec).is_file() {
        let text =
            std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))?;
        let addr = text.lines().next().unwrap_or("").trim();
        if addr.is_empty() {
            return Err(format!("`{spec}` holds no address"));
        }
        return Ok(addr.to_string());
    }
    Ok(spec.to_string())
}

fn with_profile(
    path: &str,
    go: impl FnOnce(String) -> Result<(), ClientError>,
) -> Result<(), ClientError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ClientError::Io(format!("cannot read `{path}`: {e}")))?;
    go(text)
}

/// Runs `go` against a fresh connection, reconnecting on I/O failure
/// with seed-indexed exponential backoff until the attempt budget is
/// spent. Server-side `ERR` verdicts are *answers*, not failures — they
/// never retry. Safe to wrap whole sessions because every submit
/// carries an idempotency token: a replayed submit resolves to the
/// already-created job ids.
fn with_reconnect(
    policy: &Policy,
    addr: &str,
    mut go: impl FnMut(&mut Connection) -> Result<(), ClientError>,
) -> Result<(), ClientError> {
    let mut attempt = 0u32;
    loop {
        let result = Connection::open(addr).and_then(|mut conn| go(&mut conn));
        match result {
            Err(ClientError::Io(e)) if attempt + 1 < policy.retries => {
                let delay = hi_exec::backoff_delay_ms(policy.seed, attempt, policy.backoff_ms);
                attempt += 1;
                eprintln!(
                    "hi-serve-client: {e}; reconnect attempt {attempt}/{} in {delay}ms \
                     (serve.reconnect.attempts)",
                    policy.retries - 1
                );
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            other => return other,
        }
    }
}

fn run_line(policy: &Policy, addr: &str, line: String) -> Result<(), ClientError> {
    with_reconnect(policy, addr, |conn| {
        session(conn, &[Step::Line(line.clone())])
    })
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Io(format!("cannot connect to `{addr}`: {e}")))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    fn send(&mut self, step: &Step) -> Result<(), ClientError> {
        match step {
            Step::Line(line) => self.writer.write_all(format!("{line}\n").as_bytes())?,
            Step::Submit(text, token) => {
                let count = text.lines().count();
                self.writer
                    .write_all(format!("SUBMIT {count} {token}\n").as_bytes())?;
                for line in text.lines() {
                    self.writer.write_all(line.as_bytes())?;
                    self.writer.write_all(b"\n")?;
                }
            }
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one full response: `EVENT` lines stream to stderr, a
    /// counted `OK ... <n>` block prints its `n` lines to stdout, and
    /// the terminal `OK`/`ERR` line decides the outcome. Returns the
    /// final `OK` line's tail words.
    fn read_response(&mut self) -> Result<String, ClientError> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io("connection closed mid-response".into()));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if let Some(event) = line.strip_prefix("EVENT ") {
                eprintln!("{event}");
                continue;
            }
            if line.starts_with("ERR ") || line == "ERR" {
                return Err(ClientError::Server(line.to_string()));
            }
            let Some(tail) = line.strip_prefix("OK ") else {
                return Err(ClientError::Io(format!("unparseable response `{line}`")));
            };
            // Counted block: the verb decides whether the last field is
            // a line count (result/stats blocks) or payload (job ids).
            let mut words: Vec<&str> = tail.split_whitespace().collect();
            let counted = matches!(
                words.first(),
                Some(&"result") | Some(&"stats") | Some(&"front")
            );
            if counted {
                let count: usize = words
                    .pop()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Io(format!("bad block header `{line}`")))?;
                for _ in 0..count {
                    let mut body = String::new();
                    if self.reader.read_line(&mut body)? == 0 {
                        return Err(ClientError::Io("connection closed mid-block".into()));
                    }
                    print!("{body}");
                }
                return Ok(words.join(" "));
            }
            println!("{tail}");
            return Ok(tail.to_string());
        }
    }
}

fn session(conn: &mut Connection, steps: &[Step]) -> Result<(), ClientError> {
    for step in steps {
        conn.send(step)?;
        conn.read_response()?;
    }
    Ok(())
}

/// `run`: submit the whole file, then wait for and print every job's
/// result block in id order — the one-command fleet driver. Replay-safe
/// under [`with_reconnect`]: the idempotency token makes a re-submitted
/// file resolve to the same ids, and WAIT/RESULT are read-only.
fn run_fleet(conn: &mut Connection, text: &str, token: &str) -> Result<(), ClientError> {
    conn.send(&Step::Submit(text.to_string(), token.to_string()))?;
    let tail = conn.read_response()?;
    let ids: Vec<String> = tail
        .split_whitespace()
        .skip(1) // the literal word `job`
        .map(str::to_string)
        .collect();
    if ids.is_empty() {
        return Err(ClientError::Io(format!("no job ids in `{tail}`")));
    }
    for id in &ids {
        conn.send(&Step::Line(format!("WAIT {id}")))?;
        conn.read_response()?;
        conn.send(&Step::Line(format!("RESULT {id}")))?;
        conn.read_response()?;
        println!();
    }
    Ok(())
}
