//! Reproducible random-number streams.
//!
//! Simulation models need many *independent* random sources (one per node,
//! per link, per traffic generator, ...) that are all derived from a single
//! master seed so a run can be reproduced exactly. [`derive_seed`] maps
//! `(master, stream_id)` to a well-mixed 64-bit seed via SplitMix64, and
//! [`stream`] builds a [`rand`] PRNG from it.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: a fast, well-distributed 64-bit mixer.
///
/// Used to derive independent stream seeds from `(master_seed, stream_id)`
/// pairs. The constants are from Steele, Lea & Flood's SplitMix paper.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stream seed from a master seed and a stream identifier.
///
/// Different `(master, stream)` pairs produce decorrelated seeds; the same
/// pair always produces the same seed.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// Draws a standard-normal variate via the Box–Muller transform.
///
/// Kept here so model crates do not need an extra distribution dependency.
///
/// # Examples
///
/// ```
/// let mut rng = hi_des::rng::stream(1, 0);
/// let z = hi_des::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Creates a PRNG for the given `(master, stream)` pair.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = hi_des::rng::stream(42, 0);
/// let mut b = hi_des::rng::stream(42, 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // reproducible
/// ```
pub fn stream(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_pair_same_stream() {
        let xs: Vec<u64> = (0..8).map(|_| 0).scan(stream(1, 2), |r, _| Some(r.gen())).collect();
        let ys: Vec<u64> = (0..8).map(|_| 0).scan(stream(1, 2), |r, _| Some(r.gen())).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream(1, 0);
        let mut b = stream(1, 1);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_reference_vector() {
        // First output for state 0 per the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn derived_seeds_are_spread() {
        // Weak avalanche check: consecutive stream ids give seeds that
        // differ in many bits.
        let a = derive_seed(7, 100);
        let b = derive_seed(7, 101);
        assert!((a ^ b).count_ones() > 10);
    }
}
