//! The lockstep execution runtime and bounded-preemption DFS explorer.
//!
//! # How an execution runs
//!
//! Every model thread is a real OS thread, but only one ever runs at a
//! time: each visible operation (lock, unlock, condvar park/notify,
//! atomic access, [`Data`](crate::sync::Data) access, spawn, join, exit)
//! first parks the thread and hands control to the scheduler, which picks
//! which thread performs its next operation. The pick is a *decision*;
//! the sequence of decisions is the schedule. Exploration is a DFS over
//! decision alternatives: run an execution taking first choices, then
//! backtrack to the deepest decision with an untried alternative and
//! replay up to it. A preemption bound (switching away from a thread
//! that could have continued) keeps the space tractable — most
//! concurrency bugs need very few preemptions.
//!
//! Because the chosen thread performs its operation while every other
//! thread is parked, operations are serialized: shadow state needs no
//! synchronization subtlety of its own, and an execution is exactly
//! reproducible from its decision list (the replay string).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::sync::{MutexGuard, PoisonError};

use crate::clock::VClock;
use crate::report::{CheckReport, LockUsage, Violation, ViolationKind};

/// Exploration limits and options.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stop after this many executions even if schedules remain
    /// (the report is then marked incomplete).
    pub max_executions: u64,
    /// Per-execution visible-operation budget; exceeding it reports a
    /// [`ViolationKind::StepBudget`] violation (livelock suspicion).
    pub max_steps: u64,
    /// Maximum context switches away from a thread that could have
    /// continued. `None` removes the bound (full DFS — feasible only for
    /// tiny models).
    pub preemption_bound: Option<u32>,
    /// Also explore spurious condvar wakeups: a parked waiter may be
    /// scheduled without a notify, exactly as `std` permits. Predicate
    /// (`wait_while`) loops are immune; bare waits are not.
    pub spurious_wakeups: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_executions: 4_000,
            max_steps: 20_000,
            preemption_bound: Some(2),
            spurious_wakeups: false,
        }
    }
}

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (violation found). Never escapes the checker.
pub(crate) struct Abort;

/// Whose turn it is to mutate shadow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Active {
    Scheduler,
    Thread(usize),
}

/// Scheduling state of one model thread.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TState {
    /// Can perform its next operation when granted a turn.
    Runnable,
    /// Waiting for a lock held by someone else.
    BlockedLock(u64),
    /// Parked on a condvar; `notified` marks it schedulable again.
    WaitingCv { cv: u64, notified: bool, seq: u64 },
    /// Waiting for another thread to finish.
    BlockedJoin(usize),
    /// Exited.
    Finished,
}

#[derive(Debug)]
struct ThreadSlot {
    state: TState,
    clock: VClock,
    /// Locks currently held, in acquisition order.
    held: Vec<u64>,
}

impl ThreadSlot {
    fn new(clock: VClock) -> Self {
        Self {
            state: TState::Runnable,
            clock,
            held: Vec::new(),
        }
    }
}

/// One scheduling decision: the candidate threads in try-order and which
/// one was taken. The DFS backtracks over `taken`.
#[derive(Debug, Clone)]
struct Decision {
    options: Vec<usize>,
    taken: usize,
}

#[derive(Debug, Default)]
struct LockState {
    owner: Option<usize>,
    clock: VClock,
    acquires: u64,
    releases: u64,
    name: Option<String>,
}

#[derive(Debug, Default)]
struct AtomicState {
    value: u64,
    clock: VClock,
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<(usize, VClock)>,
    /// Most recent read clock per reader thread.
    reads: Vec<(usize, VClock)>,
    name: Option<String>,
}

/// All mutable checker state for one execution. Guarded by the monitor
/// mutex; mutated only by the thread whose turn it is (or the scheduler).
struct Mon {
    active: Active,
    aborting: bool,
    threads: Vec<ThreadSlot>,
    /// OS threads that have not yet returned from their wrapper.
    live_os: usize,
    decisions: Vec<Decision>,
    /// Decision prefix to force (DFS backtracking / replay).
    forced: Vec<usize>,
    step: u64,
    park_counter: u64,
    last_scheduled: Option<usize>,
    preemptions: u32,
    violation: Option<(ViolationKind, String)>,
    locks: Vec<(u64, LockState)>,
    atomics: Vec<(u64, AtomicState)>,
    cells: Vec<(u64, CellState)>,
    /// Lock-order edges: (held, acquired).
    lock_edges: Vec<(u64, u64)>,
}

impl Mon {
    fn new(forced: Vec<usize>) -> Self {
        Self {
            active: Active::Scheduler,
            aborting: false,
            threads: Vec::new(),
            live_os: 0,
            decisions: Vec::new(),
            forced,
            step: 0,
            park_counter: 0,
            last_scheduled: None,
            preemptions: 0,
            violation: None,
            locks: Vec::new(),
            atomics: Vec::new(),
            cells: Vec::new(),
            lock_edges: Vec::new(),
        }
    }

    fn report(&mut self, kind: ViolationKind, message: String) {
        if self.violation.is_none() {
            self.violation = Some((kind, message));
        }
    }

    fn lock_state(&mut self, uid: u64, name: &Option<String>) -> &mut LockState {
        if let Some(index) = self.locks.iter().position(|(u, _)| *u == uid) {
            return &mut self.locks[index].1;
        }
        self.locks.push((
            uid,
            LockState {
                name: name.clone(),
                ..LockState::default()
            },
        ));
        &mut self.locks.last_mut().expect("just pushed").1
    }

    fn lock_name(&self, uid: u64) -> String {
        self.locks
            .iter()
            .find(|(u, _)| *u == uid)
            .and_then(|(_, s)| s.name.clone())
            .unwrap_or_else(|| format!("lock#{}", uid & 0xffff_ffff))
    }

    fn atomic_state(&mut self, uid: u64, init: u64) -> &mut AtomicState {
        if let Some(index) = self.atomics.iter().position(|(u, _)| *u == uid) {
            return &mut self.atomics[index].1;
        }
        self.atomics.push((
            uid,
            AtomicState {
                value: init,
                clock: VClock::new(),
            },
        ));
        &mut self.atomics.last_mut().expect("just pushed").1
    }

    fn cell_state(&mut self, uid: u64, name: &Option<String>) -> &mut CellState {
        if let Some(index) = self.cells.iter().position(|(u, _)| *u == uid) {
            return &mut self.cells[index].1;
        }
        self.cells.push((
            uid,
            CellState {
                name: name.clone(),
                ..CellState::default()
            },
        ));
        &mut self.cells.last_mut().expect("just pushed").1
    }

    /// Releases `uid` on behalf of `tid`: transfers the thread's clock to
    /// the lock and wakes lock-blocked threads. Shared by unlock and
    /// condvar park.
    fn do_release(&mut self, tid: usize, uid: u64, name: &Option<String>) {
        let clock = self.threads[tid].clock.clone();
        let lock = self.lock_state(uid, name);
        lock.owner = None;
        lock.releases += 1;
        lock.clock.join(&clock);
        self.threads[tid].held.retain(|&h| h != uid);
        for slot in &mut self.threads {
            if slot.state == TState::BlockedLock(uid) {
                slot.state = TState::Runnable;
            }
        }
    }

    /// Adds a lock-order edge and reports a cycle if one forms.
    fn add_lock_edge(&mut self, held: u64, acquired: u64) {
        if held == acquired || self.lock_edges.contains(&(held, acquired)) {
            return;
        }
        self.lock_edges.push((held, acquired));
        // Is `held` reachable from `acquired`? Then the new edge closes a
        // cycle: some code path nests the two locks in the other order.
        let mut stack = vec![acquired];
        let mut seen = vec![acquired];
        while let Some(node) = stack.pop() {
            if node == held {
                self.report(
                    ViolationKind::LockOrderInversion,
                    format!(
                        "{} is acquired while holding {}, but elsewhere {} is \
                         acquired while holding {} — a deadlock waiting for the \
                         right interleaving",
                        self.lock_name(acquired),
                        self.lock_name(held),
                        self.lock_name(held),
                        self.lock_name(acquired),
                    ),
                );
                return;
            }
            for &(a, b) in &self.lock_edges {
                if a == node && !seen.contains(&b) {
                    seen.push(b);
                    stack.push(b);
                }
            }
        }
    }
}

/// One exploration context: the monitor, its condvar and the limits.
pub(crate) struct Exec {
    mon: StdMutex<Mon>,
    cv: StdCondvar,
    cfg: Config,
}

fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Per-thread context

struct Ctx {
    exec: Arc<Exec>,
    tid: usize,
    obj_seq: Cell<u32>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current thread's execution handle and thread id. Panics (with an
/// actionable message) when called outside a checker run.
pub(crate) fn cur() -> (Arc<Exec>, usize) {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        let ctx = ctx
            .as_ref()
            .expect("hi-check shadow primitive used outside a checker run (explore/replay)");
        (Arc::clone(&ctx.exec), ctx.tid)
    })
}

/// Allocates a deterministic object id: `(creating thread) << 32 | seq`.
/// Ids depend only on each thread's own creation order, never on how
/// creations from different threads interleave, so replays see identical
/// ids without making object creation a schedule point.
pub(crate) fn alloc_uid() -> u64 {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        let ctx = ctx
            .as_ref()
            .expect("hi-check shadow object created outside a checker run (explore/replay)");
        let seq = ctx.obj_seq.get();
        ctx.obj_seq.set(seq + 1);
        ((ctx.tid as u64) << 32) | u64::from(seq)
    })
}

// ---------------------------------------------------------------------------
// The turn protocol

enum Attempt<R> {
    Done(R),
    Block,
}

/// Runs one visible operation when the scheduler grants this thread a
/// turn. Returns `None` when the execution is aborting — the caller
/// either unwinds (normal ops) or degrades to a quiet no-op (ops that can
/// run inside `Drop` during a panic, where a second panic would abort the
/// process).
fn try_with_turn<R>(
    exec: &Exec,
    tid: usize,
    mut attempt: impl FnMut(&mut Mon) -> Attempt<R>,
) -> Option<R> {
    let mut mon = relock(exec.mon.lock());
    loop {
        loop {
            if mon.aborting {
                return None;
            }
            if mon.active == Active::Thread(tid) {
                break;
            }
            mon = relock(exec.cv.wait(mon));
        }
        mon.step += 1;
        if mon.step > exec.cfg.max_steps {
            mon.report(
                ViolationKind::StepBudget,
                format!(
                    "execution exceeded {} visible operations — livelock or an \
                     unbounded loop in the model",
                    exec.cfg.max_steps
                ),
            );
            mon.active = Active::Scheduler;
            exec.cv.notify_all();
            return None;
        }
        // Tick first so the operation's own epoch is part of every clock
        // it snapshots or publishes: an access event must carry its own
        // position, not its thread's position as of the previous op.
        mon.threads[tid].clock.tick(tid);
        let outcome = attempt(&mut mon);
        mon.active = Active::Scheduler;
        exec.cv.notify_all();
        match outcome {
            Attempt::Done(value) => return Some(value),
            Attempt::Block => continue,
        }
    }
}

/// [`try_with_turn`] for ordinary (non-`Drop`) call sites: unwinds the
/// model thread with the [`Abort`] sentinel when the execution is over.
fn with_turn<R>(exec: &Exec, tid: usize, attempt: impl FnMut(&mut Mon) -> Attempt<R>) -> R {
    match try_with_turn(exec, tid, attempt) {
        Some(value) => value,
        None => std::panic::panic_any(Abort),
    }
}

// ---------------------------------------------------------------------------
// Operations (called from crate::sync / crate::thread)

pub(crate) fn op_lock(exec: &Exec, uid: u64, name: &Option<String>) {
    let tid = cur_tid(exec);
    let granted = try_with_turn(exec, tid, |mon| {
        let owner = mon.lock_state(uid, name).owner;
        match owner {
            None => {
                let held = mon.threads[tid].held.clone();
                for &h in &held {
                    mon.add_lock_edge(h, uid);
                }
                let lock_clock = {
                    let lock = mon.lock_state(uid, name);
                    lock.owner = Some(tid);
                    lock.acquires += 1;
                    lock.clock.clone()
                };
                mon.threads[tid].clock.join(&lock_clock);
                mon.threads[tid].held.push(uid);
                Attempt::Done(())
            }
            Some(owner) if owner == tid => {
                let message = format!(
                    "thread t{tid} re-locked {} which it already holds \
                     (std::sync::Mutex self-deadlock)",
                    mon.lock_name(uid)
                );
                mon.report(ViolationKind::RecursiveLock, message);
                // Block rather than grant: the violation aborts the
                // execution, unwinding this thread before it can deadlock
                // on the real inner mutex it already holds.
                Attempt::Block
            }
            Some(_) => {
                mon.threads[tid].state = TState::BlockedLock(uid);
                Attempt::Block
            }
        }
    });
    if granted.is_none() && !std::thread::panicking() {
        std::panic::panic_any(Abort);
    }
}

/// Unlock is callable from guard `Drop` during a panic, so it must never
/// panic itself: when the execution is aborting it silently no-ops.
pub(crate) fn op_unlock(exec: &Exec, uid: u64, name: &Option<String>) {
    let tid = cur_tid(exec);
    let _ = try_with_turn(exec, tid, |mon| {
        if mon.lock_state(uid, name).owner == Some(tid) {
            mon.do_release(tid, uid, name);
        }
        Attempt::Done(())
    });
}

/// Releases `lock_uid` and parks on condvar `cv_uid` in one atomic
/// operation; returns once notified (or spuriously woken) *and*
/// scheduled. The caller reacquires the lock afterwards.
pub(crate) fn op_cv_park(exec: &Exec, cv_uid: u64, lock_uid: u64, lock_name: &Option<String>) {
    let tid = cur_tid(exec);
    let mut parked = false;
    with_turn(exec, tid, |mon| {
        if !parked {
            parked = true;
            mon.do_release(tid, lock_uid, lock_name);
            let seq = mon.park_counter;
            mon.park_counter += 1;
            mon.threads[tid].state = TState::WaitingCv {
                cv: cv_uid,
                notified: false,
                seq,
            };
            Attempt::Block
        } else {
            // The scheduler set us Runnable when it picked us: we are
            // awake, holding nothing.
            Attempt::Done(())
        }
    });
}

pub(crate) fn op_notify(exec: &Exec, cv_uid: u64, all: bool) {
    let tid = cur_tid(exec);
    with_turn(exec, tid, |mon| {
        // notify_one wakes the earliest-parked waiter (FIFO); notify_all
        // wakes everyone. A notify with no waiters is lost, exactly like
        // the real primitive.
        let mut target: Option<(usize, u64)> = None;
        for (index, slot) in mon.threads.iter_mut().enumerate() {
            if let TState::WaitingCv {
                cv,
                notified: notified @ false,
                seq,
            } = &mut slot.state
            {
                if *cv != cv_uid {
                    continue;
                }
                if all {
                    *notified = true;
                } else if target.is_none_or(|(_, best)| *seq < best) {
                    target = Some((index, *seq));
                }
            }
        }
        if let Some((index, _)) = target {
            if let TState::WaitingCv { notified, .. } = &mut mon.threads[index].state {
                *notified = true;
            }
        }
        Attempt::Done(())
    });
}

/// Memory orderings that publish (store side) or observe (load side) the
/// thread's history through an atomic.
fn is_release(ordering: Ordering) -> bool {
    matches!(
        ordering,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_acquire(ordering: Ordering) -> bool {
    matches!(
        ordering,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

pub(crate) fn op_atomic_load(exec: &Exec, uid: u64, init: u64, ordering: Ordering) -> u64 {
    let tid = cur_tid(exec);
    let loaded = try_with_turn(exec, tid, |mon| {
        let (value, clock) = {
            let atomic = mon.atomic_state(uid, init);
            (atomic.value, atomic.clock.clone())
        };
        if is_acquire(ordering) {
            mon.threads[tid].clock.join(&clock);
        }
        Attempt::Done(value)
    });
    match loaded {
        Some(value) => value,
        // Aborting: report the raw value with no ordering bookkeeping so
        // `Drop`-path loads during a panic cannot double-panic.
        None if std::thread::panicking() => {
            let mut mon = relock(exec.mon.lock());
            mon.atomic_state(uid, init).value
        }
        None => std::panic::panic_any(Abort),
    }
}

pub(crate) fn op_atomic_store(exec: &Exec, uid: u64, init: u64, value: u64, ordering: Ordering) {
    let tid = cur_tid(exec);
    let done = try_with_turn(exec, tid, |mon| {
        let clock = mon.threads[tid].clock.clone();
        let atomic = mon.atomic_state(uid, init);
        atomic.value = value;
        // A release store publishes the storing thread's history; a
        // relaxed store publishes *nothing* — an acquire load of this
        // value learns nothing, which is exactly how relaxed bugs escape.
        atomic.clock = if is_release(ordering) {
            clock
        } else {
            VClock::new()
        };
        Attempt::Done(())
    });
    if done.is_none() && !std::thread::panicking() {
        std::panic::panic_any(Abort);
    }
}

pub(crate) fn op_atomic_rmw(
    exec: &Exec,
    uid: u64,
    init: u64,
    ordering: Ordering,
    f: impl Fn(u64) -> u64,
) -> u64 {
    let tid = cur_tid(exec);
    let old = try_with_turn(exec, tid, |mon| {
        let clock = mon.threads[tid].clock.clone();
        let (old, atomic_clock) = {
            let atomic = mon.atomic_state(uid, init);
            let old = atomic.value;
            atomic.value = f(old);
            // RMWs extend the release sequence: even a relaxed RMW keeps
            // the clock published by an earlier release store.
            if is_release(ordering) {
                atomic.clock.join(&clock);
            }
            (old, atomic.clock.clone())
        };
        if is_acquire(ordering) {
            mon.threads[tid].clock.join(&atomic_clock);
        }
        Attempt::Done(old)
    });
    match old {
        Some(value) => value,
        None if std::thread::panicking() => {
            let mut mon = relock(exec.mon.lock());
            mon.atomic_state(uid, init).value
        }
        None => std::panic::panic_any(Abort),
    }
}

/// The happens-before race check for one [`Data`](crate::sync::Data)
/// access. Returns while the turn is still held, so the caller's actual
/// data read/write (done immediately after) cannot interleave with
/// another thread — `access` runs inside the turn.
pub(crate) fn op_cell_access<R>(
    exec: &Exec,
    uid: u64,
    name: &Option<String>,
    is_write: bool,
    access: impl FnOnce() -> R,
) -> R {
    let tid = cur_tid(exec);
    let mut access = Some(access);
    with_turn(exec, tid, move |mon| {
        let clock = mon.threads[tid].clock.clone();
        let mut race: Option<String> = None;
        let cell = mon.cell_state(uid, name);
        let label = cell
            .name
            .clone()
            .unwrap_or_else(|| format!("cell#{}", uid & 0xffff_ffff));
        let kind = if is_write { "write" } else { "read" };
        if let Some((w_tid, w_clock)) = &cell.last_write {
            if *w_tid != tid && !w_clock.leq(&clock) {
                race = Some(format!(
                    "{kind} of {label} by t{tid} is unordered with the write by \
                     t{w_tid} — no happens-before edge connects them; if an \
                     atomic flag publishes this data it needs \
                     Ordering::Release on the store and Ordering::Acquire on \
                     the load (Relaxed creates no edge)"
                ));
            }
        }
        if is_write {
            for (r_tid, r_clock) in &cell.reads {
                if *r_tid != tid && !r_clock.leq(&clock) {
                    race = Some(format!(
                        "write of {label} by t{tid} is unordered with a read by \
                         t{r_tid} — no happens-before edge connects them; if an \
                         atomic flag publishes this data it needs \
                         Ordering::Release on the store and Ordering::Acquire \
                         on the load (Relaxed creates no edge)"
                    ));
                }
            }
            cell.last_write = Some((tid, clock));
            cell.reads.clear();
        } else {
            cell.reads.retain(|(r_tid, _)| *r_tid != tid);
            cell.reads.push((tid, clock));
        }
        if let Some(message) = race {
            mon.report(ViolationKind::DataRace, message);
        }
        let access = access.take().expect("cell access attempted once");
        Attempt::Done(access())
    })
}

/// Registers a new model thread; returns its tid. The OS thread itself is
/// spawned by the caller after the operation completes.
pub(crate) fn op_spawn(exec: &Exec) -> usize {
    let tid = cur_tid(exec);
    with_turn(exec, tid, |mon| {
        if mon.threads.len() >= 32 {
            mon.report(
                ViolationKind::StepBudget,
                "model spawned more than 32 threads".to_owned(),
            );
            return Attempt::Done(usize::MAX);
        }
        let new_tid = mon.threads.len();
        // Spawn is a happens-before edge: the child starts knowing
        // everything the parent knew.
        let clock = mon.threads[tid].clock.clone();
        mon.threads.push(ThreadSlot::new(clock));
        mon.live_os += 1;
        Attempt::Done(new_tid)
    })
}

/// Rolls back a registration from [`op_spawn`] when the OS-level spawn
/// itself failed (resource exhaustion): the slot finishes unstarted so
/// the scheduler's live-thread accounting stays balanced.
pub(crate) fn undo_spawn(exec: &Exec, tid: usize, error: &str) {
    let mut mon = relock(exec.mon.lock());
    mon.report(
        ViolationKind::Panic,
        format!("OS thread spawn failed for model thread t{tid}: {error}"),
    );
    mon.threads[tid].state = TState::Finished;
    mon.live_os -= 1;
    mon.aborting = true;
    exec.cv.notify_all();
}

pub(crate) fn op_join(exec: &Exec, target: usize) {
    let tid = cur_tid(exec);
    with_turn(exec, tid, |mon| {
        if mon.threads[target].state == TState::Finished {
            // Join is the converse edge: the parent learns everything the
            // child did.
            let clock = mon.threads[target].clock.clone();
            mon.threads[tid].clock.join(&clock);
            Attempt::Done(())
        } else {
            mon.threads[tid].state = TState::BlockedJoin(target);
            Attempt::Block
        }
    });
}

pub(crate) fn op_yield(exec: &Exec) {
    let tid = cur_tid(exec);
    with_turn(exec, tid, |_mon| Attempt::Done(()));
}

fn op_exit(exec: &Exec, tid: usize) {
    with_turn(exec, tid, |mon| {
        if let Some(&held) = mon.threads[tid].held.first() {
            let message = format!(
                "thread t{tid} finished while still holding {} — the lock is \
                 never released",
                mon.lock_name(held)
            );
            mon.report(ViolationKind::LockLeak, message);
        }
        mon.threads[tid].state = TState::Finished;
        for slot in &mut mon.threads {
            if slot.state == TState::BlockedJoin(tid) {
                slot.state = TState::Runnable;
            }
        }
        Attempt::Done(())
    });
}

fn cur_tid(exec: &Exec) -> usize {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        let ctx = ctx
            .as_ref()
            .expect("hi-check shadow primitive used outside a checker run (explore/replay)");
        debug_assert!(std::ptr::eq(&*ctx.exec, exec));
        ctx.tid
    })
}

// ---------------------------------------------------------------------------
// Thread wrapper

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Body of every model OS thread: installs the thread-local context, runs
/// the user closure, and reports the outcome to the monitor. Returns
/// `None` when the closure was unwound by an execution abort.
pub(crate) fn wrapper<T>(exec: Arc<Exec>, tid: usize, f: impl FnOnce() -> T) -> Option<T> {
    CTX.with(|ctx| {
        *ctx.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
            obj_seq: Cell::new(0),
        });
    });
    let result = catch_unwind(AssertUnwindSafe(f));
    CTX.with(|ctx| ctx.borrow_mut().take());
    let value = match result {
        Ok(value) => {
            op_exit(&exec, tid);
            Some(value)
        }
        Err(payload) => {
            let mut mon = relock(exec.mon.lock());
            if !payload.is::<Abort>() {
                let message = format!(
                    "thread t{tid} panicked: {}",
                    payload_message(payload.as_ref())
                );
                mon.report(ViolationKind::Panic, message);
            }
            mon.aborting = true;
            mon.threads[tid].state = TState::Finished;
            for slot in &mut mon.threads {
                if slot.state == TState::BlockedJoin(tid) {
                    slot.state = TState::Runnable;
                }
            }
            if mon.active == Active::Thread(tid) {
                mon.active = Active::Scheduler;
            }
            exec.cv.notify_all();
            None
        }
    };
    let mut mon = relock(exec.mon.lock());
    mon.live_os -= 1;
    exec.cv.notify_all();
    drop(mon);
    value
}

// ---------------------------------------------------------------------------
// The scheduler

struct ExecOutcome {
    decisions: Vec<Decision>,
    violation: Option<(ViolationKind, String)>,
    locks: Vec<LockUsage>,
}

fn schedule_string(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| d.options[d.taken].to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Runs one execution of `model` under the decision prefix `forced`.
fn run_once<F>(cfg: &Config, forced: Vec<usize>, model: &Arc<F>) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Exec {
        mon: StdMutex::new(Mon::new(forced)),
        cv: StdCondvar::new(),
        cfg: cfg.clone(),
    });
    {
        let mut mon = relock(exec.mon.lock());
        mon.threads.push(ThreadSlot::new(VClock::new()));
        mon.live_os = 1;
    }
    let handle = {
        let exec = Arc::clone(&exec);
        let model = Arc::clone(model);
        std::thread::Builder::new()
            .name("hi-check-t0".to_owned())
            .spawn(move || wrapper(exec, 0, move || (*model)()))
            .expect("spawn model thread 0")
    };
    scheduler_loop(&exec);
    let _ = handle.join();
    let mut mon = relock(exec.mon.lock());
    let mut locks: Vec<LockUsage> = mon
        .locks
        .iter()
        .map(|(uid, state)| LockUsage {
            name: state
                .name
                .clone()
                .unwrap_or_else(|| format!("lock#{}", uid & 0xffff_ffff)),
            acquires: state.acquires,
            releases: state.releases,
        })
        .collect();
    locks.sort_by(|a, b| a.name.cmp(&b.name));
    ExecOutcome {
        decisions: std::mem::take(&mut mon.decisions),
        violation: mon.violation.clone(),
        locks,
    }
}

fn scheduler_loop(exec: &Exec) {
    let mut mon: MutexGuard<'_, Mon> = relock(exec.mon.lock());
    loop {
        while mon.active != Active::Scheduler {
            mon = relock(exec.cv.wait(mon));
        }
        if mon.violation.is_some() {
            break;
        }
        if mon
            .threads
            .iter()
            .all(|slot| slot.state == TState::Finished)
        {
            break;
        }
        // Threads that can make real progress: runnable, or parked
        // waiters someone has notified.
        let progress: Vec<usize> = mon
            .threads
            .iter()
            .enumerate()
            .filter(|(_, slot)| {
                matches!(
                    slot.state,
                    TState::Runnable | TState::WaitingCv { notified: true, .. }
                )
            })
            .map(|(tid, _)| tid)
            .collect();
        // Waiters only a spurious wakeup could revive.
        let spurious: Vec<usize> = if exec.cfg.spurious_wakeups {
            mon.threads
                .iter()
                .enumerate()
                .filter(|(_, slot)| {
                    matches!(
                        slot.state,
                        TState::WaitingCv {
                            notified: false,
                            ..
                        }
                    )
                })
                .map(|(tid, _)| tid)
                .collect()
        } else {
            Vec::new()
        };
        if progress.is_empty() {
            let (kind, message) = classify_stuck(&mon);
            mon.report(kind, message);
            break;
        }
        // Candidate order: continue the last-scheduled thread first (no
        // preemption), then the rest ascending, then spurious wakeups.
        // A reached preemption bound forces continuation.
        let cont = mon
            .last_scheduled
            .filter(|l| progress.contains(l) && mon.threads[*l].state == TState::Runnable);
        let bound_hit = exec
            .cfg
            .preemption_bound
            .is_some_and(|bound| mon.preemptions >= bound);
        let mut options: Vec<usize> = Vec::new();
        if let Some(l) = cont {
            options.push(l);
        }
        if !(bound_hit && cont.is_some()) {
            for &tid in progress.iter().chain(spurious.iter()) {
                if !options.contains(&tid) {
                    options.push(tid);
                }
            }
        }
        let index = mon.decisions.len();
        let taken = match mon.forced.get(index) {
            Some(&forced_tid) => match options.iter().position(|&t| t == forced_tid) {
                Some(position) => position,
                None => {
                    let message = format!(
                        "replayed schedule chose t{forced_tid} at decision {index}, but the \
                         candidates are {options:?} — the model is not deterministic \
                         under a fixed schedule"
                    );
                    mon.report(ViolationKind::ReplayDivergence, message);
                    break;
                }
            },
            None => 0,
        };
        let choice = options[taken];
        mon.decisions.push(Decision { options, taken });
        if let Some(l) = cont {
            if choice != l {
                mon.preemptions += 1;
            }
        }
        if let TState::WaitingCv { .. } = mon.threads[choice].state {
            mon.threads[choice].state = TState::Runnable;
        }
        mon.last_scheduled = Some(choice);
        mon.active = Active::Thread(choice);
        exec.cv.notify_all();
    }
    mon.aborting = true;
    exec.cv.notify_all();
    while mon.live_os > 0 {
        mon = relock(exec.cv.wait(mon));
    }
}

/// No thread can make progress: name the culprits.
fn classify_stuck(mon: &Mon) -> (ViolationKind, String) {
    let mut waiters = Vec::new();
    let mut blocked = Vec::new();
    for (tid, slot) in mon.threads.iter().enumerate() {
        match &slot.state {
            TState::WaitingCv { cv, .. } => {
                waiters.push(format!("t{tid} parked on cv#{}", cv & 0xffff_ffff));
            }
            TState::BlockedLock(uid) => {
                blocked.push(format!("t{tid} waiting for {}", mon.lock_name(*uid)));
            }
            TState::BlockedJoin(target) => {
                blocked.push(format!("t{tid} joining t{target}"));
            }
            TState::Runnable | TState::Finished => {}
        }
    }
    if waiters.is_empty() {
        (
            ViolationKind::Deadlock,
            format!("all unfinished threads are blocked: {}", blocked.join(", ")),
        )
    } else {
        let mut parts = waiters;
        parts.extend(blocked);
        (
            ViolationKind::LostWakeup,
            format!(
                "{} — no runnable thread remains to notify, so the wakeup is \
                 lost (progress must not depend on a spurious wakeup)",
                parts.join(", ")
            ),
        )
    }
}

// ---------------------------------------------------------------------------
// Exploration drivers

/// Explores interleavings of `model` under `cfg`, stopping at the first
/// violation or when the (preemption-bounded) schedule space or the
/// execution budget is exhausted.
pub fn explore<F>(cfg: &Config, model: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut forced: Vec<usize> = Vec::new();
    let mut executions = 0u64;
    loop {
        let outcome = run_once(cfg, forced.clone(), &model);
        executions += 1;
        if let Some((kind, message)) = outcome.violation {
            return CheckReport {
                executions,
                complete: false,
                violation: Some(Violation {
                    kind,
                    schedule: schedule_string(&outcome.decisions),
                    message,
                }),
                locks: outcome.locks,
            };
        }
        if executions >= cfg.max_executions {
            return CheckReport {
                executions,
                complete: false,
                violation: None,
                locks: outcome.locks,
            };
        }
        // Backtrack: deepest decision with an untried alternative.
        let mut decisions = outcome.decisions;
        let exhausted = loop {
            match decisions.pop() {
                None => break true,
                Some(decision) => {
                    if decision.taken + 1 < decision.options.len() {
                        forced = decisions
                            .iter()
                            .map(|d| d.options[d.taken])
                            .collect::<Vec<_>>();
                        forced.push(decision.options[decision.taken + 1]);
                        break false;
                    }
                }
            }
        };
        if exhausted {
            return CheckReport {
                executions,
                complete: true,
                violation: None,
                locks: outcome.locks,
            };
        }
    }
}

/// Replays one execution from a schedule string produced by a
/// [`Violation`]; decisions beyond the recorded prefix take first
/// choices. Returns that single execution's report.
pub fn replay<F>(cfg: &Config, schedule: &str, model: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    let forced: Vec<usize> = schedule
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("malformed schedule entry `{part}`"))
        })
        .collect();
    let model = Arc::new(model);
    let outcome = run_once(cfg, forced, &model);
    CheckReport {
        executions: 1,
        complete: false,
        violation: outcome.violation.map(|(kind, message)| Violation {
            kind,
            schedule: schedule_string(&outcome.decisions),
            message,
        }),
        locks: outcome.locks,
    }
}
