//! Property-based tests of the channel model: symmetry, determinism and
//! calibration bounds hold for arbitrary (sane) parameters and seeds.

use hi_channel::{
    BodyLocation, Channel, ChannelModel, ChannelParams, PathLossMatrix, PathLossParams,
    VariationParams,
};
use hi_des::SimTime;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = ChannelParams> {
    (
        30.0..45.0f64, // pl0
        2.0..6.0f64,   // exponent
        0.0..20.0f64,  // nlos penalty
        0.0..12.0f64,  // limb penalty
        0.5..10.0f64,  // sigma
        0.05..5.0f64,  // tau
    )
        .prop_map(|(pl0, exp, nlos, limb, sigma, tau)| ChannelParams {
            path_loss: PathLossParams {
                pl0_db: pl0,
                ref_distance_m: 0.1,
                exponent: exp,
                nlos_penalty_db: nlos,
                limb_penalty_db: limb,
            },
            variation: VariationParams {
                sigma_db: sigma,
                tau_s: tau,
            },
        })
}

fn loc_strategy() -> impl Strategy<Value = BodyLocation> {
    (0usize..10).prop_map(|i| BodyLocation::from_index(i).expect("index < 10"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matrix_is_symmetric_zero_diagonal(params in params_strategy()) {
        let m = PathLossMatrix::synthetic(&params.path_loss);
        for &a in &BodyLocation::ALL {
            prop_assert_eq!(m.loss_db(a, a), 0.0);
            for &b in &BodyLocation::ALL {
                prop_assert_eq!(m.loss_db(a, b), m.loss_db(b, a));
                if a != b {
                    prop_assert!(m.loss_db(a, b) >= params.path_loss.pl0_db - 1e-9);
                }
            }
        }
    }

    #[test]
    fn channel_symmetric_and_deterministic(
        params in params_strategy(),
        a in loc_strategy(),
        b in loc_strategy(),
        seed in any::<u64>(),
        t_ms in 1u64..10_000,
    ) {
        let t = SimTime::from_nanos(t_ms * 1_000_000);
        let mut ch1 = Channel::new(params, seed);
        let v1 = ch1.path_loss_db(a, b, t);
        let v1r = ch1.path_loss_db(b, a, t); // same time: symmetric
        prop_assert_eq!(v1, v1r);

        let mut ch2 = Channel::new(params, seed);
        prop_assert_eq!(v1, ch2.path_loss_db(a, b, t));

        if a == b {
            prop_assert_eq!(v1, 0.0);
        } else {
            // Within mean +- 8 sigma: effectively always.
            let mean = PathLossMatrix::synthetic(&params.path_loss).loss_db(a, b);
            prop_assert!((v1 - mean).abs() <= 8.0 * params.variation.sigma_db + 1e-9);
        }
    }

    #[test]
    fn monotone_queries_never_panic(
        params in params_strategy(),
        seed in any::<u64>(),
        steps in prop::collection::vec(1u64..500, 1..64),
    ) {
        let mut ch = Channel::new(params, seed);
        let mut t = SimTime::ZERO;
        for (k, &d) in steps.iter().enumerate() {
            t = SimTime::from_nanos(t.as_nanos() + d * 1_000_000);
            let a = BodyLocation::ALL[k % 10];
            let b = BodyLocation::ALL[(k * 3 + 1) % 10];
            let v = ch.path_loss_db(a, b, t);
            prop_assert!(v.is_finite());
        }
    }
}
