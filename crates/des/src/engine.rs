//! The future-event list and simulation clock.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to [`cancel`](Engine::cancel) it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap (a max-heap):
        // earliest time first; FIFO among equal times via the sequence no.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event engine.
///
/// The engine is generic over the model's event type `E`. It maintains the
/// future-event list, the simulation clock and (lazily) cancelled timers.
/// Events scheduled for the same instant are delivered in scheduling order.
///
/// See the [crate-level example](crate) for usage.
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    horizon: SimTime,
    delivered: u64,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("delivered", &self.delivered)
            .field("horizon", &self.horizon)
            .finish()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at zero and no horizon.
    pub fn new() -> Self {
        Self {
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            horizon: SimTime::MAX,
            delivered: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending (including lazily cancelled ones).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Sets the horizon: events strictly after it are never delivered.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// Schedules `event` at absolute time `at`, returning a cancel handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the engine's current time):
    /// causality would be violated.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now = {}, requested = {}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            event,
        });
        EventHandle(seq)
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Pops the next event, advancing the clock. Returns `None` once the
    /// queue is exhausted or the next event lies beyond the horizon.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let next = self.queue.pop()?;
            if self.cancelled.remove(&next.seq) {
                continue;
            }
            if next.time > self.horizon {
                // Past the horizon: simulation over. Leave the clock where
                // it is; drop the event (and the rest stays in the queue,
                // which is fine because `pop` will keep returning `None`
                // only after re-pushing).
                self.queue.push(next);
                return None;
            }
            // Event-time monotonicity: the heap must never hand us an event
            // older than the clock. A violation means the ordering in
            // `Scheduled::cmp` (or a future refactor of it) is broken.
            debug_assert!(
                next.time >= self.now,
                "event-time monotonicity violated: clock at {}, popped event at {}",
                self.now,
                next.time
            );
            self.now = next.time;
            self.delivered += 1;
            return Some((next.time, next.event));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_delivered_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_nanos(30), "c");
        e.schedule_at(SimTime::from_nanos(10), "a");
        e.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, x)| x).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e = Engine::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            e.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, x)| x).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2.0), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1.0), ());
        e.pop();
        e.schedule_at(SimTime::from_secs(0.5), ());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_nanos(1), "x");
        e.schedule_at(SimTime::from_nanos(2), "y");
        e.cancel(h);
        assert_eq!(e.pop().map(|(_, v)| v), Some("y"));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_nanos(1), ());
        e.pop();
        e.cancel(h); // no panic, no effect
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut e = Engine::new();
        e.set_horizon(SimTime::from_secs(1.0));
        e.schedule_at(SimTime::from_secs(0.5), "in");
        e.schedule_at(SimTime::from_secs(1.5), "out");
        assert_eq!(e.pop().map(|(_, v)| v), Some("in"));
        assert_eq!(e.pop(), None);
        // Event exactly at the horizon still fires.
        let mut e = Engine::new();
        e.set_horizon(SimTime::from_secs(1.0));
        e.schedule_at(SimTime::from_secs(1.0), "edge");
        assert_eq!(e.pop().map(|(_, v)| v), Some("edge"));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1.0), 0u8);
        e.pop();
        e.schedule_in(SimDuration::from_secs(0.5), 1u8);
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1.5));
    }

    #[test]
    fn delivered_counter() {
        let mut e = Engine::new();
        for i in 0..5 {
            e.schedule_at(SimTime::from_nanos(i), i);
        }
        while e.pop().is_some() {}
        assert_eq!(e.delivered(), 5);
    }
}
