//! Average path loss between body sites (`PL̄_ij` of the paper's eq. 1).

use crate::BodyLocation;

/// Parameters of the synthetic log-distance average path-loss model.
///
/// The average loss between sites `i` and `j` is
///
/// ```text
/// PL̄_ij = pl0_db + 10 · exponent · log10(d_ij / ref_distance_m) + penalties
/// ```
///
/// with an `nlos_penalty_db` added for front↔back links (creeping-wave
/// propagation around the torso) and `limb_penalty_db` for links between
/// two distal limb sites (wrist/ankle), which in measurements suffer from
/// frequent body blockage.
///
/// Defaults are calibrated (see `EXPERIMENTS.md`) so the resulting matrix
/// spans ≈45–90 dB, matching the dynamic range of 2.4 GHz on-body
/// measurement campaigns, and so the paper's qualitative Fig. 3 shape is
/// reproduced with the CC2650 link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossParams {
    /// Loss at the reference distance, dB.
    pub pl0_db: f64,
    /// Reference distance, metres.
    pub ref_distance_m: f64,
    /// Log-distance exponent (on-body 2.4 GHz: 3–4).
    pub exponent: f64,
    /// Extra loss for front↔back (around-torso) links, dB.
    pub nlos_penalty_db: f64,
    /// Extra loss between two distal limb sites (wrist/ankle), dB.
    pub limb_penalty_db: f64,
}

impl Default for PathLossParams {
    fn default() -> Self {
        Self {
            pl0_db: 38.0,
            ref_distance_m: 0.1,
            exponent: 5.0,
            nlos_penalty_db: 14.0,
            limb_penalty_db: 8.0,
        }
    }
}

/// A symmetric matrix of average path losses (dB) over the ten body sites.
#[derive(Debug, Clone, PartialEq)]
pub struct PathLossMatrix {
    /// Row-major `10 x 10`, symmetric, zero diagonal.
    values: [[f64; BodyLocation::COUNT]; BodyLocation::COUNT],
}

impl PathLossMatrix {
    /// Builds the synthetic matrix from site geometry and `params`.
    pub fn synthetic(params: &PathLossParams) -> Self {
        let mut values = [[0.0; BodyLocation::COUNT]; BodyLocation::COUNT];
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                if a == b {
                    continue;
                }
                values[a.index()][b.index()] = Self::link_loss(a, b, params);
            }
        }
        Self { values }
    }

    /// Builds a matrix from explicit values (e.g. a measured dataset).
    ///
    /// The input is symmetrized by averaging `(i,j)` and `(j,i)` and the
    /// diagonal is zeroed.
    pub fn from_values(values: [[f64; BodyLocation::COUNT]; BodyLocation::COUNT]) -> Self {
        let mut v = values;
        for i in 0..BodyLocation::COUNT {
            v[i][i] = 0.0;
            for j in (i + 1)..BodyLocation::COUNT {
                let avg = 0.5 * (values[i][j] + values[j][i]);
                v[i][j] = avg;
                v[j][i] = avg;
            }
        }
        Self { values: v }
    }

    fn link_loss(a: BodyLocation, b: BodyLocation, p: &PathLossParams) -> f64 {
        let d = a.distance_m(b).max(p.ref_distance_m);
        let mut pl = p.pl0_db + 10.0 * p.exponent * (d / p.ref_distance_m).log10();
        if a.is_front() != b.is_front() {
            pl += p.nlos_penalty_db;
        }
        if a.is_distal() && b.is_distal() {
            pl += p.limb_penalty_db;
        }
        pl
    }

    /// Average path loss between two sites, dB (zero for `a == b`).
    pub fn loss_db(&self, a: BodyLocation, b: BodyLocation) -> f64 {
        self.values[a.index()][b.index()]
    }

    /// Largest off-diagonal entry, dB.
    pub fn max_loss_db(&self) -> f64 {
        let mut m = f64::NEG_INFINITY;
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                if a != b {
                    m = m.max(self.loss_db(a, b));
                }
            }
        }
        m
    }

    /// Smallest off-diagonal entry, dB.
    pub fn min_loss_db(&self) -> f64 {
        let mut m = f64::INFINITY;
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                if a != b {
                    m = m.min(self.loss_db(a, b));
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_matrix_is_symmetric() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                assert_eq!(m.loss_db(a, b), m.loss_db(b, a));
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        for &a in &BodyLocation::ALL {
            assert_eq!(m.loss_db(a, a), 0.0);
        }
    }

    #[test]
    fn dynamic_range_is_realistic() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        assert!(
            m.min_loss_db() > 40.0,
            "min loss too small: {}",
            m.min_loss_db()
        );
        assert!(
            m.max_loss_db() < 115.0,
            "max loss too large: {}",
            m.max_loss_db()
        );
        assert!(m.max_loss_db() - m.min_loss_db() > 20.0);
    }

    #[test]
    fn nlos_links_are_worse_than_los_at_same_distance_class() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        // chest->back is geometrically short but around-torso.
        let chest_back = m.loss_db(BodyLocation::Chest, BodyLocation::Back);
        let chest_hip = m.loss_db(BodyLocation::Chest, BodyLocation::LeftHip);
        assert!(chest_back > chest_hip);
    }

    #[test]
    fn wrist_to_ankle_is_among_the_worst() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        let wa = m.loss_db(BodyLocation::LeftWrist, BodyLocation::RightAnkle);
        assert!(
            wa > 75.0,
            "wrist-ankle {wa} dB should be heavily attenuated"
        );
    }

    #[test]
    fn from_values_symmetrizes() {
        let mut v = [[0.0; 10]; 10];
        v[0][1] = 50.0;
        v[1][0] = 60.0;
        v[2][2] = 99.0; // diagonal must be cleared
        let m = PathLossMatrix::from_values(v);
        assert_eq!(m.loss_db(BodyLocation::Chest, BodyLocation::LeftHip), 55.0);
        assert_eq!(m.loss_db(BodyLocation::LeftHip, BodyLocation::Chest), 55.0);
        assert_eq!(
            m.loss_db(BodyLocation::RightHip, BodyLocation::RightHip),
            0.0
        );
    }

    #[test]
    fn loss_grows_with_distance() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        let near = m.loss_db(BodyLocation::LeftHip, BodyLocation::RightHip);
        let far = m.loss_db(BodyLocation::Chest, BodyLocation::LeftAnkle);
        assert!(far > near);
    }
}
