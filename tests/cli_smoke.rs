//! End-to-end smoke tests of the `hi-opt` CLI binary.

use std::process::Command;

fn hi_opt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hi-opt"))
}

#[test]
fn space_prints_the_design_space() {
    let out = hi_opt().arg("space").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("feasible placements  : 110"));
    assert!(text.contains("feasible points      : 1320"));
    assert!(text.contains("12288"));
}

#[test]
fn help_exits_zero() {
    let out = hi_opt().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = hi_opt().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_runs_an_explicit_config() {
    let out = hi_opt()
        .args([
            "simulate",
            "--sites",
            "0,1,3,5",
            "--power",
            "0",
            "--mac",
            "tdma",
            "--routing",
            "star",
            "--tsim",
            "5",
            "--runs",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PDR"));
    assert!(text.contains("lifetime"));
    assert!(text.contains("Star TDMA 0dBm"));
}

#[test]
fn simulate_rejects_star_without_chest() {
    let out = hi_opt()
        .args([
            "simulate",
            "--sites",
            "1,3,5",
            "--power",
            "0",
            "--mac",
            "tdma",
            "--routing",
            "star",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("chest"));
}

#[test]
fn explore_finds_an_optimum_quickly() {
    let out = hi_opt()
        .args(["explore", "--pdr-min", "0.6", "--tsim", "5", "--runs", "1"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal design"));
    assert!(text.contains("simulations"));
}

#[test]
fn lint_runs_clean_on_paper_scenario() {
    let out = hi_opt().arg("lint").output().expect("binary runs");
    assert!(
        out.status.success(),
        "lint must find zero error-severity issues; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("configuration space"));
    assert!(text.contains("cut ladder"));
    assert!(text.contains("event schedule sample"));
    assert!(text.contains("summary: 0 error(s)"), "{text}");
}

#[test]
fn lint_rejects_unknown_options() {
    let out = hi_opt()
        .args(["lint", "--frobnicate", "1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn explore_validates_pdr_min() {
    let out = hi_opt()
        .args(["explore", "--pdr-min", "1.7"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
