//! Integration tests for the execution engine: ordering, stealing,
//! panic propagation, cancellation and exactly-once cache semantics
//! under real cross-thread contention.
//!
//! Real-thread tests only: under `--features shadow` the crate's sync
//! facade routes to hi-check's model-checked primitives, which require a
//! checker context (see `src/model_tests.rs` instead).

#![cfg(not(feature = "shadow"))]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hi_exec::{CancelToken, EvalCache, EvalError, ThreadPool};

#[test]
fn par_map_order_is_stable_across_thread_counts() {
    let items: Vec<u64> = (0..500).collect();
    let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
    for threads in [1, 2, 8] {
        let pool = ThreadPool::new(threads);
        let out = pool.par_map(items.clone(), |x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(out, expected, "thread count {threads} changed the output");
    }
}

#[test]
fn worker_panic_reaches_the_caller_with_its_message() {
    let pool = ThreadPool::new(4);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.par_map((0..64u32).collect::<Vec<_>>(), |x| {
            assert!(x != 33, "evaluator rejected point {x}");
            x
        })
    }))
    .expect_err("the batch must panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("evaluator rejected point 33"),
        "unexpected payload: {message:?}"
    );
}

#[test]
fn cancellation_mid_batch_keeps_completed_prefix_slots() {
    let pool = ThreadPool::new(2);
    let token = CancelToken::new();
    let cancel_from_task = token.clone();
    let observed_from_task = token.clone();
    // Task 0 cancels the batch; every other in-flight task holds (bounded,
    // so a pathological schedule cannot deadlock the test) until the
    // cancel fires, guaranteeing most of the batch is still queued — and
    // therefore skipped — when cancellation lands, on any scheduler.
    let out = pool.par_map_cancellable((0..1000u64).collect::<Vec<_>>(), token, move |x| {
        if x == 0 {
            cancel_from_task.cancel();
        } else {
            let start = std::time::Instant::now();
            while !observed_from_task.is_cancelled()
                && start.elapsed() < std::time::Duration::from_millis(500)
            {
                std::thread::yield_now();
            }
        }
        x + 1
    });
    assert_eq!(out.len(), 1000);
    assert!(out.iter().any(Option::is_some));
    assert!(
        out.iter().any(Option::is_none),
        "cancellation had no effect"
    );
    for (i, slot) in out.iter().enumerate() {
        if let Some(v) = slot {
            assert_eq!(*v, i as u64 + 1);
        }
    }
}

#[test]
fn cache_computes_every_key_exactly_once_under_contention() {
    let cache: Arc<EvalCache<u64, u64>> = Arc::new(EvalCache::with_shards(4));
    let computes = Arc::new(AtomicU64::new(0));
    let pool = ThreadPool::new(8);
    // 800 tasks hammer 10 distinct keys.
    let keys: Vec<u64> = (0..800).map(|i| i % 10).collect();
    let (cache2, computes2) = (Arc::clone(&cache), Arc::clone(&computes));
    let out = pool.par_map(keys.clone(), move |k| {
        cache2.get_or_compute(k, || {
            computes2.fetch_add(1, Ordering::Relaxed);
            k * 100
        })
    });
    assert_eq!(computes.load(Ordering::Relaxed), 10, "duplicated computes");
    assert_eq!(cache.misses(), 10);
    assert_eq!(cache.hits(), 790);
    assert_eq!(cache.len(), 10);
    for (k, v) in keys.iter().zip(&out) {
        assert_eq!(*v, k * 100);
    }
}

#[test]
fn par_map_catching_degrades_panics_to_per_slot_errors() {
    for threads in [1, 2, 8] {
        let pool = ThreadPool::new(threads);
        let out = pool.par_map_catching((0..64u32).collect::<Vec<_>>(), CancelToken::new(), |x| {
            assert!(x % 10 != 3, "evaluator rejected point {x}");
            if x == 40 {
                return Err(EvalError::new("typed failure for point 40"));
            }
            Ok(x * 2)
        });
        assert_eq!(out.len(), 64, "thread count {threads} lost slots");
        for (i, slot) in out.iter().enumerate() {
            let result = slot.as_ref().expect("nothing was cancelled");
            match result {
                Ok(v) if i as u32 % 10 != 3 && i != 40 => assert_eq!(*v, i as u32 * 2),
                Ok(v) => panic!("slot {i} should have failed, got {v}"),
                Err(e) if i as u32 % 10 == 3 => {
                    assert!(
                        e.message().contains(&format!("rejected point {i}")),
                        "slot {i}: panic message lost: {e}"
                    );
                }
                Err(e) => {
                    assert_eq!(i, 40);
                    assert_eq!(e.message(), "typed failure for point 40");
                }
            }
        }
    }
}

#[test]
fn cache_waiters_survive_a_computing_thread_panic() {
    // Regression test for the in-flight slot protocol: thread A starts
    // computing a key and panics mid-compute while other threads are
    // parked on the condvar waiting for that key. The InFlightGuard must
    // clear the marker and wake the waiters, one of which then retries
    // the compute — nobody hangs, and the key is still computed (attempted
    // twice: the panicking attempt plus the successful retry).
    let cache: Arc<EvalCache<u64, u64>> = Arc::new(EvalCache::with_shards(1));
    let attempts = Arc::new(AtomicU64::new(0));
    let pool = ThreadPool::new(4);
    let (cache2, attempts2) = (Arc::clone(&cache), Arc::clone(&attempts));
    let out = pool.par_map_catching(
        (0..16u64).collect::<Vec<_>>(),
        CancelToken::new(),
        move |_| {
            Ok(cache2.get_or_compute(7, || {
                // First attempt panics after the others have had ample time
                // to queue up behind the in-flight marker.
                if attempts2.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("compute died mid-flight");
                }
                700
            }))
        },
    );
    assert_eq!(out.len(), 16);
    let mut ok = 0;
    let mut failed = 0;
    for slot in &out {
        match slot.as_ref().expect("nothing was cancelled") {
            Ok(v) => {
                assert_eq!(*v, 700);
                ok += 1;
            }
            Err(e) => {
                assert!(e.message().contains("compute died mid-flight"));
                failed += 1;
            }
        }
    }
    assert_eq!(failed, 1, "exactly the panicking task fails");
    assert_eq!(ok, 15, "every waiter must be woken and get the value");
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry, no more");
    assert_eq!(cache.len(), 1);
}

#[test]
fn cache_values_agree_between_pool_sizes() {
    // The same work done on different pool sizes must produce the same
    // cache contents and the same miss count.
    let run = |threads: usize| {
        let cache: Arc<EvalCache<u64, u64>> = Arc::new(EvalCache::new());
        let pool = ThreadPool::new(threads);
        let cache2 = Arc::clone(&cache);
        let out = pool.par_map((0..100u64).collect::<Vec<_>>(), move |k| {
            cache2.get_or_compute(k % 7, || (k % 7) * 3)
        });
        (out, cache.misses())
    };
    assert_eq!(run(1), run(8));
}
