//! Packet forensics: trace a short simulation over the fading body
//! channel and reconstruct one packet's journey — generation, the
//! original broadcast, the coordinator's relay, collisions and
//! deliveries, all timestamped. Also injects a node failure mid-run to
//! show how the trace captures it.
//!
//! ```sh
//! cargo run --release -p hi-opt --example packet_forensics
//! ```

use hi_opt::channel::BodyLocation;
use hi_opt::channel::{Channel, ChannelParams};
use hi_opt::des::SimDuration;
use hi_opt::net::trace::{packet_journey, TraceEvent};
use hi_opt::net::{MacKind, NetworkConfig, NetworkSim, NodeFault, Routing, TxPower};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftAnkle,
            BodyLocation::LeftWrist,
        ],
        TxPower::Minus10Dbm, // marginal links => interesting losses
        MacKind::csma(),
        Routing::Star { coordinator: 0 },
    );
    cfg.app.packets_per_second = 2.0; // sparse, readable trace
    cfg.faults.push(NodeFault {
        node: 2,
        at: SimDuration::from_secs(3.0),
    });

    let channel = Channel::new(ChannelParams::default(), 77);
    let sim = NetworkSim::new(cfg, channel, SimDuration::from_secs(5.0), 77)?;
    let (outcome, events) = sim.run_traced();

    println!(
        "run summary: PDR {:.1}%, {} events traced\n",
        outcome.pdr * 100.0,
        events.len()
    );

    println!("first 25 trace lines:");
    for e in events.iter().take(25) {
        println!("  {e}");
    }

    // Follow the ankle node's first packet before it died.
    println!("\njourney of packet 2:0 (the ankle node's first packet):");
    for e in packet_journey(&events, 2, 0) {
        println!("  {e}");
    }

    // Count what the fade cost us.
    let collisions = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Corrupted { .. }))
        .count();
    let failures = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeFailed { .. }))
        .count();
    println!("\ncollisions: {collisions}, node failures: {failures}");
    println!(
        "events after the ankle node's death at t=3s mention it only as history: \
         the trace is the ground truth the aggregate metrics summarize."
    );
    Ok(())
}
