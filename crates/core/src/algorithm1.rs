//! Algorithm 1 of the paper: MILP-guided, simulation-verified design-space
//! exploration.
//!
//! Each iteration asks the MILP for the set `S` of configurations with the
//! lowest analytic power `P̄*` still admissible, simulates them, keeps the
//! best reliability-feasible candidate, and prunes the level with a power
//! cut. The loop stops when the MILP runs dry or when the α-corrected
//! analytic bound proves that no remaining configuration can beat the
//! incumbent: `P̄*/α(S*, PDRmin) > P̄min`.

use hi_net::AppParams;
use hi_trace::wellknown as wk;

use crate::checkpoint::ExploreCheckpoint;
use crate::constraints::DesignSpace;
use crate::evaluator::{Evaluation, Evaluator, PointEvaluator};
use crate::exhaustive::{best_feasible, improves};
use crate::milp_encode::MilpEncoding;
use crate::parallel::ExecContext;
use crate::point::DesignPoint;
use crate::power::alpha;

/// The optimization problem `P` (eq. 8): maximize lifetime subject to a
/// reliability floor over a constrained design space.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Topological/configuration constraints defining the space.
    pub space: DesignSpace,
    /// The reliability floor `PDRmin` in `[0, 1]`.
    pub pdr_min: f64,
    /// Application-layer parameters (traffic, baseline power).
    pub app: AppParams,
}

impl Problem {
    /// The paper's §4.1 problem at a given `PDRmin`.
    ///
    /// # Panics
    ///
    /// Panics if `pdr_min` is outside `[0, 1]`.
    pub fn paper_default(pdr_min: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pdr_min),
            "pdr_min must be in [0, 1], got {pdr_min}"
        );
        Self {
            space: DesignSpace::paper_default(),
            pdr_min,
            app: AppParams::default(),
        }
    }
}

/// Why the exploration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The MILP became infeasible: every admissible level was explored.
    MilpExhausted,
    /// The α-corrected analytic bound proved the incumbent optimal.
    BoundProven,
    /// The execution context's [`CancelToken`](hi_exec::CancelToken)
    /// fired: the loop stopped early and `best` holds the incumbent from
    /// the last *fully evaluated* candidate level (partial levels are
    /// discarded so cancellation can never report a wrong optimum, only
    /// a premature one).
    Cancelled,
    /// The simulation budget ([`ExploreOptions::budget`]) ran out: the
    /// loop stopped before the next MILP query and `best` holds the
    /// best-so-far incumbent. The exploration state can be checkpointed
    /// (see [`ExplorationOutcome::cuts`] and
    /// [`ExploreCheckpoint`](crate::ExploreCheckpoint)) and resumed
    /// later with a bit-identical continuation.
    BudgetExhausted,
}

/// The result of a design-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationOutcome {
    /// The optimal design and its measured performance, or `None` if no
    /// configuration satisfies the reliability constraint.
    pub best: Option<(DesignPoint, Evaluation)>,
    /// MILP query iterations performed.
    pub iterations: u32,
    /// Candidate configurations proposed by the MILP across all
    /// iterations.
    pub candidates_proposed: u64,
    /// Unique simulations run (the evaluator's counter).
    pub simulations: u64,
    /// Candidates whose evaluation failed (panicking simulation, broken
    /// lowering). Failed candidates are excluded from their level and the
    /// exploration carries on; a nonzero count flags degraded results.
    pub eval_errors: u64,
    /// The power-cut ladder applied to the MILP, in application order —
    /// together with `best` and the counters, the full exploration state
    /// (see [`ExploreCheckpoint`](crate::ExploreCheckpoint)).
    pub cuts: Vec<f64>,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
}

impl ExplorationOutcome {
    /// True if a feasible optimum was found.
    pub fn is_feasible(&self) -> bool {
        self.best.is_some()
    }
}

/// Errors from [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The underlying MILP solver failed.
    Milp(hi_milp::SolveError),
    /// A resume checkpoint is unusable (malformed, or recorded under a
    /// different problem/options than the resuming run).
    Checkpoint(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Milp(e) => write!(f, "milp solver failure: {e}"),
            ExploreError::Checkpoint(msg) => write!(f, "bad checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Milp(e) => Some(e),
            ExploreError::Checkpoint(_) => None,
        }
    }
}

impl From<hi_milp::SolveError> for ExploreError {
    fn from(e: hi_milp::SolveError) -> Self {
        ExploreError::Milp(e)
    }
}

/// Tuning knobs for [`explore_with_options`]; the defaults reproduce the
/// paper's Algorithm 1 exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Apply the α divisor in the termination test (line 5). Disabling it
    /// makes the bound naively compare `P̄*` against `P̄min` — an ablation
    /// showing why the paper needs α: the analytic model *over*estimates
    /// the power of lossy configurations, so the naive test can stop one
    /// level early and return a false optimum.
    pub alpha_correction: bool,
    /// Graceful-degradation budget: stop with
    /// [`StopReason::BudgetExhausted`] (returning best-so-far) once this
    /// many unique simulations have been spent. The check runs at the top
    /// of each iteration, so a partially evaluated level is never
    /// reported. `None` (the default) means unlimited. On a resumed run
    /// the budget counts *total* simulations including the checkpoint's.
    pub budget: Option<u64>,
    /// Auto-checkpoint cadence: snapshot the exploration state every `k`
    /// completed iterations and hand it to the observer (see
    /// [`explore_par_observed`]). The snapshot is taken after the level's
    /// power cut lands, so resuming from it replays exactly the levels an
    /// uninterrupted run would visit next. `None` (the default) and
    /// `Some(0)` disable periodic snapshots; entry points without an
    /// observer ignore the cadence entirely.
    pub checkpoint_every: Option<u32>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            alpha_correction: true,
            budget: None,
            checkpoint_every: None,
        }
    }
}

/// Runs Algorithm 1 on `problem`, using `evaluator` as the `RunSim` oracle.
///
/// # Errors
///
/// Returns [`ExploreError`] if the MILP solver fails (structurally
/// impossible for well-formed problems; numerical safety valve).
pub fn explore(
    problem: &Problem,
    evaluator: &mut dyn Evaluator,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_with_options(problem, evaluator, ExploreOptions::default())
}

/// [`explore`] with explicit [`ExploreOptions`] (ablation entry point).
///
/// # Errors
///
/// Returns [`ExploreError`] if the MILP solver fails.
pub fn explore_with_options(
    problem: &Problem,
    evaluator: &mut dyn Evaluator,
    options: ExploreOptions,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_impl(
        problem,
        options,
        &mut SeqOracle(evaluator),
        None,
        &mut |_| (),
    )
}

/// [`explore`] on the execution engine: each candidate level (the MILP's
/// pool `S`) fans out over `exec`'s thread pool and the per-level
/// reduction stays sequential over pool order, so the outcome — best
/// point, iteration count, candidate count and simulation count — is
/// bit-identical for every thread count (`threads == 1` runs the plain
/// sequential loop).
///
/// Cancelling `exec` stops in-flight candidate evaluations between tasks
/// and breaks the loop with [`StopReason::Cancelled`]; the incumbent of
/// the last fully evaluated level is returned.
///
/// # Errors
///
/// Returns [`ExploreError`] if the MILP solver fails.
pub fn explore_par<P: PointEvaluator>(
    problem: &Problem,
    evaluator: &P,
    options: ExploreOptions,
    exec: &ExecContext,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_par_from(problem, evaluator, options, exec, None)
}

/// [`explore_par`] resuming from a saved [`ExploreCheckpoint`]: the
/// checkpoint's cut ladder is replayed into a fresh MILP encoding and its
/// incumbent and effort counters are restored, so the continuation visits
/// exactly the candidate levels the uninterrupted run would have visited
/// next. Because levels are disjoint (each cut excludes the previous
/// level), a checkpoint-and-resume pair performs the same total unique
/// simulations — and reports the same outcome, bit for bit — as a single
/// straight-through run.
///
/// # Errors
///
/// Returns [`ExploreError::Checkpoint`] if the checkpoint was recorded
/// under a different `pdr_min` or `alpha_correction` than this call, and
/// [`ExploreError::Milp`] if the MILP solver fails.
pub fn explore_par_from<P: PointEvaluator>(
    problem: &Problem,
    evaluator: &P,
    options: ExploreOptions,
    exec: &ExecContext,
    resume: Option<&ExploreCheckpoint>,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_par_observed(problem, evaluator, options, exec, resume, &mut |_| ())
}

/// [`explore_par_from`] with an auto-checkpoint observer: every
/// [`ExploreOptions::checkpoint_every`] completed iterations, `observer`
/// receives a snapshot of the full exploration state (taken after that
/// level's power cut, so it resumes bit-identically). The observer is the
/// persistence policy — the CLI writes each snapshot crash-safely via
/// [`ExploreCheckpoint::write_atomic`](crate::ExploreCheckpoint::write_atomic);
/// tests collect them in memory. Observer calls happen on the driving
/// thread, between iterations, so they never perturb evaluation order.
///
/// # Errors
///
/// Returns [`ExploreError::Checkpoint`] if the checkpoint was recorded
/// under a different `pdr_min` or `alpha_correction` than this call, and
/// [`ExploreError::Milp`] if the MILP solver fails.
pub fn explore_par_observed<P: PointEvaluator>(
    problem: &Problem,
    evaluator: &P,
    options: ExploreOptions,
    exec: &ExecContext,
    resume: Option<&ExploreCheckpoint>,
    observer: &mut dyn FnMut(&ExploreCheckpoint),
) -> Result<ExplorationOutcome, ExploreError> {
    if let Some(cp) = resume {
        if cp.engine != crate::checkpoint::ENGINE_ALGORITHM1 {
            return Err(ExploreError::Checkpoint(format!(
                "checkpoint was recorded by engine `{}`, this run uses `{}`",
                cp.engine,
                crate::checkpoint::ENGINE_ALGORITHM1
            )));
        }
        if cp.pdr_min.to_bits() != problem.pdr_min.to_bits() {
            return Err(ExploreError::Checkpoint(format!(
                "checkpoint was recorded at pdr_min = {}, this run uses {}",
                cp.pdr_min, problem.pdr_min
            )));
        }
        if cp.alpha_correction != options.alpha_correction {
            return Err(ExploreError::Checkpoint(
                "checkpoint and this run disagree on alpha_correction".into(),
            ));
        }
    }
    explore_impl(
        problem,
        options,
        &mut ParOracle {
            evaluator,
            exec,
            eval_errors: 0,
        },
        resume,
        observer,
    )
}

/// How `explore_impl` measures candidate levels: sequentially through a
/// `&mut dyn Evaluator`, or batched over the execution engine.
trait CandidateOracle {
    /// Evaluates one candidate level in pool order. `None` entries mark
    /// candidates skipped because of cancellation.
    fn eval_level(&mut self, pool: &[DesignPoint]) -> Vec<Option<Evaluation>>;
    /// The evaluator's unique-simulation counter.
    fn unique_evaluations(&self) -> u64;
    /// Whether the search has been cancelled.
    fn cancelled(&self) -> bool;
    /// Candidates whose evaluation failed so far (0 for oracles that
    /// cannot observe failures).
    fn eval_errors(&self) -> u64 {
        0
    }
}

struct SeqOracle<'a>(&'a mut dyn Evaluator);

impl CandidateOracle for SeqOracle<'_> {
    fn eval_level(&mut self, pool: &[DesignPoint]) -> Vec<Option<Evaluation>> {
        hi_trace::counter(wk::CORE_EVALS, pool.len() as u64);
        pool.iter().map(|p| Some(self.0.evaluate(p))).collect()
    }

    fn unique_evaluations(&self) -> u64 {
        self.0.unique_evaluations()
    }

    fn cancelled(&self) -> bool {
        false
    }
}

struct ParOracle<'a, P: PointEvaluator> {
    evaluator: &'a P,
    exec: &'a ExecContext,
    eval_errors: u64,
}

impl<P: PointEvaluator> CandidateOracle for ParOracle<'_, P> {
    fn eval_level(&mut self, pool: &[DesignPoint]) -> Vec<Option<Evaluation>> {
        // A failed candidate degrades to an empty slot: it is excluded
        // from the level (it cannot be elected incumbent) and counted,
        // while every healthy candidate still completes.
        hi_trace::counter(wk::CORE_EVALS, pool.len() as u64);
        let errors_before = self.eval_errors;
        let level: Vec<Option<Evaluation>> = self
            .exec
            .try_eval_points(self.evaluator, pool)
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(eval)) => Some(eval),
                Some(Err(_)) => {
                    self.eval_errors += 1;
                    None
                }
                None => None,
            })
            .collect();
        hi_trace::counter(wk::CORE_EVAL_ERRORS, self.eval_errors - errors_before);
        level
    }

    fn unique_evaluations(&self) -> u64 {
        self.evaluator.unique_evaluations()
    }

    fn cancelled(&self) -> bool {
        self.exec.is_cancelled()
    }

    fn eval_errors(&self) -> u64 {
        self.eval_errors
    }
}

fn explore_impl(
    problem: &Problem,
    options: ExploreOptions,
    oracle: &mut dyn CandidateOracle,
    resume: Option<&ExploreCheckpoint>,
    observer: &mut dyn FnMut(&ExploreCheckpoint),
) -> Result<ExplorationOutcome, ExploreError> {
    let mut encoding = MilpEncoding::new(problem.space.constraints(), &problem.app);
    let mut cuts: Vec<f64> = Vec::new();
    let mut best: Option<(DesignPoint, Evaluation)> = None;
    let mut p_min = f64::INFINITY; // P̄min: best simulated power so far
    let mut iterations = 0u32;
    let mut candidates_proposed = 0u64;
    let mut prior_sims = 0u64;
    if let Some(cp) = resume {
        // Replay the saved state: the cut ladder reproduces the MILP's
        // admissible region, the incumbent reproduces P̄min and the bound
        // test, and the counters make reported totals cumulative.
        for &cut in &cp.cuts {
            encoding.add_power_cut(cut);
            cuts.push(cut);
        }
        best = cp.best;
        p_min = cp.best.map_or(f64::INFINITY, |(_, e)| e.power_mw);
        iterations = cp.iterations;
        candidates_proposed = cp.candidates_proposed;
        prior_sims = cp.simulations;
    }
    let sims_before = oracle.unique_evaluations();
    let sims_spent =
        |oracle: &dyn CandidateOracle| prior_sims + (oracle.unique_evaluations() - sims_before);

    let stop_reason = loop {
        if oracle.cancelled() {
            break StopReason::Cancelled;
        }
        // Graceful degradation: out of simulation budget means stop
        // *before* starting another level, keeping best-so-far intact.
        if options.budget.is_some_and(|b| sims_spent(oracle) >= b) {
            break StopReason::BudgetExhausted;
        }
        let mut iter_span = hi_trace::span("algo1.iteration");
        if iter_span.is_recording() {
            iter_span.arg("iteration", u64::from(iterations) + 1);
        }
        // Line 3: (S, P̄*) <- RunMILP(P̃).
        let (pool, p_star) = {
            let _s = hi_trace::span("algo1.milp_query");
            encoding.solve_pool()?
        };
        iterations += 1;
        hi_trace::counter(wk::ALGO1_ITERATIONS, 1);
        hi_trace::histogram(wk::MILP_POOL_SIZE, pool.len() as u64);
        let Some(p_star) = p_star else {
            break StopReason::MilpExhausted; // lines 4 & 5 (S = {})
        };
        // Line 5: optimality proof via the α-corrected bound.
        if let Some((incumbent, _)) = &best {
            let a = if options.alpha_correction {
                alpha(incumbent, problem.pdr_min, &problem.app)
            } else {
                1.0
            };
            if p_star / a > p_min {
                break StopReason::BoundProven;
            }
        }
        candidates_proposed += pool.len() as u64;
        hi_trace::counter(wk::ALGO1_CANDIDATES, pool.len() as u64);

        // Line 7: RunSim(S); line 8: Sort. The reduction walks pool order,
        // so the level best (ties: lowest power, then first in pool order)
        // is independent of evaluation scheduling.
        let evals = {
            let mut s = hi_trace::span("algo1.eval_level");
            if s.is_recording() {
                s.arg("candidates", pool.len() as u64);
            }
            oracle.eval_level(&pool)
        };
        if oracle.cancelled() {
            // A partially evaluated level could elect a wrong level-best;
            // discard it and report the incumbent so far.
            break StopReason::Cancelled;
        }
        let level: Vec<(DesignPoint, Evaluation)> = pool
            .iter()
            .zip(evals)
            .filter_map(|(point, eval)| eval.map(|e| (*point, e)))
            .collect();
        // Lines 9-10: update the incumbent.
        if let Some((pt, ev)) = best_feasible(&level, problem.pdr_min) {
            if best.as_ref().is_none_or(|(_, b)| !improves(b, &ev)) {
                p_min = ev.power_mw;
                best = Some((pt, ev));
                hi_trace::counter(wk::ALGO1_INCUMBENTS, 1);
                hi_trace::instant_with("algo1.incumbent", || {
                    vec![
                        ("point", pt.to_string().into()),
                        ("power_mw", ev.power_mw.into()),
                        ("pdr", ev.pdr.into()),
                    ]
                });
            }
        }
        // Line 11: prune the current analytic level.
        {
            let mut s = hi_trace::span("algo1.prune");
            if s.is_recording() {
                s.arg("p_star_mw", p_star);
            }
            encoding.add_power_cut(p_star);
        }
        cuts.push(p_star);
        hi_trace::counter(wk::ALGO1_CUTS_ADDED, 1);
        if options
            .checkpoint_every
            .is_some_and(|k| k > 0 && iterations.is_multiple_of(k))
        {
            observer(&ExploreCheckpoint {
                engine: crate::checkpoint::ENGINE_ALGORITHM1.to_string(),
                pdr_min: problem.pdr_min,
                alpha_correction: options.alpha_correction,
                cuts: cuts.clone(),
                iterations,
                candidates_proposed,
                simulations: sims_spent(oracle),
                best,
            });
        }
    };

    Ok(ExplorationOutcome {
        best,
        iterations,
        candidates_proposed,
        simulations: sims_spent(oracle),
        eval_errors: oracle.eval_errors(),
        cuts,
        stop_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::point::RouteChoice;
    use crate::power::analytic_power_mw;
    use hi_net::TxPower;

    /// A synthetic oracle with a paper-like reliability ladder:
    /// PDR grows with Tx power and with mesh redundancy; simulated power
    /// tracks the analytic value scaled slightly by PDR.
    fn ladder_oracle(point: &DesignPoint) -> Evaluation {
        let app = AppParams::default();
        let base = match point.tx_power {
            TxPower::Minus20Dbm => 0.45,
            TxPower::Minus10Dbm => 0.70,
            TxPower::ZeroDbm => 0.93,
        };
        let bonus = match point.routing {
            RouteChoice::Star => 0.0,
            RouteChoice::Mesh => 0.06 + 0.01 * (point.num_nodes() as f64 - 4.0),
        };
        let pdr = (base + bonus).min(1.0);
        let power = analytic_power_mw(point, &app) * (0.8 + 0.2 * pdr);
        Evaluation {
            pdr,
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
            power_mw: power,
            latency_ms: 2.0 + power,
        }
    }

    fn run(pdr_min: f64) -> (ExplorationOutcome, u64) {
        let problem = Problem::paper_default(pdr_min);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let out = explore(&problem, &mut ev).unwrap();
        let sims = ev.unique_evaluations();
        (out, sims)
    }

    #[test]
    fn low_reliability_selects_cheapest_feasible_star() {
        let (out, _) = run(0.40);
        let (pt, ev) = out.best.expect("feasible");
        assert_eq!(pt.tx_power, TxPower::Minus20Dbm);
        assert_eq!(pt.routing, RouteChoice::Star);
        assert!(ev.pdr >= 0.40);
    }

    #[test]
    fn mid_reliability_raises_tx_power() {
        let (out, _) = run(0.60);
        let (pt, _) = out.best.unwrap();
        assert_eq!(pt.tx_power, TxPower::Minus10Dbm);
        assert_eq!(pt.routing, RouteChoice::Star);
    }

    #[test]
    fn high_reliability_switches_to_mesh() {
        let (out, _) = run(0.97);
        let (pt, _) = out.best.unwrap();
        assert_eq!(pt.routing, RouteChoice::Mesh);
    }

    #[test]
    fn full_reliability_needs_bigger_mesh() {
        let (out, _) = run(1.0);
        let (pt, ev) = out.best.unwrap();
        assert_eq!(pt.routing, RouteChoice::Mesh);
        assert!(pt.num_nodes() >= 5, "oracle caps 4-node mesh below 100%");
        assert_eq!(ev.pdr, 1.0);
    }

    #[test]
    fn impossible_reliability_reported_infeasible() {
        // Oracle never exceeds 1.0 but a floor above every reachable pdr:
        let problem = Problem::paper_default(1.0);
        let mut ev = FnEvaluator::new(|p| {
            let mut e = ladder_oracle(p);
            e.pdr = e.pdr.min(0.99); // nothing reaches 1.0
            e
        });
        let out = explore(&problem, &mut ev).unwrap();
        assert!(out.best.is_none());
        assert_eq!(out.stop_reason, StopReason::MilpExhausted);
    }

    #[test]
    fn explores_fewer_points_than_exhaustive() {
        let (out, sims) = run(0.60);
        assert!(out.is_feasible());
        // The paper reports an 87% reduction; our oracle ladder stops
        // after a couple of levels out of 1320 points.
        assert!(
            sims < 1320 / 4,
            "Algorithm 1 simulated {sims} of 1320 points"
        );
        assert_eq!(out.simulations, sims);
    }

    #[test]
    fn terminates_soon_after_first_feasible_level() {
        // The paper observes termination shortly after the first feasible
        // configuration appears; with the ladder oracle the bound fires.
        let (out, _) = run(0.60);
        assert_eq!(out.stop_reason, StopReason::BoundProven);
        assert!(out.iterations <= 8, "iterations = {}", out.iterations);
    }

    #[test]
    fn optimum_maximizes_nlt_among_feasible_points() {
        // Brute-force the oracle over the whole space and compare.
        let problem = Problem::paper_default(0.9);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let out = explore(&problem, &mut ev).unwrap();
        let (_, got) = out.best.unwrap();

        let best_nlt = problem
            .space
            .points()
            .into_iter()
            .map(|p| ladder_oracle(&p))
            .filter(|e| e.pdr >= 0.9)
            .map(|e| e.nlt_days)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (got.nlt_days - best_nlt).abs() < 1e-9,
            "algorithm {} vs exhaustive {}",
            got.nlt_days,
            best_nlt
        );
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn problem_validates_pdr_min() {
        let _ = Problem::paper_default(1.2);
    }
}
