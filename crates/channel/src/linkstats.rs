//! Second-order fading statistics of a link.
//!
//! For link-layer design it matters not only *how often* a link is in a
//! fade (outage probability) but *how long* fades last relative to the
//! packet airtime: a 10 ms fade at 10 packets/s wipes out bursts, while
//! fast fading averages out. These estimators work on a uniformly sampled
//! path-loss trace.

use hi_des::{SimDuration, SimTime};

use crate::{BodyLocation, ChannelModel};

/// Fade statistics of a sampled link trace against a loss threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadeStats {
    /// Fraction of samples in outage (path loss above the threshold).
    pub outage_fraction: f64,
    /// Threshold up-crossings per second (fade onsets).
    pub crossing_rate_hz: f64,
    /// Mean contiguous outage duration, seconds (0 if never in outage).
    pub mean_fade_duration_s: f64,
    /// Longest contiguous outage, seconds.
    pub max_fade_duration_s: f64,
}

/// Samples `PL(a, b, t)` on a uniform grid.
///
/// # Panics
///
/// Panics if `samples == 0` or `step` is zero.
pub fn sample_trace<C: ChannelModel>(
    channel: &mut C,
    a: BodyLocation,
    b: BodyLocation,
    step: SimDuration,
    samples: usize,
) -> Vec<f64> {
    assert!(samples > 0, "need at least one sample");
    assert!(!step.is_zero(), "step must be positive");
    (0..samples)
        .map(|k| channel.path_loss_db(a, b, SimTime::ZERO + step * (k as u64 + 1)))
        .collect()
}

/// Computes [`FadeStats`] for a uniformly sampled trace.
///
/// A sample is *in outage* when its loss exceeds `threshold_db` (i.e. the
/// link budget no longer closes).
///
/// # Panics
///
/// Panics if `trace` is empty or `step` is zero.
pub fn fade_statistics(trace: &[f64], step: SimDuration, threshold_db: f64) -> FadeStats {
    assert!(!trace.is_empty(), "empty trace");
    assert!(!step.is_zero(), "step must be positive");
    let dt = step.as_secs_f64();
    let mut outage_samples = 0usize;
    let mut crossings = 0usize;
    let mut fades: Vec<usize> = Vec::new();
    let mut run = 0usize;
    let mut prev_out = false;
    for (k, &loss) in trace.iter().enumerate() {
        let out = loss > threshold_db;
        if out {
            outage_samples += 1;
            run += 1;
            if !prev_out && k > 0 {
                crossings += 1;
            }
        } else if run > 0 {
            fades.push(run);
            run = 0;
        }
        prev_out = out;
    }
    if run > 0 {
        fades.push(run);
    }
    let total_s = trace.len() as f64 * dt;
    FadeStats {
        outage_fraction: outage_samples as f64 / trace.len() as f64,
        crossing_rate_hz: crossings as f64 / total_s,
        mean_fade_duration_s: if fades.is_empty() {
            0.0
        } else {
            fades.iter().sum::<usize>() as f64 * dt / fades.len() as f64
        },
        max_fade_duration_s: fades.iter().copied().max().unwrap_or(0) as f64 * dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, ChannelParams, StaticChannel, VariationParams};

    fn ms(x: f64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn square_wave_statistics() {
        // 10 samples: 3 in fade, then 2 clear, then 2 in fade, 3 clear.
        let trace = [99.0, 99.0, 99.0, 50.0, 50.0, 99.0, 99.0, 50.0, 50.0, 50.0];
        let s = fade_statistics(&trace, ms(1.0), 90.0);
        assert!((s.outage_fraction - 0.5).abs() < 1e-12);
        // One onset at k=5 (k=0 start does not count as a crossing).
        assert!((s.crossing_rate_hz - 1.0 / 0.010).abs() < 1e-9);
        assert!((s.mean_fade_duration_s - 0.0025).abs() < 1e-12);
        assert!((s.max_fade_duration_s - 0.003).abs() < 1e-12);
    }

    #[test]
    fn never_in_outage() {
        let trace = [50.0; 20];
        let s = fade_statistics(&trace, ms(1.0), 90.0);
        assert_eq!(s.outage_fraction, 0.0);
        assert_eq!(s.mean_fade_duration_s, 0.0);
        assert_eq!(s.crossing_rate_hz, 0.0);
    }

    #[test]
    fn always_in_outage() {
        let trace = [99.0; 20];
        let s = fade_statistics(&trace, ms(1.0), 90.0);
        assert_eq!(s.outage_fraction, 1.0);
        assert!((s.max_fade_duration_s - 0.020).abs() < 1e-12);
        assert_eq!(s.crossing_rate_hz, 0.0);
    }

    #[test]
    fn static_channel_has_no_fades() {
        let mut ch = StaticChannel::uniform(70.0);
        let trace = sample_trace(
            &mut ch,
            BodyLocation::Chest,
            BodyLocation::LeftWrist,
            ms(10.0),
            100,
        );
        let s = fade_statistics(&trace, ms(10.0), 80.0);
        assert_eq!(s.outage_fraction, 0.0);
    }

    #[test]
    fn stochastic_outage_matches_gaussian_tail() {
        // Threshold one sigma above the mean loss: expect ~16% outage.
        let params = ChannelParams {
            variation: VariationParams {
                sigma_db: 6.0,
                tau_s: 0.05, // fast fading so samples decorrelate
            },
            ..Default::default()
        };
        let mean = crate::PathLossMatrix::synthetic(&params.path_loss)
            .loss_db(BodyLocation::Chest, BodyLocation::LeftHip);
        let mut ch = Channel::new(params, 99);
        let trace = sample_trace(
            &mut ch,
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            SimDuration::from_secs(1.0),
            20_000,
        );
        let s = fade_statistics(&trace, SimDuration::from_secs(1.0), mean + 6.0);
        assert!(
            (s.outage_fraction - 0.1587).abs() < 0.01,
            "outage {} vs N(0,1) tail 0.159",
            s.outage_fraction
        );
    }

    #[test]
    fn slower_fading_means_longer_fades() {
        let mk = |tau_s| ChannelParams {
            variation: VariationParams {
                sigma_db: 6.0,
                tau_s,
            },
            ..Default::default()
        };
        let mean = crate::PathLossMatrix::synthetic(&mk(1.0).path_loss)
            .loss_db(BodyLocation::Chest, BodyLocation::LeftHip);
        let run = |tau_s| {
            let mut ch = Channel::new(mk(tau_s), 7);
            let trace = sample_trace(
                &mut ch,
                BodyLocation::Chest,
                BodyLocation::LeftHip,
                ms(10.0),
                50_000,
            );
            fade_statistics(&trace, ms(10.0), mean).mean_fade_duration_s
        };
        let slow = run(2.0);
        let fast = run(0.05);
        assert!(
            slow > 2.0 * fast,
            "slow fading fades ({slow}s) should outlast fast fading ({fast}s)"
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        fade_statistics(&[], ms(1.0), 80.0);
    }
}
