//! Calibration probe (run with --nocapture to inspect PDR/NLT landscape).

use hi_channel::{BodyLocation, ChannelParams};
use hi_des::SimDuration;
use hi_net::{simulate_averaged, MacKind, NetworkConfig, Routing, TxPower};

#[test]
#[ignore = "manual calibration aid; run with --ignored --nocapture"]
fn print_landscape() {
    let base4 = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
    ];
    let base5 = {
        let mut v = base4.clone();
        v.push(BodyLocation::LeftUpperArm);
        v
    };
    let t = SimDuration::from_secs(120.0);
    for (label, placements) in [("N4", &base4), ("N5", &base5)] {
        for power in TxPower::ALL {
            for (mlabel, mac) in [("CSMA", MacKind::csma()), ("TDMA", MacKind::tdma())] {
                for (rlabel, routing) in [
                    ("Star", Routing::Star { coordinator: 0 }),
                    ("Mesh", Routing::mesh()),
                ] {
                    let cfg = NetworkConfig::new(placements.clone(), power, mac, routing);
                    let out =
                        simulate_averaged(&cfg, ChannelParams::default(), t, 1000, 3).unwrap();
                    println!(
                        "{label} {power} {mlabel} {rlabel}: PDR {:5.1}%  NLT {:6.2} d  Pmax {:.3} mW  tx {} coll {} drops {}",
                        out.pdr_percent(),
                        out.nlt_days,
                        out.max_power_mw,
                        out.counts.transmissions,
                        out.counts.collisions,
                        out.counts.buffer_drops + out.counts.mac_drops,
                    );
                }
            }
        }
    }
}
