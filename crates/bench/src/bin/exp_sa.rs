//! Experiment E2: the paper's §4.2 comparison against simulated annealing
//! — "our algorithm runs, on average, 3x faster across the whole range of
//! PDRmin values of interest (from 50 to 100%)".
//!
//! Both methods share the same simulation protocol; we report unique
//! simulations (the dominant cost) and wall-clock time per floor, plus
//! whether each method reached the reference optimum class.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_sa
//! ```

use hi_bench::ExpOptions;
use hi_core::{explore, simulated_annealing, Problem, SaParams};
use std::time::Instant;

fn main() {
    let opts = ExpOptions::from_args();
    // SA tuned to reliably reach the optimum class on this space; the
    // evaluation count is what the comparison is about.
    let sa_params = SaParams {
        steps: 700,
        ..Default::default()
    };

    println!("# Experiment E2: Algorithm 1 vs simulated annealing");
    println!(
        "pdr_min_pct\talg1_sims\tsa_sims\talg1_time_s\tsa_time_s\tspeedup_time\tspeedup_sims\tsame_optimum"
    );
    let floors = [0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 1.00];
    let mut time_ratios = Vec::new();
    let mut sim_ratios = Vec::new();
    for &floor in &floors {
        let problem = Problem::paper_default(floor);

        let mut a1_ev = opts.evaluator();
        let t0 = Instant::now();
        let a1 = explore(&problem, &mut a1_ev).expect("explore");
        let a1_time = t0.elapsed().as_secs_f64();

        let mut sa_ev = opts.evaluator();
        let t0 = Instant::now();
        let sa = simulated_annealing(&problem, &mut sa_ev, sa_params, opts.seed ^ 0x5A);
        let sa_time = t0.elapsed().as_secs_f64();

        let same = match (&a1.best, &sa.best) {
            // SA is a heuristic: count it as matched when it lands within
            // 2% of Algorithm 1's (exact) optimal power.
            (Some((_, a)), Some((_, b))) => (b.power_mw - a.power_mw) / a.power_mw < 0.02,
            (None, None) => true,
            _ => false,
        };
        let speedup_time = sa_time / a1_time.max(1e-9);
        let speedup_sims = sa.simulations as f64 / a1.simulations.max(1) as f64;
        time_ratios.push(speedup_time);
        sim_ratios.push(speedup_sims);
        println!(
            "{:.0}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}",
            floor * 100.0,
            a1.simulations,
            sa.simulations,
            a1_time,
            sa_time,
            speedup_time,
            speedup_sims,
            same
        );
    }
    let avg_time = time_ratios.iter().sum::<f64>() / time_ratios.len() as f64;
    let avg_sims = sim_ratios.iter().sum::<f64>() / sim_ratios.len() as f64;
    println!(
        "\n# average speedup: {avg_time:.1}x wall-clock, {avg_sims:.1}x simulations (paper reports 3x)"
    );
}
