//! Static validation of Γ-robustness specifications.
//!
//! The robust engines in `hi-core` are deliberately permissive at run
//! time: a zero budget or an empty deviation set silently degenerates to
//! the nominal engine, and the dualization happily prices whatever bound
//! it is handed. This pass is where a broken or pointless specification
//! gets *explained* before a run spends its budget discovering it:
//!
//! * **HL048** — a misconfigured specification (error): Γ ≤ 0 requested
//!   on a robust engine (the robust counterpart degenerates to nominal
//!   while looking robust), Γ above the number of protected links (the
//!   adversary can already push every link — the surplus budget is a
//!   typo, not a knob), or a NaN / negative / zero-width deviation bound
//!   (the dualization would price garbage into the objective);
//! * **HL049** — a robust engine with an *empty fault suite* (warning):
//!   no scenarios means no deviation bounds, so the run degenerates to
//!   the nominal engine and the "robust" in the invocation buys nothing.
//!
//! Like the rest of the crate this module is dependency-free: callers
//! lower their specification into a [`RobustnessLintSpec`].

use crate::report::{Finding, Report, RuleId, Span};

/// One Γ-robustness configuration, lowered to plain numbers for
/// analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessLintSpec {
    /// The requested deviation budget Γ (signed so a negative CLI value
    /// can be reported instead of silently wrapping).
    pub gamma: i64,
    /// Protected links — pairs with a positive deviation bound.
    pub protected_links: usize,
    /// The raw per-link deviation bounds (dB) as derived or supplied.
    pub deviation_bounds: Vec<f64>,
    /// Whether a robust engine (`robust-milp` / `ilp-heuristic`) was
    /// requested. HL048/HL049 only concern robust runs.
    pub robust_engine: bool,
    /// Scenarios in the fault suite backing the derivation.
    pub suite_scenarios: usize,
}

/// Lints a Γ-robustness specification (see the module docs for the
/// rules).
pub fn lint_robustness(spec: &RobustnessLintSpec) -> Report {
    let mut report = Report::new();
    if !spec.robust_engine {
        return report;
    }
    if spec.gamma <= 0 {
        report.push(Finding::new(
            RuleId::RobustnessMisconfigured,
            Span::Model,
            format!(
                "robust engine with gamma = {} — the Γ-robust counterpart \
                 degenerates to the nominal model while looking robust \
                 (use the nominal engine, or gamma >= 1)",
                spec.gamma
            ),
        ));
    } else if spec.protected_links > 0 && spec.gamma > spec.protected_links as i64 {
        report.push(Finding::new(
            RuleId::RobustnessMisconfigured,
            Span::Model,
            format!(
                "gamma = {} exceeds the {} protected links — the adversary \
                 can already push every link at once, so the surplus budget \
                 is a configuration error",
                spec.gamma, spec.protected_links
            ),
        ));
    }
    for (i, &bound) in spec.deviation_bounds.iter().enumerate() {
        if !bound.is_finite() || bound <= 0.0 {
            report.push(Finding::new(
                RuleId::RobustnessMisconfigured,
                Span::Model,
                format!(
                    "deviation bound #{i} is {bound} dB — bounds must be \
                     finite and strictly positive for the dualization to \
                     price them"
                ),
            ));
        }
    }
    if spec.suite_scenarios == 0 {
        report.push(Finding::new(
            RuleId::RobustDegenerate,
            Span::Model,
            "robust engine with an empty fault suite — no scenarios means \
             no deviation bounds, so the run degenerates to the nominal \
             engine",
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> RobustnessLintSpec {
        RobustnessLintSpec {
            gamma: 2,
            protected_links: 45,
            deviation_bounds: vec![9.0, 40.0],
            robust_engine: true,
            suite_scenarios: 3,
        }
    }

    #[test]
    fn a_sane_spec_is_clean() {
        assert!(lint_robustness(&clean()).is_clean());
        // Γ at exactly the protected-link count is legal (full budget).
        let spec = RobustnessLintSpec {
            gamma: 45,
            ..clean()
        };
        assert!(lint_robustness(&spec).is_clean());
    }

    #[test]
    fn nominal_engines_are_never_flagged() {
        // Whatever the numbers say, HL048/HL049 only concern robust runs.
        let spec = RobustnessLintSpec {
            robust_engine: false,
            gamma: -3,
            deviation_bounds: vec![f64::NAN],
            suite_scenarios: 0,
            ..clean()
        };
        assert!(lint_robustness(&spec).is_clean());
    }

    #[test]
    fn hl048_fires_on_each_misconfiguration() {
        for gamma in [0, -1] {
            let report = lint_robustness(&RobustnessLintSpec { gamma, ..clean() });
            assert!(report.has_rule(RuleId::RobustnessMisconfigured), "{report}");
            assert!(report.has_errors());
        }
        let report = lint_robustness(&RobustnessLintSpec {
            gamma: 46,
            ..clean()
        });
        assert!(report.has_rule(RuleId::RobustnessMisconfigured), "{report}");
        for bad in [f64::NAN, -1.0, 0.0, f64::INFINITY] {
            let report = lint_robustness(&RobustnessLintSpec {
                deviation_bounds: vec![9.0, bad],
                ..clean()
            });
            assert!(
                report.has_rule(RuleId::RobustnessMisconfigured),
                "bound {bad} must be flagged"
            );
            assert!(report.has_errors());
        }
    }

    #[test]
    fn hl049_warns_on_an_empty_suite() {
        let report = lint_robustness(&RobustnessLintSpec {
            suite_scenarios: 0,
            protected_links: 0,
            deviation_bounds: vec![],
            ..clean()
        });
        assert!(report.has_rule(RuleId::RobustDegenerate), "{report}");
        assert!(!report.has_errors(), "HL049 is a warning");
    }
}
