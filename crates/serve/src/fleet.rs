//! Fleet mode: many users' jobs sharing one fingerprint-keyed
//! evaluation-cache pool, so identical design points dedup across users.
//!
//! The unit of sharing is the *evaluation fingerprint*
//! ([`UserProfile::eval_fingerprint`]): a hash of exactly the fields
//! that determine simulation results. Profiles with equal fingerprints —
//! same body, same channel, same traffic, same protocol, same fault
//! suite — get handed the *same* [`SharedSimEvaluator`] (or
//! [`RobustEvaluator`]), whose exactly-once `EvalCache` then answers any
//! design point either user's engine asks about from one simulation.
//! Profiles that differ only in `pdr_min`, `engine` or id land on the
//! same evaluator on purpose: those knobs steer the search, not the
//! physics.
//!
//! Jobs run *strictly serially in submission order* (the scheduler's
//! contract), so the cache state any job observes is a deterministic
//! function of the jobs before it — which is what makes fleet batches
//! bit-identical across thread counts and restarts.

use std::collections::BTreeMap;
use std::sync::Mutex;

use hi_core::{
    exhaustive_search_par, explore_par_observed, ilp_heuristic_search, robust_milp_search,
    DesignPoint, EvalError, Evaluation, ExecContext, ExploreCheckpoint, ExploreOptions,
    PointEvaluator, RetryPolicy, RobustEvaluator, RobustnessSpec, SharedSimEvaluator, StopReason,
    SupervisedEvaluator, Supervisor,
};

use crate::profile::{EngineChoice, UserProfile};
use crate::segment::CachedOutcome;

/// One entry of the fleet pool: a nominal or robust shared evaluator.
///
/// Both variants are cheap clones around one shared cache; the enum
/// exists so one pool can hold both kinds and hand either to the
/// engines through [`PointEvaluator`].
#[derive(Debug, Clone)]
pub enum FleetEvaluator {
    /// Plain protocol evaluation (no fault suite).
    Nominal(SharedSimEvaluator),
    /// Fault-suite evaluation aggregated by the profile's robust mode.
    Robust(RobustEvaluator),
}

impl FleetEvaluator {
    /// Cache hits so far (design points recalled, not simulated).
    pub fn cache_hits(&self) -> u64 {
        match self {
            FleetEvaluator::Nominal(e) => e.cache_hits(),
            FleetEvaluator::Robust(e) => e.cache_hits(),
        }
    }

    /// Cache misses so far (design points simulated fresh).
    pub fn cache_misses(&self) -> u64 {
        match self {
            FleetEvaluator::Nominal(e) => e.cache_misses(),
            FleetEvaluator::Robust(e) => e.cache_misses(),
        }
    }

    /// Every `Ok` outcome this stream has settled, sorted by point
    /// fingerprint — what the segment store spills to disk.
    pub fn export_entries(&self) -> Vec<CachedOutcome> {
        match self {
            FleetEvaluator::Nominal(e) => e
                .cached_ok()
                .into_iter()
                .map(|(point, eval)| CachedOutcome::Nominal { point, eval })
                .collect(),
            FleetEvaluator::Robust(e) => e
                .cached_scorecards()
                .into_iter()
                .map(|(point, card)| CachedOutcome::Robust { point, card })
                .collect(),
        }
    }

    /// Every `Ok` outcome lowered to a Pareto [`FrontPoint`] offer:
    /// nominal evaluations directly, robust scorecards aggregated by the
    /// stream's robust mode (the same pessimism the engine optimized
    /// under). The archive's dominance filter decides what survives.
    pub fn export_front_points(&self) -> Vec<hi_pareto::FrontPoint> {
        let lower = |point: DesignPoint, eval: Evaluation| hi_pareto::FrontPoint {
            fingerprint: point.fingerprint(),
            power_mw: eval.power_mw,
            pdr: eval.pdr,
            latency_ms: eval.latency_ms,
            nlt_days: eval.nlt_days,
        };
        match self {
            FleetEvaluator::Nominal(e) => e
                .cached_ok()
                .into_iter()
                .map(|(point, eval)| lower(point, eval))
                .collect(),
            FleetEvaluator::Robust(e) => {
                let mode = e.mode();
                e.cached_scorecards()
                    .into_iter()
                    .map(|(point, card)| lower(point, card.aggregate(mode)))
                    .collect()
            }
        }
    }

    /// Seeds one recovered outcome into this stream's cache. Returns
    /// false (and changes nothing) if the entry's kind does not match
    /// the stream — a robust scorecard can't answer a nominal stream —
    /// or if the point already has an entry; both mean the recovered
    /// value is simply not used, never that it overrides live data.
    pub fn import_entry(&self, outcome: CachedOutcome) -> bool {
        match (self, outcome) {
            (FleetEvaluator::Nominal(e), CachedOutcome::Nominal { point, eval }) => {
                e.seed_eval(point, eval)
            }
            (FleetEvaluator::Robust(e), CachedOutcome::Robust { point, card }) => {
                e.seed_scorecard(point, card)
            }
            _ => false,
        }
    }
}

impl PointEvaluator for FleetEvaluator {
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        match self {
            FleetEvaluator::Nominal(e) => e.try_eval_point(point),
            FleetEvaluator::Robust(e) => e.try_eval(point),
        }
    }

    fn unique_evaluations(&self) -> u64 {
        match self {
            FleetEvaluator::Nominal(e) => PointEvaluator::unique_evaluations(e),
            FleetEvaluator::Robust(e) => PointEvaluator::unique_evaluations(e),
        }
    }

    fn drop_cached(&self, point: &DesignPoint) -> bool {
        match self {
            FleetEvaluator::Nominal(e) => PointEvaluator::drop_cached(e, point),
            FleetEvaluator::Robust(e) => PointEvaluator::drop_cached(e, point),
        }
    }
}

/// Aggregate hit/miss counts across a fleet pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Evaluator streams in the pool (distinct physics).
    pub evaluators: usize,
    /// Total cache hits across all streams.
    pub hits: u64,
    /// Total cache misses across all streams.
    pub misses: u64,
}

/// The cross-user evaluator pool, keyed by evaluation fingerprint.
#[derive(Debug, Default)]
pub struct FleetCache {
    evaluators: Mutex<BTreeMap<u64, FleetEvaluator>>,
}

impl FleetCache {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The evaluator for fingerprint `key`, building it on first use.
    /// Clones share the underlying cache, so every job with this key —
    /// whichever user submitted it — reuses the same simulations.
    pub fn evaluator(&self, key: u64, build: impl FnOnce() -> FleetEvaluator) -> FleetEvaluator {
        let mut map = self.evaluators.lock().expect("fleet pool poisoned");
        map.entry(key).or_insert_with(build).clone()
    }

    /// Every stream in the pool with its key — cheap clones sharing the
    /// live caches — for the drain-time segment flush.
    pub fn streams(&self) -> Vec<(u64, FleetEvaluator)> {
        let map = self.evaluators.lock().expect("fleet pool poisoned");
        map.iter().map(|(key, ev)| (*key, ev.clone())).collect()
    }

    /// Aggregate hit/miss counts over every stream in the pool.
    pub fn stats(&self) -> FleetStats {
        let map = self.evaluators.lock().expect("fleet pool poisoned");
        let mut stats = FleetStats {
            evaluators: map.len(),
            ..FleetStats::default()
        };
        for evaluator in map.values() {
            stats.hits += evaluator.cache_hits();
            stats.misses += evaluator.cache_misses();
        }
        stats
    }
}

/// Per-job execution policy the daemon layers onto every profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Per-replication DES event budget (logical deadline), if any.
    pub max_events: Option<u64>,
    /// Supervised-retry attempts per evaluation.
    pub retry_attempts: u32,
    /// Auto-checkpoint cadence in Algorithm-1 iterations (`None` = no
    /// periodic snapshots; exhaustive jobs never checkpoint).
    pub checkpoint_every: Option<u32>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        Self {
            max_events: None,
            retry_attempts: 3,
            checkpoint_every: Some(1),
        }
    }
}

/// The measured outcome of one profile's job, rendered into the result
/// block clients read back.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOutcome {
    /// The optimum, if any configuration satisfies the profile's floor.
    pub best: Option<(DesignPoint, Evaluation)>,
    /// Algorithm-1 iterations (0 for exhaustive).
    pub iterations: u32,
    /// Candidates proposed (algorithm1) / points enumerated (exhaustive).
    pub candidates: u64,
    /// Unique simulations spent by *this job* (a warm fleet cache makes
    /// this 0 for a duplicate profile; on a resumed job it is cumulative
    /// across the interruption, matching a straight-through run).
    pub simulations: u64,
    /// Evaluations that failed (after supervised retries).
    pub eval_errors: u64,
    /// Why the search stopped (`None` for exhaustive: it always sweeps).
    pub stop_reason: Option<StopReason>,
    /// Fleet-cache hits this job observed (delta while it ran).
    pub cache_hits: u64,
    /// Fleet-cache misses this job observed (delta while it ran).
    pub cache_misses: u64,
}

/// Runs one profile's search on `evaluator` under `policy`.
///
/// Algorithm-1 jobs honor `resume` (a PR-5 CRC-checked checkpoint) and
/// hand `observer` every auto-checkpoint; exhaustive jobs ignore both —
/// they are a single sweep and simply rerun after a crash (the fleet
/// cache makes the rerun cheap within one daemon lifetime).
pub fn run_profile(
    profile: &UserProfile,
    evaluator: &FleetEvaluator,
    exec: &ExecContext,
    policy: RunPolicy,
    resume: Option<&ExploreCheckpoint>,
    observer: &mut dyn FnMut(&ExploreCheckpoint),
) -> Result<ProfileOutcome, String> {
    let supervisor = Supervisor::new(RetryPolicy::new(policy.retry_attempts), None);
    let supervised = SupervisedEvaluator::new(evaluator.clone(), supervisor);
    let hits_before = evaluator.cache_hits();
    let misses_before = evaluator.cache_misses();
    let problem = profile.problem();
    let outcome = match profile.engine {
        EngineChoice::Algorithm1 => {
            let options = ExploreOptions {
                checkpoint_every: policy.checkpoint_every,
                ..ExploreOptions::default()
            };
            let out = explore_par_observed(&problem, &supervised, options, exec, resume, observer)
                .map_err(|e| e.to_string())?;
            ProfileOutcome {
                best: out.best,
                iterations: out.iterations,
                candidates: out.candidates_proposed,
                simulations: out.simulations,
                eval_errors: out.eval_errors,
                stop_reason: Some(out.stop_reason),
                cache_hits: 0,
                cache_misses: 0,
            }
        }
        EngineChoice::Exhaustive => {
            let out = exhaustive_search_par(&problem, &supervised, exec);
            ProfileOutcome {
                best: out.best,
                iterations: 0,
                candidates: out.evaluations.len() as u64,
                simulations: out.simulations,
                eval_errors: 0,
                stop_reason: None,
                cache_hits: 0,
                cache_misses: 0,
            }
        }
        EngineChoice::RobustMilp | EngineChoice::IlpHeuristic => {
            // Deviation bounds come from the stream's fault suite; a
            // nominal stream (no `faults` line) yields a degenerate spec,
            // so the engine delegates to Algorithm 1 bit for bit.
            let gamma = profile.gamma.unwrap_or(1);
            let spec = match evaluator {
                FleetEvaluator::Robust(e) => RobustnessSpec::from_suite(e.suite(), gamma),
                FleetEvaluator::Nominal(_) => RobustnessSpec {
                    gamma,
                    deviations: Vec::new(),
                },
            };
            let options = ExploreOptions {
                checkpoint_every: policy.checkpoint_every,
                ..ExploreOptions::default()
            };
            let out = match profile.engine {
                EngineChoice::RobustMilp => robust_milp_search(
                    &problem,
                    &spec,
                    &supervised,
                    options,
                    exec,
                    resume,
                    observer,
                ),
                _ => ilp_heuristic_search(
                    &problem,
                    &spec,
                    &supervised,
                    options,
                    exec,
                    resume,
                    observer,
                ),
            }
            .map_err(|e| e.to_string())?;
            ProfileOutcome {
                best: out.outcome.best,
                iterations: out.outcome.iterations,
                candidates: out.outcome.candidates_proposed,
                simulations: out.outcome.simulations,
                eval_errors: out.outcome.eval_errors,
                stop_reason: Some(out.outcome.stop_reason),
                cache_hits: 0,
                cache_misses: 0,
            }
        }
    };
    Ok(ProfileOutcome {
        cache_hits: evaluator.cache_hits() - hits_before,
        cache_misses: evaluator.cache_misses() - misses_before,
        ..outcome
    })
}

pub(crate) fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Renders a job's canonical result block: the text `RESULT` returns and
/// the persistence layer stores. Deterministic byte for byte — floats
/// carry their exact bits next to the human reading — so resumed,
/// rerun and deduped jobs can be compared with `diff`.
pub fn render_result(profile: &UserProfile, outcome: &ProfileOutcome) -> String {
    let mut out = format!("profile {}\n", profile.id);
    out.push_str(&format!("engine {}\n", profile.engine));
    match &outcome.best {
        Some((point, eval)) => {
            out.push_str("status feasible\n");
            out.push_str(&format!("design {:016x} {point}\n", point.fingerprint()));
            out.push_str(&format!("pdr {} {:.4}\n", f64_hex(eval.pdr), eval.pdr));
            out.push_str(&format!(
                "nlt_days {} {:.2}\n",
                f64_hex(eval.nlt_days),
                eval.nlt_days
            ));
            out.push_str(&format!(
                "power_mw {} {:.3}\n",
                f64_hex(eval.power_mw),
                eval.power_mw
            ));
            out.push_str(&format!(
                "latency_ms {} {:.3}\n",
                f64_hex(eval.latency_ms),
                eval.latency_ms
            ));
        }
        None => out.push_str("status infeasible\n"),
    }
    out.push_str(&format!("iterations {}\n", outcome.iterations));
    out.push_str(&format!("candidates {}\n", outcome.candidates));
    out.push_str(&format!("simulations {}\n", outcome.simulations));
    out.push_str(&format!("eval_errors {}\n", outcome.eval_errors));
    if let Some(reason) = outcome.stop_reason {
        out.push_str(&format!("stop {reason:?}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::parse_profiles;

    fn quick(id: &str) -> UserProfile {
        let mut p = UserProfile::named(id);
        p.t_sim_secs = 2.0;
        p.runs = 1;
        p
    }

    #[test]
    fn identical_profiles_share_one_evaluator_stream() {
        let fleet = FleetCache::new();
        let a = quick("a");
        let mut b = quick("b");
        b.pdr_min = 0.5; // search knob only — same fingerprint
        let key_a = a.eval_fingerprint(None);
        assert_eq!(key_a, b.eval_fingerprint(None));
        let ev_a = fleet.evaluator(key_a, || {
            FleetEvaluator::Nominal(a.protocol().shared_evaluator())
        });
        let _ev_b = fleet.evaluator(key_a, || {
            panic!("second user with the same physics must reuse the stream")
        });
        assert_eq!(fleet.stats().evaluators, 1);
        drop(ev_a);
    }

    #[test]
    fn duplicate_job_spends_zero_simulations() {
        let fleet = FleetCache::new();
        let profile = quick("alice");
        let key = profile.eval_fingerprint(None);
        let evaluator = fleet.evaluator(key, || {
            FleetEvaluator::Nominal(profile.protocol().shared_evaluator())
        });
        let exec = ExecContext::sequential();
        let policy = RunPolicy {
            checkpoint_every: None,
            ..RunPolicy::default()
        };
        let first = run_profile(&profile, &evaluator, &exec, policy, None, &mut |_| {}).unwrap();
        assert!(first.simulations > 0);
        let again = run_profile(&profile, &evaluator, &exec, policy, None, &mut |_| {}).unwrap();
        assert_eq!(again.simulations, 0, "warm cache must answer everything");
        assert!(again.cache_hits > 0);
        assert_eq!(again.cache_misses, 0);
        assert_eq!(first.best, again.best);
        assert_eq!(
            render_result(&profile, &first)
                .lines()
                .filter(|l| !l.starts_with("simulations") && !l.starts_with("candidates"))
                .collect::<Vec<_>>(),
            render_result(&profile, &again)
                .lines()
                .filter(|l| !l.starts_with("simulations") && !l.starts_with("candidates"))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn result_block_is_deterministic_and_tagged_with_bits() {
        let profile = quick("p");
        let outcome = ProfileOutcome {
            best: None,
            iterations: 2,
            candidates: 10,
            simulations: 7,
            eval_errors: 0,
            stop_reason: Some(StopReason::MilpExhausted),
            cache_hits: 0,
            cache_misses: 0,
        };
        let text = render_result(&profile, &outcome);
        assert!(text.contains("status infeasible\n"), "{text}");
        assert!(text.contains("stop MilpExhausted\n"), "{text}");
        let fleet = parse_profiles(crate::profile::DEMO_FLEET).unwrap();
        assert!(render_result(&fleet[0], &outcome).starts_with("profile alice\n"));
    }
}
