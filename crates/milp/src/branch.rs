//! Depth-first branch & bound over the LP relaxation.
//!
//! Each node carries tightened bounds for the integer variables; the LP
//! relaxation is solved with [`simplex::solve_lp`] and fractional integer
//! variables are branched on (most-fractional rule, index tie-break).
//! The search dives depth-first, exploring the child nearest the LP value
//! first — this finds incumbents quickly, and nodes whose relaxation bound
//! cannot beat the incumbent are pruned.

use crate::simplex::{self, LpStatus};
use crate::{Model, Objective, Solution, SolveError, VarId, TOL};

/// Hard cap on explored nodes; generous for this workspace's problem sizes.
const NODE_LIMIT: usize = 2_000_000;

/// A pending subproblem.
struct Node {
    /// LP bound of the parent (normalized: smaller is better).
    bound: f64,
    /// Per-variable `(lb, ub)` overrides, dense over all variables.
    bounds: Vec<(f64, f64)>,
}

/// Solves `model` to proven optimality.
///
/// # Errors
///
/// Propagates simplex failures and returns [`SolveError::NodeLimit`] if the
/// search tree exceeds its safety cap.
pub fn solve(model: &Model) -> Result<Solution, SolveError> {
    let int_vars = model.integer_vars();
    // Pure LP: a single relaxation solve is exact.
    if int_vars.is_empty() {
        return Ok(lp_to_solution(simplex::solve_lp(model)?));
    }

    // Presolve: tighten bounds once up front (exact transformation).
    let mut presolved = model.clone();
    let (status, _) = crate::presolve::presolve(&mut presolved)?;
    if status == crate::presolve::PresolveStatus::Infeasible {
        return Ok(Solution::infeasible());
    }
    let model = &presolved;

    let dir = model
        .objective
        .as_ref()
        .map(|(d, _)| *d)
        .ok_or(SolveError::MissingObjective)?;
    // Normalize: internally we always minimize `norm = sign * objective`.
    let sign = match dir {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };

    let root_bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lb, v.ub)).collect();
    let mut stack = vec![Node {
        bound: f64::NEG_INFINITY,
        bounds: root_bounds,
    }];

    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (norm objective, values)
    let mut scratch = model.clone();
    let mut nodes = 0usize;
    let mut fathomed = 0u64;
    let mut root_unbounded = false;

    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > NODE_LIMIT {
            return Err(SolveError::NodeLimit);
        }
        // Bound-based pruning against the incumbent.
        if let Some((best, _)) = &incumbent {
            if node.bound >= *best - TOL {
                fathomed += 1;
                continue;
            }
        }
        for (i, &(lb, ub)) in node.bounds.iter().enumerate() {
            scratch.set_bounds(VarId(i), lb, ub);
        }
        let lp = simplex::solve_lp(&scratch)?;
        match lp.status {
            LpStatus::Infeasible => {
                fathomed += 1;
                continue;
            }
            LpStatus::Unbounded => {
                // An unbounded relaxation at the root means the MILP is
                // unbounded or infeasible; report unbounded (standard
                // convention for LP-based B&B without further probing).
                if nodes == 1 {
                    root_unbounded = true;
                    break;
                }
                fathomed += 1;
                continue;
            }
            LpStatus::Optimal => {}
        }
        let norm = sign * lp.objective;
        if let Some((best, _)) = &incumbent {
            if norm >= *best - TOL {
                fathomed += 1;
                continue; // cannot improve
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<(VarId, f64, f64)> = None; // (var, value, frac dist)
        for &v in &int_vars {
            let x = lp.values[v.0];
            let frac = (x - x.round()).abs();
            if frac > TOL {
                let dist = (x - x.floor() - 0.5).abs(); // smaller = more fractional
                match branch_var {
                    Some((_, _, d)) if d <= dist => {}
                    _ => branch_var = Some((v, x, dist)),
                }
            }
        }
        match branch_var {
            None => {
                // Integral: candidate incumbent.
                let values: Vec<f64> = lp
                    .values
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        if int_vars.contains(&VarId(i)) {
                            x.round()
                        } else {
                            x
                        }
                    })
                    .collect();
                if incumbent.as_ref().is_none_or(|(best, _)| norm < *best) {
                    incumbent = Some((norm, values));
                }
            }
            Some((v, x, _)) => {
                let mut down = node.bounds.clone();
                down[v.0].1 = down[v.0].1.min(x.floor());
                let mut up = node.bounds;
                up[v.0].0 = up[v.0].0.max(x.ceil());
                // Depth-first: push the less promising child first so the
                // child nearest the LP value is explored next.
                let (first, second) = if x - x.floor() >= 0.5 {
                    (down, up) // dive towards ceil
                } else {
                    (up, down) // dive towards floor
                };
                stack.push(Node {
                    bound: norm,
                    bounds: first,
                });
                stack.push(Node {
                    bound: norm,
                    bounds: second,
                });
            }
        }
    }

    hi_trace::counter(hi_trace::wellknown::MILP_BB_NODES, nodes as u64);
    hi_trace::counter(hi_trace::wellknown::MILP_BB_FATHOMED, fathomed);

    if root_unbounded {
        return Ok(Solution::unbounded());
    }
    Ok(match incumbent {
        Some((norm, values)) => Solution::optimal(values, sign * norm),
        None => Solution::infeasible(),
    })
}

fn lp_to_solution(lp: simplex::LpResult) -> Solution {
    match lp.status {
        LpStatus::Optimal => Solution::optimal(lp.values, lp.objective),
        LpStatus::Infeasible => Solution::infeasible(),
        LpStatus::Unbounded => Solution::unbounded(),
    }
}

#[cfg(test)]
mod tests {
    use crate::{Model, Sense, SolveStatus};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary => a=1,c=1 (17)
        // vs b=1,c=1 (20, weight 6) — check exactness.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(a * 3.0 + b * 4.0 + c * 2.0, Sense::Le, 6.0);
        m.maximize(a * 10.0 + b * 13.0 + c * 7.0);
        let s = m.solve().unwrap();
        assert!(near(s.objective(), 20.0));
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y, 2x + 2y <= 5, integers => LP gives 2.5, ILP gives 2.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint(x * 2.0 + y * 2.0, Sense::Le, 5.0);
        m.maximize(x + y);
        let s = m.solve().unwrap();
        assert!(near(s.objective(), 2.0));
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(x + y, Sense::Ge, 3.0);
        m.minimize(x + y);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Infeasible);
    }

    #[test]
    fn equality_partition() {
        // exactly one of three binaries, minimize weighted cost.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(a + b + c, Sense::Eq, 1.0);
        m.minimize(a * 5.0 + b * 2.0 + c * 9.0);
        let s = m.solve().unwrap();
        assert!(near(s.objective(), 2.0));
        assert_eq!(s.int_value(b), 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 4x + 5y + c : x,y int >=0, c cont >= 0; x + y >= 3; c >= 2x
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_integer("y", 0.0, 100.0);
        let c = m.add_continuous("c", 0.0, f64::INFINITY);
        m.add_constraint(x + y, Sense::Ge, 3.0);
        m.add_constraint(c - x * 2.0, Sense::Ge, 0.0);
        m.minimize(x * 4.0 + y * 5.0 + c);
        let s = m.solve().unwrap();
        // all-y is best: y = 3, x = 0, c = 0, obj = 15 vs x=3: 12+6=18.
        assert!(near(s.objective(), 15.0));
    }

    #[test]
    fn implication_constraint() {
        // n_j - n_i <= 0 means "j used requires i used" (paper §2.1).
        let mut m = Model::new();
        let ni = m.add_binary("n_i");
        let nj = m.add_binary("n_j");
        m.add_constraint(nj - ni, Sense::Le, 0.0);
        m.add_constraint(nj * 1.0, Sense::Ge, 1.0);
        m.minimize(ni + nj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(ni), 1);
        assert_eq!(s.int_value(nj), 1);
    }

    #[test]
    fn unbounded_integer_program() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, f64::INFINITY);
        m.maximize(x * 1.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Unbounded);
    }

    #[test]
    fn negative_coefficients_and_bounds() {
        // min -3x + y : x in [-2, 2] int, y in [0, 5] int, x + y >= 1
        let mut m = Model::new();
        let x = m.add_integer("x", -2.0, 2.0);
        let y = m.add_integer("y", 0.0, 5.0);
        m.add_constraint(x + y, Sense::Ge, 1.0);
        m.minimize(x * -3.0 + y);
        let s = m.solve().unwrap();
        assert!(near(s.objective(), -6.0)); // x = 2, y = 0
    }

    #[test]
    fn ten_binary_cover() {
        // Set cover flavored instance with a unique optimum.
        let mut m = Model::new();
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(&format!("b{i}"))).collect();
        // each of 5 elements covered by 2 sets
        for e in 0..5 {
            m.add_constraint(vars[e] + vars[e + 5], Sense::Ge, 1.0);
        }
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let obj: crate::LinExpr = vars.iter().zip(costs.iter()).map(|(&v, &c)| v * c).sum();
        m.minimize(obj);
        let s = m.solve().unwrap();
        // per element pick the cheaper of (e, e+5): min(3,9)+min(1,2)+min(4,5)+min(1,3)+min(5,3)
        assert!(near(s.objective(), 3.0 + 1.0 + 4.0 + 1.0 + 3.0));
    }
}
