//! Microbenchmark B5: the pool-backed design-space sweep.
//!
//! Runs the same exhaustive sweep (real discrete-event simulator, short
//! protocol) sequentially and on the `hi-exec` pool, and reports the
//! measured speedup. A fresh evaluator is built per iteration so every
//! iteration pays the full simulation cost rather than hitting the cache.
//! On a single-core host the ratio is expected to be ~1x (the engine's
//! value there is determinism + shared caching, not speedup); on
//! multi-core hosts it should approach the worker count for this
//! embarrassingly parallel workload.
//!
//! Besides the human-readable stats it writes `BENCH_explore.json` in the
//! invocation directory: one machine-readable [`EngineRun`] per engine
//! variant (wall time, simulation count and cache hit rate pulled from a
//! metrics-only `hi-trace` collector), so the perf trajectory across PRs
//! has data points.

use std::time::Instant;

use hi_bench::micro::Runner;
use hi_bench::report::{BenchReport, EngineRun};
use hi_bench::{parallel_sweep, ExpOptions};
use hi_core::{
    explore_par, ilp_heuristic_search, parse_fault_suite, robust_milp_search, DesignSpace,
    ExecContext, ExploreOptions, Problem, RobustEvaluator, RobustMode, RobustnessSpec,
    SharedSimEvaluator, SimProtocol,
};
use hi_des::SimDuration;
use hi_trace::{wellknown as wk, Collector};

/// Runs `body` under a metrics-only collector and packages the wall time
/// plus the registry's simulation count and the evaluator's cache totals
/// as one report row.
fn instrumented(
    engine: &str,
    threads: usize,
    opts: &ExpOptions,
    body: impl FnOnce(&ExecContext, &SharedSimEvaluator),
) -> EngineRun {
    let collector = Collector::metrics_only();
    let registry = collector
        .registry()
        .expect("a metrics-only collector has a registry");
    wk::register_all(registry);
    let exec = ExecContext::new(threads).with_collector(collector.clone());
    let evaluator = opts.shared_evaluator();
    let t0 = Instant::now();
    {
        let _main = collector.install(0, 0);
        body(&exec, &evaluator);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    exec.flush_pool_stats();
    EngineRun {
        engine: engine.to_string(),
        threads,
        wall_s,
        simulations: registry.counter_value(wk::NET_REPLICATIONS),
        cache_hits: evaluator.cache_hits(),
        cache_misses: evaluator.unique_evaluations(),
    }
}

fn main() {
    let quick = std::env::var_os("HI_BENCH_QUICK").is_some();
    let runner = Runner::new("sweep");
    let mut points = DesignSpace::paper_default().points();
    if quick {
        points.truncate(24);
    }
    let opts = |threads: usize| ExpOptions {
        t_sim: SimDuration::from_secs(2.0),
        runs: 1,
        seed: 7,
        threads,
    };
    let threads = hi_exec::default_threads();

    runner.bench("exhaustive_sequential", || {
        parallel_sweep(&points, &opts(1))
    });
    runner.bench(&format!("exhaustive_pool_{threads}threads"), || {
        parallel_sweep(&points, &opts(threads))
    });

    // One paired measurement for the headline ratio (the Runner prints
    // per-variant stats above; this line makes the comparison explicit).
    let t0 = Instant::now();
    let seq = parallel_sweep(&points, &opts(1));
    let sequential = t0.elapsed();
    let t1 = Instant::now();
    let par = parallel_sweep(&points, &opts(threads));
    let pooled = t1.elapsed();
    assert_eq!(seq, par, "pool changed the sweep's results");
    println!(
        "  sweep/speedup_{}pts_{}threads          {:.2}x (seq {:.3?} vs pool {:.3?})",
        points.len(),
        threads,
        sequential.as_secs_f64() / pooled.as_secs_f64().max(1e-9),
        sequential,
        pooled
    );

    // Machine-readable rows: the exhaustive sweep and Algorithm 1, each
    // sequential and pooled, instrumented through the metrics registry.
    let mut bench_report = BenchReport::new("explore");
    let problem = Problem::paper_default(0.7);
    for t in [1, threads] {
        bench_report.push(instrumented(
            "exhaustive_sweep",
            t,
            &opts(t),
            |exec, evaluator| {
                for slot in exec.eval_points(evaluator, &points) {
                    slot.expect("sweep is never cancelled");
                }
            },
        ));
        bench_report.push(instrumented(
            "algorithm1",
            t,
            &opts(t),
            |exec, evaluator| {
                explore_par(&problem, evaluator, ExploreOptions::default(), exec)
                    .expect("exploration succeeds");
            },
        ));
        if threads == 1 {
            break; // single-core host: the two variants coincide
        }
    }
    // Γ-robust engines on the demo fault suite. The robust MILP prices
    // the suite into the formulation and simulates only each level's
    // witness; the ILP heuristic additionally pins fault-untargeted
    // sites to the nominal optimum. Their rows sit next to algorithm1's
    // so the formulation-vs-verification simulation gap is a tracked
    // number, not a claim.
    let suite_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/demo.suite");
    let suite_text = std::fs::read_to_string(&suite_path).expect("demo suite is readable");
    for (engine, milp) in [("robust_milp", true), ("ilp_heuristic", false)] {
        for t in [1, threads] {
            let collector = Collector::metrics_only();
            let registry = collector
                .registry()
                .expect("a metrics-only collector has a registry");
            wk::register_all(registry);
            let exec = ExecContext::new(t).with_collector(collector.clone());
            let (suite, _) = parse_fault_suite(&suite_text).expect("demo suite parses");
            let spec = RobustnessSpec::from_suite(&suite, 2);
            let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 7);
            let evaluator = RobustEvaluator::new(protocol, suite, RobustMode::WorstCase);
            let t0 = Instant::now();
            {
                let _main = collector.install(0, 0);
                let run = if milp {
                    robust_milp_search(
                        &problem,
                        &spec,
                        &evaluator,
                        ExploreOptions::default(),
                        &exec,
                        None,
                        &mut |_| {},
                    )
                } else {
                    ilp_heuristic_search(
                        &problem,
                        &spec,
                        &evaluator,
                        ExploreOptions::default(),
                        &exec,
                        None,
                        &mut |_| {},
                    )
                }
                .expect("robust engine succeeds");
                assert!(run.outcome.best.is_some(), "demo floor is reachable");
            }
            let wall_s = t0.elapsed().as_secs_f64();
            exec.flush_pool_stats();
            bench_report.push(EngineRun {
                engine: engine.to_string(),
                threads: t,
                wall_s,
                simulations: registry.counter_value(wk::NET_REPLICATIONS),
                cache_hits: evaluator.cache_hits(),
                cache_misses: evaluator.unique_evaluations(),
            });
            if threads == 1 {
                break;
            }
        }
    }

    // Fleet mode: a batch of user profiles through one shared,
    // fingerprint-keyed evaluator pool (`hi-serve`'s cross-user dedup).
    // Three of the four profiles share their lowered physics, so after
    // the first user pays for the simulations the other two run almost
    // entirely from cache — the row's cache_hit_rate is the measured
    // dedup factor, not a synthetic one.
    let fleet_text = "\
profile alice\ntsim 2\nruns 1\nseed 7\npdrmin 0.9\n\
profile bob\ntsim 2\nruns 1\nseed 7\npdrmin 0.85\n\
profile carol\ntsim 2\nruns 1\nseed 7\npdrmin 0.7\n\
profile dave\ntsim 2\nruns 1\nseed 7\npdrmin 0.9\ngeometry 1.15\ntraffic 25 64\n";
    let profiles = hi_serve::parse_profiles(fleet_text).expect("bench fleet parses");
    for t in [1, threads] {
        let collector = Collector::metrics_only();
        let registry = collector
            .registry()
            .expect("a metrics-only collector has a registry");
        wk::register_all(registry);
        let exec = ExecContext::new(t).with_collector(collector.clone());
        let fleet = hi_serve::FleetCache::new();
        let policy = hi_serve::RunPolicy {
            max_events: None,
            retry_attempts: 3,
            checkpoint_every: None,
        };
        let t0 = Instant::now();
        {
            let _main = collector.install(0, 0);
            for profile in &profiles {
                let protocol = profile.protocol();
                let key = profile.eval_fingerprint(None);
                let evaluator = fleet.evaluator(key, || {
                    hi_serve::FleetEvaluator::Nominal(protocol.shared_evaluator())
                });
                hi_serve::run_profile(profile, &evaluator, &exec, policy, None, &mut |_| {})
                    .expect("fleet profile runs");
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();
        exec.flush_pool_stats();
        let stats = fleet.stats();
        println!(
            "  sweep/fleet_dedup_{}profiles_{}threads   {:.3}s, {} evaluator(s), {} hits / {} misses",
            profiles.len(),
            t,
            wall_s,
            stats.evaluators,
            stats.hits,
            stats.misses
        );
        bench_report.push(EngineRun {
            engine: "fleet_dedup".to_string(),
            threads: t,
            wall_s,
            simulations: registry.counter_value(wk::NET_REPLICATIONS),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
        });
        if threads == 1 {
            break;
        }
    }

    // Pareto archive: the cost of folding a full sweep's evaluations
    // into the epsilon-box front, and of hydrating the same front back
    // from a rendered segment file. Both are pure CPU — zero fresh
    // simulations — so the rows pin down the overhead a FRONT query (or
    // a warm `tradeoff --archive`) adds on top of the evaluation cache.
    {
        let evaluator = opts(1).shared_evaluator();
        let exec = ExecContext::new(1);
        for slot in exec.eval_points(&evaluator, &points) {
            slot.expect("sweep is never cancelled");
        }
        let evals = evaluator.cached_ok();
        let to_point =
            |(point, eval): &(hi_core::DesignPoint, hi_core::Evaluation)| hi_pareto::FrontPoint {
                fingerprint: point.fingerprint(),
                power_mw: eval.power_mw,
                pdr: eval.pdr,
                latency_ms: eval.latency_ms,
                nlt_days: eval.nlt_days,
            };
        let build = || {
            let mut archive = hi_pareto::ParetoArchive::new(hi_pareto::ArchiveConfig::default());
            for pair in &evals {
                archive.insert(to_point(pair));
            }
            archive
        };
        runner.bench(&format!("pareto_front_build_{}pts", evals.len()), build);
        let t0 = Instant::now();
        let archive = build();
        let build_s = t0.elapsed().as_secs_f64();
        let front = archive.front();
        let segment = hi_serve::render_front_segment(0x42, &front);
        runner.bench(&format!("pareto_front_hydrate_{}pts", front.len()), || {
            let load = hi_serve::parse_front_segment(&segment).expect("bench segment is valid");
            let mut warm = hi_pareto::ParetoArchive::new(hi_pareto::ArchiveConfig::default());
            for point in load.points {
                warm.insert(point);
            }
            assert_eq!(warm.len(), front.len(), "hydration changed the front");
        });
        let t1 = Instant::now();
        let load = hi_serve::parse_front_segment(&segment).expect("bench segment is valid");
        let mut warm = hi_pareto::ParetoArchive::new(hi_pareto::ArchiveConfig::default());
        for point in load.points {
            warm.insert(point);
        }
        let hydrate_s = t1.elapsed().as_secs_f64();
        // Report rows: `cache_hits` carries the surviving front size,
        // `cache_misses` the dominated remainder — the archive's own
        // accept/reject split — and `simulations` stays honest at 0.
        bench_report.push(EngineRun {
            engine: "pareto_front_build".to_string(),
            threads: 1,
            wall_s: build_s,
            simulations: 0,
            cache_hits: front.len() as u64,
            cache_misses: (evals.len() - front.len()) as u64,
        });
        bench_report.push(EngineRun {
            engine: "pareto_front_hydrate".to_string(),
            threads: 1,
            wall_s: hydrate_s,
            simulations: 0,
            cache_hits: warm.len() as u64,
            cache_misses: (front.len() - warm.len()) as u64,
        });
    }

    // Warm restart: the same fleet, served by a daemon that was killed
    // and restarted between the cold run and the re-submission. Pass 1
    // runs cold and spills every evaluator's outcomes to CRC-checked
    // segment files; pass 2 starts from empty in-memory state, hydrates
    // the segments, and re-runs the whole fleet. Its hit rate is the
    // measured durability payoff — close to 1.0, far above the
    // cold-fleet dedup rate — and its simulation count should be 0.
    let cache_dir =
        std::env::temp_dir().join(format!("hi-bench-warm-{}-{}", threads, std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run_fleet = |fleet: &hi_serve::FleetCache,
                     exec: &ExecContext,
                     store: Option<&hi_serve::SegmentStore>| {
        let policy = hi_serve::RunPolicy {
            max_events: None,
            retry_attempts: 3,
            checkpoint_every: None,
        };
        for profile in &profiles {
            let protocol = profile.protocol();
            let key = profile.eval_fingerprint(None);
            let evaluator = fleet.evaluator(key, || {
                let built = hi_serve::FleetEvaluator::Nominal(protocol.shared_evaluator());
                if let Some(store) = store {
                    for outcome in store.hydrate(key) {
                        built.import_entry(outcome);
                    }
                }
                built
            });
            hi_serve::run_profile(profile, &evaluator, exec, policy, None, &mut |_| {})
                .expect("fleet profile runs");
        }
    };
    {
        // Pass 1 (cold, spilled): equivalent to a daemon run + SHUTDOWN.
        let collector = Collector::metrics_only();
        wk::register_all(collector.registry().expect("registry"));
        let exec = ExecContext::new(threads).with_collector(collector.clone());
        let fleet = hi_serve::FleetCache::new();
        let (store, _) = hi_serve::SegmentStore::open(cache_dir.clone(), 256, None)
            .expect("bench cache dir is writable");
        {
            let _main = collector.install(0, 0);
            run_fleet(&fleet, &exec, None);
        }
        for (key, evaluator) in fleet.streams() {
            store
                .flush(key, &evaluator.export_entries())
                .expect("segments flush");
        }
        exec.flush_pool_stats();
    }
    {
        // Pass 2 (warm restart): fresh in-memory state, warm disk.
        let collector = Collector::metrics_only();
        let registry = collector.registry().expect("registry");
        wk::register_all(registry);
        let exec = ExecContext::new(threads).with_collector(collector.clone());
        let fleet = hi_serve::FleetCache::new();
        let (store, notes) = hi_serve::SegmentStore::open(cache_dir.clone(), 256, None)
            .expect("bench cache dir reloads");
        assert!(notes.is_empty(), "clean segments reload clean: {notes:?}");
        let t0 = Instant::now();
        {
            let _main = collector.install(0, 0);
            run_fleet(&fleet, &exec, Some(&store));
        }
        let wall_s = t0.elapsed().as_secs_f64();
        exec.flush_pool_stats();
        let stats = fleet.stats();
        let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
        println!(
            "  sweep/fleet_warm_restart_{}profiles     {:.3}s, {} hits / {} misses ({:.0}% warm)",
            profiles.len(),
            wall_s,
            stats.hits,
            stats.misses,
            hit_rate * 100.0
        );
        bench_report.push(EngineRun {
            engine: "fleet_warm_restart".to_string(),
            threads,
            wall_s,
            simulations: registry.counter_value(wk::NET_REPLICATIONS),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
        });
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Land the report at the workspace root (cargo runs benches with the
    // package directory as cwd); HI_BENCH_REPORT_DIR overrides.
    let dir = std::env::var_os("HI_BENCH_REPORT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .to_path_buf()
        });
    let out = dir.join(bench_report.file_name());
    match bench_report.write_to(&out) {
        Ok(()) => println!("  sweep/report written to {}", out.display()),
        Err(e) => eprintln!("  sweep/report FAILED to write {}: {e}", out.display()),
    }
}
