//! Model programs for `hi-exec`'s core protocols, with seeded mutants.
//!
//! Each model distills one protocol from `crates/exec` — the injector/
//! deque steal path, generation-counter parking, the cache settle/waiter
//! handoff, cancellation mid-batch with the completion latch, and the
//! supervisor retrying over a chaos-dropped cache entry — into a few
//! dozen visible operations, small enough for exhaustive bounded-
//! preemption exploration but faithful to the synchronization structure.
//!
//! Every model takes a [`Mutation`]: [`Mutation::None`] is the faithful
//! protocol (must check clean); every other variant seeds one realistic
//! bug. The self-test harness (`tests/mutants.rs`) asserts the checker
//! catches each mutant with a replayable schedule, which is what makes a
//! clean report on the real protocols *evidence* rather than silence.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::{AtomicBool, Condvar, Data, Mutex};
use crate::thread;
use crate::Config;

/// A seeded bug, or [`Mutation::None`] for the faithful protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Mutation {
    /// The faithful protocol; must check clean.
    None,
    /// [`cancel`]: the cancel flag is stored with `Relaxed` instead of
    /// `Release`, so the store publishes nothing — racing the reason
    /// payload it was meant to order. Caught as a data race.
    RelaxedPublish,
    /// [`cancel`]: the worker loads the cancel flag with `Relaxed`
    /// instead of `Acquire`; symmetric to [`Mutation::RelaxedPublish`].
    RelaxedConsume,
    /// [`parking`]: generation bumps never notify the wakeup condvar.
    /// Caught as a lost wakeup (parked workers, nobody left to notify).
    SkipNotify,
    /// [`parking`]: workers park with a bare wait instead of a predicate
    /// loop, missing updates that land between the scan and the park.
    BareWait,
    /// [`cache`]: the computing thread settles with `notify_one`; with
    /// two waiters parked, one wakeup is never delivered.
    NotifyOne,
    /// [`cache`]: the settle path forgets the shard guard, so the lock
    /// is never released. Caught at thread exit (and feeds HL041's
    /// acquire/release accounting).
    LeakLock,
    /// [`steal`]: workers steal while still holding their own deque
    /// lock, nesting the two deques in opposite orders — a lock-order
    /// inversion.
    LockOrderSwap,
    /// [`cancel`]: a cancelled task skips the completion latch, so the
    /// batch count never reaches zero and the waiter parks forever.
    MissedFinish,
}

// ---------------------------------------------------------------------------
// Model 1: injector/deque steal path

/// Two workers scan own deque → injector → victim's deque back, exactly
/// as `hi-exec`'s pool does. The exactly-once property is asserted at the
/// end: processed totals plus leftovers account for every item.
pub fn steal(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let injector = Arc::new(Mutex::named(VecDeque::from([10u64]), "injector"));
        let queues = Arc::new([
            Mutex::named(VecDeque::<u64>::new(), "deque0"),
            Mutex::named(VecDeque::<u64>::new(), "deque1"),
        ]);
        let total = Arc::new(Mutex::named(0u64, "total"));
        let workers: Vec<_> = (0..2)
            .map(|id: usize| {
                let injector = Arc::clone(&injector);
                let queues = Arc::clone(&queues);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    for _ in 0..2 {
                        let mut item = queues[id].lock().pop_front();
                        if item.is_none() {
                            item = injector.lock().pop_front();
                        }
                        if item.is_none() {
                            let victim = 1 - id;
                            if mutation == Mutation::LockOrderSwap {
                                // Mutant: hold our own deque across the
                                // steal; the two workers nest the deque
                                // locks in opposite orders.
                                let own = queues[id].lock();
                                item = queues[victim].lock().pop_back();
                                drop(own);
                            } else {
                                item = queues[victim].lock().pop_back();
                            }
                        }
                        if let Some(value) = item {
                            *total.lock() += value;
                        }
                    }
                })
            })
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        let mut sum = *total.lock();
        sum += injector.lock().iter().sum::<u64>();
        for queue in queues.iter() {
            sum += queue.lock().iter().sum::<u64>();
        }
        assert_eq!(sum, 10, "work items lost or duplicated by the steal path");
    }
}

// ---------------------------------------------------------------------------
// Model 2: generation-counter parking

/// Two workers and a producer (three threads) over the pool's parking
/// protocol: observe the generation, scan for work, and park only while
/// the generation is unchanged and shutdown is not signalled.
pub fn parking(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let generation = Arc::new(Mutex::named(0u64, "generation"));
        let wakeup = Arc::new(Condvar::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Mutex::named(VecDeque::<u64>::new(), "queue"));
        let total = Arc::new(Mutex::named(0u64, "total"));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let generation = Arc::clone(&generation);
                let wakeup = Arc::clone(&wakeup);
                let shutdown = Arc::clone(&shutdown);
                let queue = Arc::clone(&queue);
                let total = Arc::clone(&total);
                thread::spawn(move || loop {
                    let observed = *generation.lock();
                    if let Some(value) = queue.lock().pop_front() {
                        *total.lock() += value;
                        continue;
                    }
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let guard = generation.lock();
                    if mutation == Mutation::BareWait {
                        // Mutant: park unconditionally — an update that
                        // landed between the scan and this park is missed
                        // forever.
                        let _guard = wakeup.wait(guard);
                    } else {
                        let shutdown = &shutdown;
                        let _guard = wakeup.wait_while(guard, |current| {
                            *current == observed && !shutdown.load(Ordering::Acquire)
                        });
                    }
                })
            })
            .collect();
        // Publish one item, then shut down; each state change bumps the
        // generation under the lock and (unless mutated away) notifies.
        queue.lock().push_back(7);
        {
            let mut generation = generation.lock();
            *generation += 1;
            if mutation != Mutation::SkipNotify {
                wakeup.notify_all();
            }
        }
        shutdown.store(true, Ordering::Release);
        {
            let mut generation = generation.lock();
            *generation += 1;
            if mutation != Mutation::SkipNotify {
                wakeup.notify_all();
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        // The item was either processed or is still queued — never lost.
        let processed = *total.lock();
        assert!(
            processed == 7 || !queue.lock().is_empty(),
            "work item vanished: processed total {processed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Model 3: cache settle/waiter handoff

/// One shard of the exactly-once cache.
struct Shard {
    value: Option<u64>,
    in_flight: bool,
}

/// The cache's get-or-compute protocol: hit, wait-for-settle, or become
/// the computing thread.
fn get_or_compute(state: &Mutex<Shard>, settled: &Condvar, mutation: Mutation) -> u64 {
    let mut shard = state.lock();
    loop {
        if let Some(value) = shard.value {
            return value;
        }
        if shard.in_flight {
            shard = settled.wait_while(shard, |shard| shard.in_flight);
            continue;
        }
        shard.in_flight = true;
        drop(shard);
        let value = 42; // the "compute", off-lock
        thread::yield_now(); // a schedule point standing in for real work
        shard = state.lock();
        shard.value = Some(value);
        shard.in_flight = false;
        match mutation {
            // Mutant: only one of several parked waiters is woken.
            Mutation::NotifyOne => settled.notify_one(),
            // Mutant: the guard is forgotten — the shard lock is never
            // released and this thread exits still holding it.
            Mutation::LeakLock => {
                settled.notify_all();
                std::mem::forget(shard);
                return value;
            }
            _ => settled.notify_all(),
        }
        return value;
    }
}

/// Three getters (four threads) race one cold cache key: one computes,
/// the others park on `settled` and must all be handed the value.
pub fn cache(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let state = Arc::new(Mutex::named(
            Shard {
                value: None,
                in_flight: false,
            },
            "shard",
        ));
        let settled = Arc::new(Condvar::new());
        let getters: Vec<_> = (0..3)
            .map(|_| {
                let state = Arc::clone(&state);
                let settled = Arc::clone(&settled);
                thread::spawn(move || get_or_compute(&state, &settled, mutation))
            })
            .collect();
        for getter in getters {
            assert_eq!(getter.join().unwrap(), 42);
        }
    }
}

// ---------------------------------------------------------------------------
// Model 4: cancellation mid-batch

/// A two-task batch with a completion latch, cancelled mid-flight: the
/// producer publishes a cancel reason, flips the token with `Release`,
/// and waits on the latch; workers observe the token with `Acquire`,
/// read the reason, and still count down the latch for skipped tasks.
pub fn cancel(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let cancelled = Arc::new(AtomicBool::new(false));
        let reason = Arc::new(Data::named(0u64, "cancel-reason"));
        let results = Arc::new([Data::named(0u64, "result0"), Data::named(0u64, "result1")]);
        let remaining = Arc::new(Mutex::named(2usize, "remaining"));
        let done = Arc::new(Condvar::new());
        let workers: Vec<_> = (0..2)
            .map(|id: usize| {
                let cancelled = Arc::clone(&cancelled);
                let reason = Arc::clone(&reason);
                let results = Arc::clone(&results);
                let remaining = Arc::clone(&remaining);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let load_order = if mutation == Mutation::RelaxedConsume {
                        Ordering::Relaxed
                    } else {
                        Ordering::Acquire
                    };
                    if cancelled.load(load_order) {
                        // Reading the reason is only safe if the token
                        // load synchronized with the token store.
                        let _why = reason.get();
                        results[id].set(u64::MAX);
                    } else {
                        results[id].set(10 + id as u64);
                    }
                    // Cancelled tasks still count down — the latch counts
                    // dispatched tasks, not successful ones.
                    if !(mutation == Mutation::MissedFinish && id == 1) {
                        let mut left = remaining.lock();
                        *left -= 1;
                        if *left == 0 {
                            done.notify_all();
                        }
                    }
                })
            })
            .collect();
        reason.set(99);
        let store_order = if mutation == Mutation::RelaxedPublish {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        cancelled.store(true, store_order);
        let guard = remaining.lock();
        drop(done.wait_while(guard, |left| *left > 0));
        for (id, cell) in results.iter().enumerate() {
            let value = cell.get();
            assert!(
                value == u64::MAX || value == 10 + id as u64,
                "task {id} produced {value}"
            );
        }
        for worker in workers {
            let _ = worker.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Model 5: supervised retry over a chaos-dropped cache entry

/// A supervisor computes through the cache while a chaos thread drops the
/// settled entry at an arbitrary point (as `hi-exec`'s fault injection
/// does); one bounded retry must always land a value.
pub fn supervisor(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let state = Arc::new(Mutex::named(
            Shard {
                value: None,
                in_flight: false,
            },
            "shard",
        ));
        let settled = Arc::new(Condvar::new());
        let chaos = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                state.lock().value = None;
            })
        };
        let mut attempts = 0;
        let value = loop {
            attempts += 1;
            let value = get_or_compute(&state, &settled, mutation);
            if state.lock().value.is_some() || attempts >= 2 {
                break value;
            }
        };
        assert_eq!(value, 42, "supervised retry lost the computed value");
        let _ = chaos.join();
    }
}

// ---------------------------------------------------------------------------
// Catalog

/// One clean protocol model with its exploration budget.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Model name (stable; used by CI and `hi-opt lint`).
    pub name: &'static str,
    /// Exploration limits appropriate for the model's size.
    pub config: Config,
    /// The unmutated model.
    pub model: fn(),
}

/// Every protocol model in its faithful ([`Mutation::None`]) form, for
/// clean-pass sweeps in CI and lock-usage lowering into `hi-lint`'s
/// HL041.
pub fn catalog() -> Vec<CatalogEntry> {
    let budget = |max_executions| Config {
        max_executions,
        ..Config::default()
    };
    vec![
        CatalogEntry {
            name: "steal-path",
            config: budget(4_000),
            model: || (steal(Mutation::None))(),
        },
        CatalogEntry {
            name: "generation-parking",
            config: budget(4_000),
            model: || (parking(Mutation::None))(),
        },
        CatalogEntry {
            name: "cache-settle",
            config: budget(3_000),
            model: || (cache(Mutation::None))(),
        },
        CatalogEntry {
            name: "cancel-mid-batch",
            config: budget(4_000),
            model: || (cancel(Mutation::None))(),
        },
        CatalogEntry {
            name: "supervised-retry",
            config: budget(2_000),
            model: || (supervisor(Mutation::None))(),
        },
    ]
}
