//! The wire protocol: one request per line, length-framed payloads,
//! deterministic single-line or counted-block responses.
//!
//! Designed for `printf | nc` debuggability and byte-exact testing:
//!
//! ```text
//! client                          server
//! ------                          ------
//! SUBMIT 2
//! profile alice
//! pdrmin 0.9
//!                                 OK job 1
//! STATUS 1                        OK status 1 running
//! WAIT 1                          EVENT 1 iteration 1 simulations 24
//!                                 EVENT 1 iteration 2 simulations 32
//!                                 OK status 1 done
//! RESULT 1                        OK result 1 11
//!                                 profile alice
//!                                 ...           (11 counted lines)
//! CANCEL 2                        OK cancel 2 cancelled
//! STATS                           OK stats 9
//!                                 serve.jobs.accepted 2
//!                                 ...           (9 counted lines)
//! SHUTDOWN                        OK shutdown
//! anything malformed              ERR <one-line diagnostic>
//! ```
//!
//! `SUBMIT <n>` is followed by exactly `n` raw profile-file lines (line
//! count framing, like the record format: any legal profile byte
//! sequence round-trips). One submission may carry a whole fleet —
//! every `profile` block becomes a job and the response lists every id.
//!
//! This module is pure parse/render — no sockets, no locks — so the
//! grammar is unit-testable byte for byte; `server` owns the I/O loop.

use std::fmt;

/// Upper bound on `SUBMIT` payload lines: fleet files are big, attack
/// payloads are bigger; past this the request is refused before any
/// buffering happens.
pub const MAX_SUBMIT_LINES: usize = 1 << 20;

/// One parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `SUBMIT <n>`: `n` profile-file lines follow.
    Submit {
        /// Number of payload lines that follow this request line.
        lines: usize,
    },
    /// `STATUS <id>`: one-line lifecycle state.
    Status {
        /// The job id.
        id: u64,
    },
    /// `RESULT <id>`: the terminal result block, counted.
    Result {
        /// The job id.
        id: u64,
    },
    /// `WAIT <id>`: stream progress events until the job is terminal.
    Wait {
        /// The job id.
        id: u64,
    },
    /// `CANCEL <id>`: stop a queued or running job.
    Cancel {
        /// The job id.
        id: u64,
    },
    /// `STATS`: the daemon's metric snapshot, counted.
    Stats,
    /// `SHUTDOWN`: finish the current job, persist, exit.
    Shutdown,
}

impl Request {
    /// Parses one request line. Total: any line yields a request or a
    /// one-line diagnostic (which the server echoes as `ERR ...`).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut fields = line.split_whitespace();
        let verb = fields.next().ok_or("empty request".to_string())?;
        let parsed = match verb {
            "SUBMIT" => {
                let raw = fields.next().ok_or("SUBMIT needs a line count")?;
                let lines: usize = raw
                    .parse()
                    .map_err(|_| format!("bad SUBMIT line count `{raw}`"))?;
                if lines > MAX_SUBMIT_LINES {
                    return Err(format!(
                        "SUBMIT of {lines} lines exceeds the {MAX_SUBMIT_LINES}-line cap"
                    ));
                }
                Request::Submit { lines }
            }
            "STATUS" => Request::Status {
                id: job_id(&mut fields, "STATUS")?,
            },
            "RESULT" => Request::Result {
                id: job_id(&mut fields, "RESULT")?,
            },
            "WAIT" => Request::Wait {
                id: job_id(&mut fields, "WAIT")?,
            },
            "CANCEL" => Request::Cancel {
                id: job_id(&mut fields, "CANCEL")?,
            },
            "STATS" => Request::Stats,
            "SHUTDOWN" => Request::Shutdown,
            other => return Err(format!("unknown request `{other}`")),
        };
        if let Some(extra) = fields.next() {
            return Err(format!("unexpected trailing field `{extra}`"));
        }
        Ok(parsed)
    }
}

fn job_id(fields: &mut std::str::SplitWhitespace<'_>, verb: &str) -> Result<u64, String> {
    let raw = fields.next().ok_or(format!("{verb} needs a job id"))?;
    raw.parse()
        .map_err(|_| format!("bad job id `{raw}` for {verb}"))
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Submit { lines } => write!(f, "SUBMIT {lines}"),
            Request::Status { id } => write!(f, "STATUS {id}"),
            Request::Result { id } => write!(f, "RESULT {id}"),
            Request::Wait { id } => write!(f, "WAIT {id}"),
            Request::Cancel { id } => write!(f, "CANCEL {id}"),
            Request::Stats => f.write_str("STATS"),
            Request::Shutdown => f.write_str("SHUTDOWN"),
        }
    }
}

/// Renders an `ERR` line: diagnostics are flattened to one line (the
/// protocol is line-oriented; a multi-line lint report becomes
/// `; `-joined clauses).
pub fn err_line(message: &str) -> String {
    let flat: Vec<&str> = message
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
        .collect();
    format!("ERR {}\n", flat.join("; "))
}

/// Renders an `OK <verb> ...` line from pre-rendered tail words.
pub fn ok_line(tail: &str) -> String {
    format!("OK {tail}\n")
}

/// Renders a counted block response: the `OK <tail> <n>` line followed
/// by exactly `n` lines of `body`.
pub fn ok_block(tail: &str, body: &str) -> String {
    let count = body.lines().count();
    let mut out = format!("OK {tail} {count}\n");
    for line in body.lines() {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grammar_roundtrips() {
        for line in [
            "SUBMIT 3", "STATUS 1", "RESULT 7", "WAIT 2", "CANCEL 9", "STATS", "SHUTDOWN",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.to_string(), line);
        }
        // Whitespace-tolerant, like every parser in the workspace.
        assert_eq!(
            Request::parse("  STATUS\t5  "),
            Ok(Request::Status { id: 5 })
        );
    }

    #[test]
    fn malformed_requests_yield_one_line_diagnostics() {
        for line in [
            "",
            "submit 3",
            "SUBMIT",
            "SUBMIT x",
            "SUBMIT -1",
            "STATUS",
            "STATUS abc",
            "RESULT 1 2",
            "FETCH 1",
            "SHUTDOWN now",
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(!err.contains('\n'), "{line:?} -> {err:?}");
        }
        let err = Request::parse(&format!("SUBMIT {}", MAX_SUBMIT_LINES + 1)).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn responses_are_framed_and_flattened() {
        assert_eq!(ok_line("job 1 2"), "OK job 1 2\n");
        assert_eq!(ok_block("result 1", "a\nb\n"), "OK result 1 2\na\nb\n");
        assert_eq!(ok_block("stats", ""), "OK stats 0\n");
        assert_eq!(
            err_line("profile file line 2: bad geometry\n\nsecond issue\n"),
            "ERR profile file line 2: bad geometry; second issue\n"
        );
    }
}
