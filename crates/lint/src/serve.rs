//! Static validation of fleet user profiles and of the serving daemon's
//! own configuration.
//!
//! The `hi-serve` profile parser is deliberately *total over semantics*:
//! it rejects malformed text (non-numeric fields, unknown keywords,
//! trailing junk) but accepts any finite number, because a profile that
//! *parses* and a profile that *makes sense* are different questions —
//! and the second one belongs here, where every front end (daemon
//! startup, `hi-opt lint`, tests) gets the same answer:
//!
//! * **HL042** — a user profile is structurally broken (error): an empty
//!   or duplicated profile id, a traffic mix that generates nothing
//!   (rate ≤ 0), a reliability floor outside `[0, 1]`, a non-positive
//!   body-geometry scale, or zero replications. Running such a profile
//!   would compute garbage, so the daemon bounces the submission with
//!   the findings instead of a job id.
//! * **HL043** — the daemon configuration is broken (error): a job
//!   queue with capacity zero (every submission would bounce), or a
//!   per-job DES event budget below the warm-up floor (every job would
//!   trip its logical deadline before a single packet crosses the
//!   network — same floor as HL038's supervision check).
//! * **HL044** — the durable-cache persistence is broken (error): a
//!   compaction threshold of zero (every settle rewrites every segment,
//!   turning append-mostly persistence into quadratic I/O) or absurdly
//!   large (segments never compact, so quarantine-recovered garbage and
//!   dead appends accumulate without bound), or a segment directory
//!   that collides with the job-record directory (both subsystems use
//!   `.tmp`/`.prev` atomic-rename discipline; sharing one namespace
//!   means a record scan can pick up segment temporaries and vice
//!   versa).
//! * **HL045** — a reconnecting client's retry policy is broken
//!   (error): zero maximum attempts reads as "retry forever" against a
//!   daemon that may be gone for good, and a backoff base of zero
//!   collapses the exponential schedule (`base << attempt`) into a
//!   zero-delay busy-loop hammering the listener it is supposed to be
//!   backing off from.
//! * **HL046** — a Pareto-archive epsilon-box configuration is
//!   degenerate (error): a zero, negative, or non-finite epsilon puts
//!   every evaluation into one box (or overflows the integral box
//!   indices every dominance comparison runs on), and an epsilon wider
//!   than its objective's whole range collapses the archive to a single
//!   point — the "front" it serves would be one arbitrary design.
//! * **HL047** — a `FRONT` query arrived before any job completed
//!   (warning): the archive only fills as jobs run, so the answer is an
//!   empty front; legal, but almost certainly a client asking too early.
//!
//! Like the rest of the crate this module is dependency-free: `hi-serve`
//! lowers parsed profiles into [`ProfileSpec`]s and its configuration
//! into a [`ServerSpec`] / [`CachePersistSpec`]; `hi-serve-client`
//! lowers its flags into a [`ClientRetrySpec`].

use crate::report::{Finding, Report, RuleId, Span};
use std::path::PathBuf;

/// Ceiling above which a compaction threshold is considered "never":
/// at 2^20 appends per compaction a segment has long since stopped
/// being a cache file and become a log the daemon rereads on start.
pub const COMPACT_THRESHOLD_CEILING: u32 = 1 << 20;

/// One fleet user profile, lowered to the numbers the rules need.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// The profile's id (empty ids are representable and a finding).
    pub id: String,
    /// Application packet generation rate, packets per second.
    pub packets_per_second: f64,
    /// Reliability floor `PDRmin` the exploration runs against.
    pub pdr_min: f64,
    /// Body-geometry scale factor applied to every link distance.
    pub geometry_scale: f64,
    /// Simulation replications averaged per evaluation.
    pub runs: u32,
}

/// The serving daemon's configuration, lowered to plain numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSpec {
    /// Maximum number of queued-or-running jobs admitted at once.
    pub queue_capacity: usize,
    /// Per-replication DES event budget applied to every job, if any.
    pub job_max_events: Option<u64>,
    /// The DES warm-up floor (`hi_core::warmup_events_floor()`): below
    /// this many events not even the largest topology's node-powerup
    /// events have all dispatched.
    pub warmup_events_floor: u64,
}

/// The daemon's durable-cache persistence knobs, lowered to plain
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachePersistSpec {
    /// Appends tolerated on one segment before it is compacted.
    pub compact_threshold: u32,
    /// Directory holding the cache segment files.
    pub cache_dir: PathBuf,
    /// Directory holding the daemon's job records and checkpoints.
    pub record_dir: PathBuf,
}

/// A reconnecting client's retry policy, lowered to plain numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientRetrySpec {
    /// Maximum connection attempts before the client gives up.
    pub max_attempts: u32,
    /// Base delay of the exponential backoff schedule, milliseconds.
    pub backoff_base_ms: f64,
}

/// A Pareto archive's epsilon-box widths, lowered to plain numbers with
/// each axis's sensible full range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveSpec {
    /// Box width on the power axis, mW.
    pub eps_power_mw: f64,
    /// Box width on the unreliability (`1 − PDR`) axis (range `[0, 1]`).
    pub eps_pdr: f64,
    /// Box width on the latency axis, ms.
    pub eps_latency_ms: f64,
}

/// One `FRONT` query against a daemon's archive state, lowered to the
/// two numbers HL047 needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontQuerySpec {
    /// Jobs the daemon has run to a terminal `done` state.
    pub completed_jobs: u64,
    /// Points currently on the queried stream's front (hydrated points
    /// count — a warm restart is not a premature query).
    pub archived_points: usize,
}

/// Lints a Pareto-archive epsilon-box configuration (rule HL046).
pub fn lint_archive(spec: &ArchiveSpec) -> Report {
    let mut report = Report::new();
    let axes = [
        ("power epsilon", spec.eps_power_mw, "mW", 1e3),
        ("pdr epsilon", spec.eps_pdr, "", 1.0),
        ("latency epsilon", spec.eps_latency_ms, "ms", 1e6),
    ];
    for (name, eps, unit, range) in axes {
        if eps <= 0.0 || !eps.is_finite() {
            report.push(Finding::new(
                RuleId::ArchiveMisconfigured,
                Span::Model,
                format!(
                    "{name} {eps} {unit} is not positive and finite — every \
                     evaluation lands in one epsilon box (or box indices \
                     overflow) and dominance is meaningless"
                ),
            ));
        } else if eps > range {
            report.push(Finding::new(
                RuleId::ArchiveMisconfigured,
                Span::Model,
                format!(
                    "{name} {eps} {unit} is wider than the whole objective \
                     range ({range}) — the archive collapses to a single \
                     arbitrary point"
                ),
            ));
        }
    }
    report
}

/// Lints one `FRONT` query against the daemon's state (rule HL047).
pub fn lint_front_query(spec: &FrontQuerySpec) -> Report {
    let mut report = Report::new();
    if spec.completed_jobs == 0 && spec.archived_points == 0 {
        report.push(Finding::new(
            RuleId::FrontBeforeJobs,
            Span::Model,
            "FRONT queried before any job completed — the Pareto archive \
             only fills as jobs run, so this answer is an empty front",
        ));
    }
    report
}

/// Lints the daemon's durable-cache persistence (rule HL044).
pub fn lint_cache_persist(spec: &CachePersistSpec) -> Report {
    let mut report = Report::new();
    if spec.compact_threshold == 0 {
        report.push(Finding::new(
            RuleId::CachePersistMisconfigured,
            Span::Model,
            "compaction threshold 0 — every settle would rewrite every \
             segment in full, turning append-mostly persistence into \
             quadratic I/O",
        ));
    } else if spec.compact_threshold > COMPACT_THRESHOLD_CEILING {
        report.push(Finding::new(
            RuleId::CachePersistMisconfigured,
            Span::Model,
            format!(
                "compaction threshold {} exceeds {} — segments would \
                 effectively never compact and grow without bound",
                spec.compact_threshold, COMPACT_THRESHOLD_CEILING
            ),
        ));
    }
    if spec.cache_dir == spec.record_dir {
        report.push(Finding::new(
            RuleId::CachePersistMisconfigured,
            Span::Model,
            format!(
                "cache segment directory collides with the job-record \
                 directory ({}) — both use `.tmp`/`.prev` atomic-rename \
                 discipline, so record scans and segment compactions \
                 would race over one namespace",
                spec.cache_dir.display()
            ),
        ));
    }
    report
}

/// Lints a reconnecting client's retry policy (rule HL045).
pub fn lint_client_retry(spec: &ClientRetrySpec) -> Report {
    let mut report = Report::new();
    if spec.max_attempts == 0 {
        report.push(Finding::new(
            RuleId::ClientRetryMisconfigured,
            Span::Model,
            "0 maximum connection attempts — an unbounded retry loop \
             against a daemon that may be gone for good",
        ));
    }
    if spec.backoff_base_ms <= 0.0 || spec.backoff_base_ms.is_nan() {
        report.push(Finding::new(
            RuleId::ClientRetryMisconfigured,
            Span::Model,
            format!(
                "backoff base {} ms is not positive — the exponential \
                 schedule collapses into a zero-delay busy-loop against \
                 the listener it should back off from",
                spec.backoff_base_ms
            ),
        ));
    }
    report
}

/// Lints a batch of fleet user profiles (rule HL042).
pub fn lint_profile(specs: &[ProfileSpec]) -> Report {
    let mut report = Report::new();
    for (index, spec) in specs.iter().enumerate() {
        let span = || Span::Profile {
            id: spec.id.clone(),
        };
        if spec.id.is_empty() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "profile #{index} has an empty id — results could \
                     never be routed back to a user"
                ),
            ));
        } else if let Some(first) = specs[..index].iter().position(|p| p.id == spec.id) {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "duplicate profile id (also profile #{first}) — \
                     results for the two submissions would be \
                     indistinguishable"
                ),
            ));
        }
        if spec.packets_per_second <= 0.0 || spec.packets_per_second.is_nan() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "traffic mix generates nothing ({} packet(s)/s) — \
                     PDR over zero packets is undefined",
                    spec.packets_per_second
                ),
            ));
        }
        if !(0.0..=1.0).contains(&spec.pdr_min) || spec.pdr_min.is_nan() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "PDRmin {} outside [0, 1] — a delivery ratio can \
                     never satisfy it (or always does, vacuously)",
                    spec.pdr_min
                ),
            ));
        }
        if spec.geometry_scale <= 0.0 || !spec.geometry_scale.is_finite() {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                format!(
                    "body-geometry scale {} is not a positive finite \
                     number — link distances would be zero or negative",
                    spec.geometry_scale
                ),
            ));
        }
        if spec.runs == 0 {
            report.push(Finding::new(
                RuleId::ProfileInvalid,
                span(),
                "0 simulation replications — every evaluation would \
                 average an empty sample",
            ));
        }
    }
    report
}

/// Lints the serving daemon's configuration (rule HL043).
pub fn lint_server(spec: &ServerSpec) -> Report {
    let mut report = Report::new();
    if spec.queue_capacity == 0 {
        report.push(Finding::new(
            RuleId::ServeMisconfigured,
            Span::Model,
            "job queue configured with capacity 0 — every submission \
             would be bounced before a single job runs",
        ));
    }
    if let Some(budget) = spec.job_max_events {
        if budget < spec.warmup_events_floor {
            report.push(Finding::new(
                RuleId::ServeMisconfigured,
                Span::Model,
                format!(
                    "per-job event budget {budget} is below the DES \
                     warm-up floor {} — every job would trip its \
                     deadline before simulating a single packet",
                    spec.warmup_events_floor
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> ProfileSpec {
        ProfileSpec {
            id: "alice".into(),
            packets_per_second: 10.0,
            pdr_min: 0.9,
            geometry_scale: 1.0,
            runs: 3,
        }
    }

    #[test]
    fn a_sane_profile_batch_is_clean() {
        let specs = vec![
            sane(),
            ProfileSpec {
                id: "bob".into(),
                ..sane()
            },
        ];
        assert!(lint_profile(&specs).is_clean());
        assert!(lint_profile(&[]).is_clean());
    }

    #[test]
    fn hl042_fires_on_each_broken_field() {
        let report = lint_profile(&[ProfileSpec {
            id: String::new(),
            ..sane()
        }]);
        assert!(report.has_rule(RuleId::ProfileInvalid));
        assert!(report.has_errors(), "HL042 is an error");
        assert!(report.to_string().contains("empty id"), "{report}");

        let report = lint_profile(&[sane(), sane()]);
        assert_eq!(report.error_count(), 1, "only the later copy fires");
        assert!(report.to_string().contains("duplicate profile id"));

        let report = lint_profile(&[ProfileSpec {
            packets_per_second: 0.0,
            ..sane()
        }]);
        assert!(report.to_string().contains("generates nothing"));

        let report = lint_profile(&[ProfileSpec {
            pdr_min: 1.5,
            ..sane()
        }]);
        assert!(report.to_string().contains("outside [0, 1]"));
        assert!(!lint_profile(&[ProfileSpec {
            pdr_min: f64::NAN,
            ..sane()
        }])
        .is_clean());

        let report = lint_profile(&[ProfileSpec {
            geometry_scale: 0.0,
            ..sane()
        }]);
        assert!(report.to_string().contains("geometry"), "{report}");

        let report = lint_profile(&[ProfileSpec { runs: 0, ..sane() }]);
        assert!(report.to_string().contains("replications"));
    }

    #[test]
    fn hl042_findings_accumulate_per_profile() {
        let report = lint_profile(&[ProfileSpec {
            id: String::new(),
            packets_per_second: -1.0,
            pdr_min: 2.0,
            geometry_scale: f64::INFINITY,
            runs: 0,
        }]);
        assert_eq!(report.error_count(), 5);
    }

    #[test]
    fn hl043_fires_on_server_misconfiguration() {
        let sane = ServerSpec {
            queue_capacity: 64,
            job_max_events: Some(1_000_000),
            warmup_events_floor: 11,
        };
        assert!(lint_server(&sane).is_clean());
        assert!(lint_server(&ServerSpec {
            job_max_events: None,
            ..sane
        })
        .is_clean());

        let report = lint_server(&ServerSpec {
            queue_capacity: 0,
            ..sane
        });
        assert!(report.has_rule(RuleId::ServeMisconfigured));
        assert!(report.has_errors(), "HL043 is an error");

        let report = lint_server(&ServerSpec {
            job_max_events: Some(10),
            ..sane
        });
        assert!(report.to_string().contains("warm-up floor 11"), "{report}");

        let report = lint_server(&ServerSpec {
            queue_capacity: 0,
            job_max_events: Some(3),
            ..sane
        });
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn hl044_fires_on_cache_persistence_misconfiguration() {
        let sane = CachePersistSpec {
            compact_threshold: 256,
            cache_dir: PathBuf::from("/state/cache"),
            record_dir: PathBuf::from("/state"),
        };
        assert!(lint_cache_persist(&sane).is_clean());

        let report = lint_cache_persist(&CachePersistSpec {
            compact_threshold: 0,
            ..sane.clone()
        });
        assert!(report.has_rule(RuleId::CachePersistMisconfigured));
        assert!(report.has_errors(), "HL044 is an error");
        assert!(report.to_string().contains("quadratic I/O"), "{report}");

        let report = lint_cache_persist(&CachePersistSpec {
            compact_threshold: COMPACT_THRESHOLD_CEILING + 1,
            ..sane.clone()
        });
        assert!(report.to_string().contains("never compact"), "{report}");
        assert!(lint_cache_persist(&CachePersistSpec {
            compact_threshold: COMPACT_THRESHOLD_CEILING,
            ..sane.clone()
        })
        .is_clean());

        let report = lint_cache_persist(&CachePersistSpec {
            cache_dir: PathBuf::from("/state"),
            ..sane
        });
        assert!(report.to_string().contains("collides"), "{report}");
    }

    #[test]
    fn hl045_fires_on_broken_client_retry_policy() {
        let sane = ClientRetrySpec {
            max_attempts: 5,
            backoff_base_ms: 50.0,
        };
        assert!(lint_client_retry(&sane).is_clean());

        let report = lint_client_retry(&ClientRetrySpec {
            max_attempts: 0,
            ..sane
        });
        assert!(report.has_rule(RuleId::ClientRetryMisconfigured));
        assert!(report.has_errors(), "HL045 is an error");
        assert!(report.to_string().contains("unbounded"), "{report}");

        for base in [0.0, -1.0, f64::NAN] {
            let report = lint_client_retry(&ClientRetrySpec {
                backoff_base_ms: base,
                ..sane
            });
            assert!(report.to_string().contains("busy-loop"), "{report}");
        }

        let report = lint_client_retry(&ClientRetrySpec {
            max_attempts: 0,
            backoff_base_ms: 0.0,
        });
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn hl046_fires_on_degenerate_archive_epsilons() {
        let sane = ArchiveSpec {
            eps_power_mw: 1e-6,
            eps_pdr: 1e-6,
            eps_latency_ms: 1e-6,
        };
        assert!(lint_archive(&sane).is_clean());

        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let report = lint_archive(&ArchiveSpec {
                eps_power_mw: eps,
                ..sane
            });
            assert!(report.has_rule(RuleId::ArchiveMisconfigured));
            assert!(report.has_errors(), "HL046 is an error");
            assert!(
                report.to_string().contains("not positive and finite"),
                "{report}"
            );
        }

        let report = lint_archive(&ArchiveSpec {
            eps_pdr: 1.5,
            ..sane
        });
        assert!(
            report
                .to_string()
                .contains("wider than the whole objective"),
            "{report}"
        );
        assert_eq!(report.error_count(), 1, "only the pdr axis fires");

        let report = lint_archive(&ArchiveSpec {
            eps_power_mw: -1.0,
            eps_pdr: 2.0,
            eps_latency_ms: 1e7,
        });
        assert_eq!(report.error_count(), 3, "each axis reports independently");
    }

    #[test]
    fn hl047_fires_only_on_a_front_query_before_any_job() {
        let report = lint_front_query(&FrontQuerySpec {
            completed_jobs: 0,
            archived_points: 0,
        });
        assert!(report.has_rule(RuleId::FrontBeforeJobs));
        assert!(!report.has_errors(), "HL047 is a warning");
        assert_eq!(report.warning_count(), 1);
        assert!(report.to_string().contains("empty front"), "{report}");

        // Completed work, or warm hydrated points, both silence it.
        assert!(lint_front_query(&FrontQuerySpec {
            completed_jobs: 1,
            archived_points: 0,
        })
        .is_clean());
        assert!(lint_front_query(&FrontQuerySpec {
            completed_jobs: 0,
            archived_points: 3,
        })
        .is_clean());
    }
}
