//! Minimal JSON support: string escaping for the sinks and a small
//! recursive-descent parser used by tests and the `trace-check` binary.
//!
//! This is intentionally not a general-purpose JSON library; it implements
//! exactly RFC 8259 syntax with no extensions, keeps numbers as `f64`, and
//! exists so the workspace can *emit and validate* trace files with zero
//! dependencies.

use std::fmt::Write as _;

/// Appends the JSON string encoding of `s` (including the surrounding
/// quotes) to `out`.
///
/// Control characters (U+0000..=U+001F) become `\u00XX` (with the dedicated
/// short escapes for `\n`, `\r`, `\t`, backspace and form feed), `"` and
/// `\` are escaped, and everything else — including non-ASCII — passes
/// through as UTF-8, which every JSON consumer must accept.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns the JSON string encoding of `s`, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Appends a JSON representation of `v` to `out`.
///
/// JSON has no NaN/Infinity; they are mapped to `null` rather than
/// producing an invalid document.
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys kept.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (one value plus optional whitespace).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so it is valid).
                    let s = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_control_chars_quotes_and_non_ascii() {
        assert_eq!(escape("plain"), r#""plain""#);
        assert_eq!(escape("say \"hi\""), r#""say \"hi\"""#);
        assert_eq!(escape("a\\b"), r#""a\\b""#);
        assert_eq!(escape("line\nfeed\ttab\rret"), r#""line\nfeed\ttab\rret""#);
        assert_eq!(escape("\u{8}\u{c}"), r#""\b\f""#);
        assert_eq!(escape("\u{1}\u{1f}"), r#""\u0001\u001f""#);
        // Non-ASCII passes through unescaped (valid UTF-8 JSON).
        assert_eq!(escape("crâne-à-ü → 日本"), "\"crâne-à-ü → 日本\"");
        assert_eq!(escape(""), r#""""#);
    }

    #[test]
    fn escape_roundtrips_through_parser() {
        for s in [
            "simple",
            "with \"quotes\" and \\backslash\\",
            "ctrl:\u{0}\u{1}\u{1f}\n\r\t\u{8}\u{c}",
            "unicode: ü 北京 🚀 élan",
            "",
        ] {
            let encoded = escape(s);
            let parsed = parse(&encoded).unwrap_or_else(|e| panic!("{encoded}: {e}"));
            assert_eq!(parsed, Value::Str(s.to_string()), "roundtrip of {s:?}");
        }
    }

    #[test]
    fn parse_document_shapes() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(-2.5),
                Value::Num(1000.0)
            ]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \u{1} ctrl\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "[1] trailing",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_surrogate_pairs() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
    }

    #[test]
    fn number_into_maps_non_finite_to_null() {
        let mut s = String::new();
        number_into(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        number_into(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}
