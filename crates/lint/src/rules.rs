//! The static rule set over [`LintModel`]s.

use std::collections::HashMap;

use crate::model::{normalize, LintModel, NormKind, NormRow, RowSense, TOL, ZERO_TOL};
use crate::propagate::propagate;
use crate::report::{Finding, Report, RuleId, Span};

/// Coefficient-magnitude ratio within one row above which conditioning is
/// flagged (classic big-M smell).
const CONDITION_RATIO: f64 = 1e6;

/// Propagation rounds run by [`analyze`].
const PROPAGATION_ROUNDS: usize = 8;

fn var_span(model: &LintModel, index: usize) -> Span {
    Span::Variable {
        index,
        name: model.vars[index].name.clone(),
    }
}

fn row_span(model: &LintModel, index: usize) -> Span {
    Span::Row {
        index,
        name: model.rows[index].name.clone(),
    }
}

/// Runs every static rule against `model` and returns the combined report.
///
/// Rules and severities (see [`RuleId`] for the full table):
/// errors are structural (non-finite numbers, dangling references, crossed
/// bounds), warnings are semantic smells (provable infeasibility, unused
/// variables, duplicate/dominated rows, conditioning), infos are harmless
/// redundancy.
///
/// # Examples
///
/// ```
/// use hi_lint::{analyze, LintModel, RowSense, RuleId};
///
/// let mut m = LintModel::new();
/// let x = m.var("x", 0.0, 1.0, true);
/// let y = m.var("y", 0.0, 1.0, true);
/// m.row("choose", vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 3.0);
/// let report = analyze(&m);
/// assert!(report.has_rule(RuleId::BoundInfeasible)); // 2 binaries can't sum to 3
/// ```
pub fn analyze(model: &LintModel) -> Report {
    let mut report = Report::new();
    let n = model.vars.len();

    // --- variable bounds ---------------------------------------------------
    for (i, v) in model.vars.iter().enumerate() {
        if v.lower.is_nan()
            || v.upper.is_nan()
            || v.lower == f64::INFINITY
            || v.upper == f64::NEG_INFINITY
        {
            report.push(Finding::new(
                RuleId::NonFiniteBound,
                var_span(model, i),
                format!("bounds [{}, {}] are not usable", v.lower, v.upper),
            ));
            continue; // crossed-bound comparison is meaningless on NaN
        }
        if v.lower > v.upper + TOL {
            report.push(Finding::new(
                RuleId::CrossedBounds,
                var_span(model, i),
                format!("lower bound {} exceeds upper bound {}", v.lower, v.upper),
            ));
        }
    }

    // --- objective ---------------------------------------------------------
    for &(v, c) in &model.objective {
        if v >= n {
            report.push(Finding::new(
                RuleId::DanglingVariable,
                Span::Model,
                format!("objective references variable #{v} but the model has {n}"),
            ));
        } else if !c.is_finite() {
            report.push(Finding::new(
                RuleId::NonFiniteCoefficient,
                var_span(model, v),
                format!("objective coefficient {c} is not finite"),
            ));
        }
    }

    // --- per-row structure -------------------------------------------------
    for (i, row) in model.rows.iter().enumerate() {
        let mut structurally_ok = true;
        for &(v, c) in &row.terms {
            if v >= n {
                report.push(Finding::new(
                    RuleId::DanglingVariable,
                    row_span(model, i),
                    format!("references variable #{v} but the model has {n}"),
                ));
                structurally_ok = false;
            } else if !c.is_finite() {
                report.push(Finding::new(
                    RuleId::NonFiniteCoefficient,
                    row_span(model, i),
                    format!("coefficient {c} on `{}` is not finite", model.vars[v].name),
                ));
                structurally_ok = false;
            }
        }
        if !row.rhs.is_finite() {
            report.push(Finding::new(
                RuleId::NonFiniteCoefficient,
                row_span(model, i),
                format!("right-hand side {} is not finite", row.rhs),
            ));
            structurally_ok = false;
        }
        if !structurally_ok {
            continue;
        }

        let effective: Vec<f64> = row
            .terms
            .iter()
            .map(|&(_, c)| c.abs())
            .filter(|&a| a > ZERO_TOL)
            .collect();
        if effective.is_empty() {
            let holds = match row.sense {
                RowSense::Le => 0.0 <= row.rhs + TOL,
                RowSense::Ge => 0.0 >= row.rhs - TOL,
                RowSense::Eq => row.rhs.abs() <= TOL,
            };
            let verdict = if holds {
                "vacuously true"
            } else {
                "trivially infeasible"
            };
            report.push(Finding::new(
                RuleId::EmptyRow,
                row_span(model, i),
                format!("row has no effective terms and is {verdict}"),
            ));
            continue;
        }

        // Conditioning / big-M.
        let max_c = effective.iter().copied().fold(0.0f64, f64::max);
        let min_c = effective.iter().copied().fold(f64::INFINITY, f64::min);
        if max_c / min_c > CONDITION_RATIO {
            report.push(Finding::new(
                RuleId::Conditioning,
                row_span(model, i),
                format!(
                    "coefficient magnitudes span [{min_c:.3e}, {max_c:.3e}] \
                     (ratio {:.1e} > {CONDITION_RATIO:.0e}); big-M style rows \
                     weaken LP relaxations and invite round-off",
                    max_c / min_c
                ),
            ));
        }
    }

    // --- variable usage ----------------------------------------------------
    let mut used = vec![false; n];
    for row in &model.rows {
        for &(v, c) in &row.terms {
            if v < n && c.abs() > ZERO_TOL {
                used[v] = true;
            }
        }
    }
    for &(v, c) in &model.objective {
        if v < n && c.abs() > ZERO_TOL {
            used[v] = true;
        }
    }
    for (i, v) in model.vars.iter().enumerate() {
        // A variable fixed by its bounds is a deliberate pin (Algorithm 1
        // freezes dominated configuration variables this way), not an
        // accident worth flagging.
        if !used[i] && (v.upper - v.lower).abs() > TOL {
            report.push(Finding::new(
                RuleId::UnusedVariable,
                var_span(model, i),
                "appears in no constraint and not in the objective".to_owned(),
            ));
        }
    }

    // --- duplicate / dominated / conflicting rows ---------------------------
    // Fingerprint -> (row index, normalized rhs) of the strongest row seen.
    let mut seen: HashMap<NormRow, (usize, f64)> = HashMap::new();
    for (i, row) in model.rows.iter().enumerate() {
        let Some(norm) = normalize(row) else {
            continue;
        };
        match seen.get(&norm.key) {
            None => {
                seen.insert(norm.key, (i, norm.rhs));
            }
            Some(&(prev, prev_rhs)) => {
                let prev_name = &model.rows[prev].name;
                if (norm.rhs - prev_rhs).abs() <= TOL {
                    report.push(Finding::new(
                        RuleId::DuplicateRow,
                        row_span(model, i),
                        format!("identical to row `{prev_name}` (#{prev})"),
                    ));
                } else if norm.key.kind == NormKind::Eq {
                    report.push(Finding::new(
                        RuleId::BoundInfeasible,
                        row_span(model, i),
                        format!(
                            "equality conflicts with row `{prev_name}` (#{prev}): \
                             same left-hand side, different right-hand side"
                        ),
                    ));
                } else if norm.rhs > prev_rhs {
                    // Le-normalized: larger rhs is the weaker row.
                    report.push(Finding::new(
                        RuleId::DominatedRow,
                        row_span(model, i),
                        format!("implied by the tighter row `{prev_name}` (#{prev})"),
                    ));
                } else {
                    report.push(Finding::new(
                        RuleId::DominatedRow,
                        Span::Row {
                            index: prev,
                            name: prev_name.clone(),
                        },
                        format!("implied by the tighter row `{}` (#{i})", model.rows[i].name),
                    ));
                    seen.insert(norm.key, (i, norm.rhs));
                }
            }
        }
    }

    // --- interval propagation ----------------------------------------------
    // Skip when structure is broken: propagation over dangling/NaN data
    // would chase garbage.
    if !report.has_errors() {
        let prop = propagate(model, PROPAGATION_ROUNDS);
        for f in prop.findings {
            report.push(f);
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    /// A well-formed two-variable model no rule should fire on.
    fn clean_model() -> LintModel {
        let mut m = LintModel::new();
        let x = m.var("x", 0.0, 1.0, true);
        let y = m.var("y", 0.0, 1.0, true);
        m.row("pick", vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 1.0);
        m.objective = vec![(x, 1.0), (y, 2.0)];
        m
    }

    #[test]
    fn clean_model_is_clean() {
        let report = analyze(&clean_model());
        assert!(report.is_clean(), "{report}");
    }

    // -- NonFiniteBound ------------------------------------------------------

    #[test]
    fn nan_bound_fires() {
        let mut m = clean_model();
        m.vars[0].lower = f64::NAN;
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::NonFiniteBound));
        assert!(r.has_errors());
    }

    #[test]
    fn infinite_bounds_in_the_right_direction_are_fine() {
        let mut m = clean_model();
        let z = m.var("z", f64::NEG_INFINITY, f64::INFINITY, false);
        m.objective.push((z, 1.0));
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::NonFiniteBound), "{r}");
    }

    // -- CrossedBounds -------------------------------------------------------

    #[test]
    fn crossed_bounds_fire() {
        let mut m = clean_model();
        m.vars[1].lower = 2.0;
        m.vars[1].upper = 1.0;
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::CrossedBounds));
        assert!(r.has_errors());
    }

    #[test]
    fn equal_bounds_do_not_fire_crossed() {
        let mut m = clean_model();
        m.vars[1].lower = 1.0;
        m.vars[1].upper = 1.0;
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::CrossedBounds), "{r}");
    }

    // -- NonFiniteCoefficient ------------------------------------------------

    #[test]
    fn nan_coefficient_fires() {
        let mut m = clean_model();
        m.rows[0].terms[0].1 = f64::NAN;
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::NonFiniteCoefficient));
        assert!(r.has_errors());
    }

    #[test]
    fn infinite_rhs_fires() {
        let mut m = clean_model();
        m.rows[0].rhs = f64::INFINITY;
        assert!(analyze(&m).has_rule(RuleId::NonFiniteCoefficient));
    }

    #[test]
    fn nan_objective_coefficient_fires() {
        let mut m = clean_model();
        m.objective[0].1 = f64::NAN;
        assert!(analyze(&m).has_rule(RuleId::NonFiniteCoefficient));
    }

    // -- DanglingVariable ----------------------------------------------------

    #[test]
    fn dangling_row_reference_fires() {
        let mut m = clean_model();
        m.rows[0].terms.push((17, 1.0));
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::DanglingVariable));
        assert!(r.has_errors());
    }

    #[test]
    fn dangling_objective_reference_fires() {
        let mut m = clean_model();
        m.objective.push((99, 1.0));
        assert!(analyze(&m).has_rule(RuleId::DanglingVariable));
    }

    // -- EmptyRow ------------------------------------------------------------

    #[test]
    fn empty_infeasible_row_fires() {
        let mut m = clean_model();
        m.row("empty", vec![], RowSense::Ge, 2.0);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::EmptyRow));
        let f = r
            .findings()
            .iter()
            .find(|f| f.rule == RuleId::EmptyRow)
            .unwrap();
        assert!(f.message.contains("trivially infeasible"), "{}", f.message);
        assert_eq!(f.severity, Severity::Warning);
    }

    #[test]
    fn all_zero_row_fires_as_vacuous() {
        let mut m = clean_model();
        m.row("zeros", vec![(0, 0.0), (1, 0.0)], RowSense::Le, 1.0);
        let r = analyze(&m);
        let f = r
            .findings()
            .iter()
            .find(|f| f.rule == RuleId::EmptyRow)
            .unwrap();
        assert!(f.message.contains("vacuously true"), "{}", f.message);
    }

    // -- UnusedVariable ------------------------------------------------------

    #[test]
    fn unused_variable_fires() {
        let mut m = clean_model();
        m.var("ghost", 0.0, 1.0, true);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::UnusedVariable));
        assert!(!r.has_errors());
    }

    #[test]
    fn fixed_variable_is_not_flagged_unused() {
        let mut m = clean_model();
        m.var("pinned", 0.0, 0.0, true); // Algorithm-1 style freeze
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::UnusedVariable), "{r}");
    }

    #[test]
    fn objective_only_variable_is_used() {
        let mut m = clean_model();
        let z = m.var("z", 0.0, 5.0, false);
        m.objective.push((z, 1.0));
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::UnusedVariable), "{r}");
    }

    // -- DuplicateRow --------------------------------------------------------

    #[test]
    fn scaled_duplicate_fires() {
        let mut m = clean_model();
        m.row("pick2", vec![(0, 2.0), (1, 2.0)], RowSense::Ge, 2.0);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::DuplicateRow), "{r}");
    }

    #[test]
    fn different_rows_are_not_duplicates() {
        let mut m = clean_model();
        m.row("other", vec![(0, 1.0), (1, -1.0)], RowSense::Le, 0.0);
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::DuplicateRow), "{r}");
    }

    // -- DominatedRow --------------------------------------------------------

    #[test]
    fn weaker_same_lhs_row_is_dominated() {
        let mut m = clean_model();
        // pick >= 1 (from clean_model) dominates pick >= 0.5... rows must
        // share the normalized LHS: x + y >= 0.5 is weaker than x + y >= 1.
        m.row("weaker", vec![(0, 1.0), (1, 1.0)], RowSense::Ge, 0.5);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::DominatedRow), "{r}");
    }

    #[test]
    fn dominance_found_regardless_of_order() {
        let mut m = clean_model();
        // Tighter row arrives second; the *first* row should be flagged.
        m.row("tighter", vec![(0, 1.0), (1, 1.0)], RowSense::Ge, 2.0);
        let r = analyze(&m);
        let f = r
            .findings()
            .iter()
            .find(|f| f.rule == RuleId::DominatedRow)
            .expect("dominated row finding");
        assert!(matches!(&f.span, Span::Row { index: 0, .. }), "{f}");
    }

    #[test]
    fn conflicting_equalities_fire_infeasible() {
        let mut m = clean_model();
        m.row("eq1", vec![(0, 1.0), (1, 1.0)], RowSense::Eq, 1.0);
        m.row("eq2", vec![(0, 2.0), (1, 2.0)], RowSense::Eq, 4.0);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::BoundInfeasible), "{r}");
    }

    // -- BoundInfeasible (propagation) ---------------------------------------

    #[test]
    fn propagation_infeasibility_is_warning_not_error() {
        let mut m = clean_model();
        m.rows[0].rhs = 3.0; // two binaries cannot sum to 3
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::BoundInfeasible));
        assert!(!r.has_errors(), "infeasible is a legal model state: {r}");
    }

    #[test]
    fn feasible_tight_model_has_no_infeasibility_finding() {
        let mut m = clean_model();
        m.rows[0].rhs = 2.0; // exactly both binaries: feasible
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::BoundInfeasible), "{r}");
    }

    // -- RedundantRow --------------------------------------------------------

    #[test]
    fn always_satisfied_row_is_info() {
        let mut m = clean_model();
        m.row("slack", vec![(0, 1.0), (1, 1.0)], RowSense::Le, 10.0);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::RedundantRow));
        assert_eq!(r.info_count(), 1);
        assert!(!r.has_errors());
    }

    // -- Conditioning --------------------------------------------------------

    #[test]
    fn big_m_row_fires_conditioning() {
        let mut m = clean_model();
        m.row("bigM", vec![(0, 1.0), (1, 1e8)], RowSense::Le, 1e8);
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::Conditioning), "{r}");
    }

    #[test]
    fn moderate_coefficients_do_not_fire_conditioning() {
        let mut m = clean_model();
        m.row("ok", vec![(0, 1.0), (1, 1000.0)], RowSense::Le, 500.0);
        let r = analyze(&m);
        assert!(!r.has_rule(RuleId::Conditioning), "{r}");
    }

    // -- interaction ---------------------------------------------------------

    #[test]
    fn structural_errors_suppress_propagation() {
        let mut m = clean_model();
        m.rows[0].terms.push((42, 1.0)); // dangling
        m.rows[0].rhs = 100.0; // would otherwise be bound-infeasible
        let r = analyze(&m);
        assert!(r.has_rule(RuleId::DanglingVariable));
        assert!(!r.has_rule(RuleId::BoundInfeasible));
    }
}
