//! Shadow synchronization primitives: checker-instrumented analogues of
//! `std::sync` with the same surface `hi-exec`'s facade exposes.
//!
//! Each object carries a deterministic id; every visible operation hands
//! control to the scheduler (a *schedule point*) and updates the shadow
//! state — lock ownership, vector clocks, lock-order edges — under the
//! checker's monitor. The protected data itself lives in an ordinary
//! `std::sync::Mutex`, which is uncontended by construction because the
//! shadow protocol already serializes access.
//!
//! Extras over the real facade: [`Condvar::wait`] (a bare, predicate-less
//! wait, so mutant models can demonstrate why `wait_while` is required),
//! [`Data`] (a plain-data cell whose accesses are race-checked), and
//! `named` constructors that make reports readable.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

use crate::runtime::{self, alloc_uid, cur};

/// A shadow mutex. Lock acquisition is a schedule point; ownership,
/// happens-before transfer and lock-order edges are tracked by the
/// checker.
pub struct Mutex<T> {
    uid: u64,
    name: Option<String>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// An anonymous mutex (reported as `lock#<uid>`).
    pub fn new(value: T) -> Self {
        Self {
            uid: alloc_uid(),
            name: None,
            data: StdMutex::new(value),
        }
    }

    /// A named mutex; the name appears in violations and lock usage.
    pub fn named(value: T, name: &str) -> Self {
        Self {
            uid: alloc_uid(),
            name: Some(name.to_owned()),
            data: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking (in model time) until it is free.
    /// Unlike `std`, poisoning is transparent: the facade recovers the
    /// inner value, matching `hi-exec`'s panic-tolerant usage.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, _) = cur();
        runtime::op_lock(&exec, self.uid, &self.name);
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("uid", &self.uid).finish()
    }
}

/// RAII guard for a [`Mutex`]; releasing it is a schedule point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the inner lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the inner lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real mutex first, then the shadow ownership; in
        // between, no other thread can reach the data because the shadow
        // protocol still names us as owner. A guard consumed by
        // `Condvar::wait` has `inner == None` and releases nothing here —
        // the park operation transferred ownership atomically.
        if self.inner.take().is_some() {
            let (exec, _) = cur();
            runtime::op_unlock(&exec, self.lock.uid, &self.lock.name);
        }
    }
}

impl<T> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexGuard")
            .field("uid", &self.lock.uid)
            .finish()
    }
}

/// A shadow condition variable.
///
/// The checker models notifications exactly as `std` documents them: a
/// notify with no parked waiter is lost, `notify_one` wakes the earliest
/// parked waiter, and (optionally) spurious wakeups may occur. Lost
/// wakeups — a parked waiter with no runnable thread left to notify it —
/// are reported as violations.
#[derive(Debug)]
pub struct Condvar {
    uid: u64,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Self { uid: alloc_uid() }
    }

    /// Parks until notified (or spuriously woken, when the checker's
    /// [`Config`](crate::Config) explores those). The real facade does
    /// not expose this — `hi-exec` must use [`Condvar::wait_while`] — but
    /// mutant models use it to demonstrate why bare waits are bugs.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        // Drop the real inner lock, then let the park operation release
        // the shadow ownership and park in one atomic step — the window
        // where a notifier could slip between unlock and park is exactly
        // what the operation models.
        guard.inner = None;
        drop(guard);
        let (exec, _) = cur();
        runtime::op_cv_park(&exec, self.uid, lock.uid, &lock.name);
        lock.lock()
    }

    /// Parks while `condition` holds, rechecking after every wakeup —
    /// the spurious-wakeup-safe wait the `hi-exec` facade standardizes
    /// on.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes the earliest-parked waiter, if any.
    pub fn notify_one(&self) {
        let (exec, _) = cur();
        runtime::op_notify(&exec, self.uid, false);
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        let (exec, _) = cur();
        runtime::op_notify(&exec, self.uid, true);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// A shadow `AtomicBool`. Accesses are schedule points; the `Ordering`
/// governs happens-before transfer exactly as on hardware: `Release`
/// stores publish the writer's history, `Acquire` loads adopt it,
/// `Relaxed` transfers nothing (which is how too-weak orderings surface
/// as data races on the [`Data`] the atomic was meant to publish).
#[derive(Debug)]
pub struct AtomicBool {
    uid: u64,
    init: u64,
}

impl AtomicBool {
    /// A new flag with the given initial value.
    pub fn new(value: bool) -> Self {
        Self {
            uid: alloc_uid(),
            init: u64::from(value),
        }
    }

    /// Loads the flag.
    pub fn load(&self, ordering: Ordering) -> bool {
        let (exec, _) = cur();
        runtime::op_atomic_load(&exec, self.uid, self.init, ordering) != 0
    }

    /// Stores the flag.
    pub fn store(&self, value: bool, ordering: Ordering) {
        let (exec, _) = cur();
        runtime::op_atomic_store(&exec, self.uid, self.init, u64::from(value), ordering);
    }

    /// Stores and returns the previous value.
    pub fn swap(&self, value: bool, ordering: Ordering) -> bool {
        let (exec, _) = cur();
        runtime::op_atomic_rmw(&exec, self.uid, self.init, ordering, |_| u64::from(value)) != 0
    }
}

/// A shadow `AtomicU64`; see [`AtomicBool`] for the ordering semantics.
#[derive(Debug)]
pub struct AtomicU64 {
    uid: u64,
    init: u64,
}

impl AtomicU64 {
    /// A new counter with the given initial value.
    pub fn new(value: u64) -> Self {
        Self {
            uid: alloc_uid(),
            init: value,
        }
    }

    /// Loads the value.
    pub fn load(&self, ordering: Ordering) -> u64 {
        let (exec, _) = cur();
        runtime::op_atomic_load(&exec, self.uid, self.init, ordering)
    }

    /// Stores the value.
    pub fn store(&self, value: u64, ordering: Ordering) {
        let (exec, _) = cur();
        runtime::op_atomic_store(&exec, self.uid, self.init, value, ordering);
    }

    /// Adds, wrapping, and returns the previous value.
    pub fn fetch_add(&self, delta: u64, ordering: Ordering) -> u64 {
        let (exec, _) = cur();
        runtime::op_atomic_rmw(&exec, self.uid, self.init, ordering, |old| {
            old.wrapping_add(delta)
        })
    }

    /// Subtracts, wrapping, and returns the previous value.
    pub fn fetch_sub(&self, delta: u64, ordering: Ordering) -> u64 {
        let (exec, _) = cur();
        runtime::op_atomic_rmw(&exec, self.uid, self.init, ordering, |old| {
            old.wrapping_sub(delta)
        })
    }
}

/// A plain-data cell with race-checked accesses — the checker's stand-in
/// for any non-atomic value two threads might share (a result slot, a
/// cache entry). Every access is checked against the happens-before
/// order; unordered access pairs (at least one a write) are
/// [`DataRace`](crate::ViolationKind::DataRace) violations.
pub struct Data<T> {
    uid: u64,
    name: Option<String>,
    value: StdMutex<T>,
}

impl<T> Data<T> {
    /// An anonymous cell (reported as `cell#<uid>`).
    pub fn new(value: T) -> Self {
        Self {
            uid: alloc_uid(),
            name: None,
            value: StdMutex::new(value),
        }
    }

    /// A named cell; the name appears in race reports.
    pub fn named(value: T, name: &str) -> Self {
        Self {
            uid: alloc_uid(),
            name: Some(name.to_owned()),
            value: StdMutex::new(value),
        }
    }

    /// Race-checked write.
    pub fn set(&self, value: T) {
        let (exec, _) = cur();
        runtime::op_cell_access(&exec, self.uid, &self.name, true, || {
            *self.value.lock().unwrap_or_else(PoisonError::into_inner) = value;
        });
    }
}

impl<T: Clone> Data<T> {
    /// Race-checked read.
    pub fn get(&self) -> T {
        let (exec, _) = cur();
        runtime::op_cell_access(&exec, self.uid, &self.name, false, || {
            self.value
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
        })
    }
}

impl<T> fmt::Debug for Data<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Data").field("uid", &self.uid).finish()
    }
}
