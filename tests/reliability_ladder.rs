//! The paper's §4.2 qualitative result (experiment E3 in DESIGN.md): as
//! `PDRmin` rises, the selected architecture climbs a ladder —
//! low-power star → full-power star → flooding mesh — with extra nodes
//! appearing only at the extreme-reliability end, and lifetime falling
//! monotonically along the way.

use hi_opt::channel::ChannelParams;
use hi_opt::des::SimDuration;
use hi_opt::net::TxPower;
use hi_opt::{explore, Problem, RouteChoice, SimEvaluator};

#[test]
fn architecture_ladder_follows_the_paper() {
    // One evaluator: the memoized measurements keep the sweep affordable
    // and make the floors directly comparable.
    let mut ev = SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(30.0),
        1,
        0x1ADDE2,
    );

    let optimum = |pdr_min: f64, ev: &mut SimEvaluator| {
        let problem = Problem::paper_default(pdr_min);
        explore(&problem, ev)
            .expect("explore")
            .best
            .unwrap_or_else(|| panic!("PDRmin {pdr_min} should be feasible"))
    };

    // Relaxed reliability: a star at reduced transmit power wins.
    let (low, low_eval) = optimum(0.60, &mut ev);
    assert_eq!(low.routing, RouteChoice::Star, "low floor: {low}");
    assert!(
        low.tx_power != TxPower::ZeroDbm,
        "low floor should not need full power: {low}"
    );

    // Mid reliability: still a star, but at 0 dBm.
    let (mid, mid_eval) = optimum(0.85, &mut ev);
    assert_eq!(mid.routing, RouteChoice::Star, "mid floor: {mid}");
    assert_eq!(mid.tx_power, TxPower::ZeroDbm, "mid floor: {mid}");

    // High reliability: the star cannot deliver; flooding mesh takes over.
    let (high, high_eval) = optimum(0.995, &mut ev);
    assert_eq!(high.routing, RouteChoice::Mesh, "high floor: {high}");

    // Lifetime is the price of reliability (Fig. 3's downward arrows).
    assert!(
        low_eval.nlt_days > mid_eval.nlt_days,
        "lifetime must drop with the power bump: {} vs {}",
        low_eval.nlt_days,
        mid_eval.nlt_days
    );
    assert!(
        mid_eval.nlt_days > high_eval.nlt_days,
        "mesh must cost lifetime: {} vs {}",
        mid_eval.nlt_days,
        high_eval.nlt_days
    );
    // And measured reliability climbs.
    assert!(low_eval.pdr >= 0.60);
    assert!(mid_eval.pdr >= 0.85);
    assert!(high_eval.pdr >= 0.995);
}

#[test]
fn extreme_reliability_recruits_extra_nodes() {
    // The paper: "for 100% reliability a fifth node is added to the mesh".
    // On the synthetic channel a 4-node mesh tops out just below a perfect
    // score over long horizons; at 100.0% the optimizer must either grow
    // the mesh or, if a lucky 4-node run hits 100%, still choose a mesh.
    let mut ev = SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(30.0),
        2,
        0xFEED,
    );
    let problem = Problem::paper_default(1.0);
    let out = explore(&problem, &mut ev).expect("explore");
    match out.best {
        Some((pt, eval)) => {
            assert_eq!(pt.routing, RouteChoice::Mesh, "{pt}");
            assert_eq!(eval.pdr, 1.0);
        }
        None => {
            // Acceptable on an unlucky channel draw: the paper's 100%
            // bar is razor-thin. The search must at least have examined
            // the mesh levels before giving up.
            assert!(out.simulations > 100, "gave up too early");
        }
    }
}
