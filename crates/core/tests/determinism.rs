//! Cross-thread determinism contract for the parallel search engines.
//!
//! The `hi-exec` integration promises that for any thread count the
//! engines produce *bit-identical* results and the same unique-simulation
//! accounting. These tests run the real discrete-event simulator (short
//! protocol) through every parallel entry point at 1, 2 and 8 threads and
//! compare outcomes field by field.

use hi_core::{
    exhaustive_search, exhaustive_search_par, explore_par, explore_tradeoff_par,
    simulated_annealing_restarts, DesignPoint, Evaluation, Evaluator, ExecContext,
    ExhaustiveOutcome, ExploreOptions, Problem, SaParams, SimProtocol,
};
use hi_des::SimDuration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn protocol() -> SimProtocol {
    SimProtocol::new(SimDuration::from_secs(2.0), 1, 20_260_806)
}

fn assert_same_best(a: &Option<(DesignPoint, Evaluation)>, b: &Option<(DesignPoint, Evaluation)>) {
    match (a, b) {
        (None, None) => {}
        (Some((pa, ea)), Some((pb, eb))) => {
            assert_eq!(pa, pb, "chosen optimum differs");
            assert_eq!(ea, eb, "optimum's evaluation differs");
        }
        _ => panic!("feasibility verdict differs: {a:?} vs {b:?}"),
    }
}

#[test]
fn exhaustive_search_is_bit_identical_across_thread_counts() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| -> ExhaustiveOutcome {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        exhaustive_search_par(&problem, &evaluator, &exec)
    };
    let baseline = run(1);
    assert!(baseline.best.is_some(), "70% floor must be feasible");
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(
            baseline.evaluations, outcome.evaluations,
            "{threads} threads evaluated a different number of points"
        );
        assert_eq!(
            baseline.simulations, outcome.simulations,
            "{threads} threads changed the unique-simulation count"
        );
    }
}

#[test]
fn parallel_exhaustive_matches_the_sequential_engine() {
    let problem = Problem::paper_default(0.7);
    let mut sequential_eval = protocol().evaluator();
    let sequential = exhaustive_search(&problem, &mut sequential_eval);

    let exec = ExecContext::new(4);
    let evaluator = protocol().shared_evaluator();
    let parallel = exhaustive_search_par(&problem, &evaluator, &exec);

    assert_same_best(&sequential.best, &parallel.best);
    assert_eq!(sequential.evaluations, parallel.evaluations);
    assert_eq!(sequential.simulations, parallel.simulations);
}

#[test]
fn algorithm1_is_bit_identical_across_thread_counts() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
            .expect("exploration succeeds")
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(baseline.stop_reason, outcome.stop_reason);
        assert_eq!(baseline.iterations, outcome.iterations);
        assert_eq!(
            baseline.simulations, outcome.simulations,
            "{threads} threads changed Algorithm 1's simulation count"
        );
    }
}

#[test]
fn sa_restarts_are_bit_identical_across_thread_counts() {
    let problem = Problem::paper_default(0.7);
    let params = SaParams {
        steps: 40,
        ..SaParams::default()
    };
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        simulated_annealing_restarts(&problem, &evaluator, params, 7, 4, &exec)
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(baseline.steps, outcome.steps);
        assert_eq!(
            baseline.simulations, outcome.simulations,
            "{threads} threads changed the restart batch's simulation count"
        );
    }
}

#[test]
fn tradeoff_sweep_is_bit_identical_across_thread_counts() {
    let template = Problem::paper_default(0.5);
    let floors = [0.5, 0.7];
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        explore_tradeoff_par(&template, &floors, &evaluator, &exec).expect("sweep succeeds")
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let sweep = run(*threads);
        assert_eq!(baseline.len(), sweep.len());
        for (b, s) in baseline.iter().zip(&sweep) {
            assert_eq!(b.pdr_min, s.pdr_min);
            assert_same_best(&b.best, &s.best);
            assert_eq!(b.new_simulations, s.new_simulations);
            assert_eq!(b.stop_reason, s.stop_reason);
        }
    }
}

#[test]
fn engines_share_one_cache_so_a_second_engine_is_free() {
    // Exhaustive search visits every feasible point, so Algorithm 1 run
    // against the same shared evaluator afterwards needs zero new
    // simulations — the cross-engine cache-sharing the subsystem exists
    // for.
    let problem = Problem::paper_default(0.7);
    let exec = ExecContext::new(2);
    let evaluator = protocol().shared_evaluator();

    let sweep = exhaustive_search_par(&problem, &evaluator, &exec);
    assert!(sweep.simulations > 0);

    let explored = explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
        .expect("exploration succeeds");
    assert_eq!(
        explored.simulations, 0,
        "Algorithm 1 re-simulated points the sweep already covered"
    );
    assert_same_best(&sweep.best, &explored.best);
}

#[test]
fn cache_hit_accounting_is_thread_count_invariant() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        let _ = exhaustive_search_par(&problem, &evaluator, &exec);
        let _ = exhaustive_search_par(&problem, &evaluator, &exec);
        (
            evaluator.unique_evaluations(),
            evaluator.cache_hits(),
            evaluator.cache_len(),
        )
    };
    let baseline = run(1);
    assert!(baseline.1 > 0, "second pass must hit the cache");
    for threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            baseline,
            run(*threads),
            "{threads} threads changed accounting"
        );
    }
}

#[test]
fn evaluator_panic_reaches_the_caller_through_the_pool() {
    // A poisoned point must abort the batch with the worker's own panic
    // message, not hang or return partial results silently.
    let pool = hi_exec::ThreadPool::new(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.par_map((0..8u32).collect::<Vec<_>>(), |x| {
            assert!(x != 5, "simulator diverged on point {x}");
            x
        })
    }));
    let payload = result.expect_err("panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(message.contains("simulator diverged on point 5"));
}
