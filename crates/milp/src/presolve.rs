//! Presolve: constraint-driven bound tightening.
//!
//! Classic activity-based propagation: for each row, the minimum/maximum
//! achievable activity over the current variable bounds either proves the
//! row infeasible, proves it redundant, or tightens the bounds of its
//! variables. Integer variables get their bounds rounded inward. The
//! procedure iterates to a fixpoint (bounded pass count).
//!
//! `branch::solve` runs this automatically before search — on binary
//! models with one-hot rows and implications it fixes large portions of
//! the tree for free.

use crate::{Model, Sense, SolveError, VarId, VarType, TOL};

/// Outcome of a presolve pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresolveStatus {
    /// Bounds were (possibly) tightened; the model remains feasible as far
    /// as propagation can tell.
    Reduced,
    /// Propagation proved the feasible region empty.
    Infeasible,
}

/// Statistics from a presolve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Number of individual bound changes applied.
    pub tightened_bounds: u32,
    /// Variables whose bounds collapsed to a point (fixed).
    pub fixed_vars: u32,
    /// Propagation sweeps executed.
    pub passes: u32,
}

/// Tightens `model`'s variable bounds in place by constraint propagation.
///
/// Returns the status together with statistics. The transformation is
/// exact: it never cuts off any feasible point.
///
/// # Errors
///
/// Returns [`SolveError::NonFiniteCoefficient`] for malformed models.
///
/// # Examples
///
/// ```
/// use hi_milp::{presolve, Model, Sense};
///
/// # fn main() -> Result<(), hi_milp::SolveError> {
/// let mut m = Model::new();
/// let a = m.add_binary("a");
/// let b = m.add_binary("b");
/// m.add_constraint(a + b, Sense::Ge, 2.0); // forces a = b = 1
/// m.minimize(a + b);
/// let (status, stats) = presolve::presolve(&mut m)?;
/// assert_eq!(status, presolve::PresolveStatus::Reduced);
/// assert_eq!(stats.fixed_vars, 2);
/// assert_eq!(m.var(a).lower_bound(), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn presolve(model: &mut Model) -> Result<(PresolveStatus, PresolveStats), SolveError> {
    let mut stats = PresolveStats::default();
    const MAX_PASSES: u32 = 16;

    for pass in 0..MAX_PASSES {
        stats.passes = pass + 1;
        let mut changed = false;
        for ci in 0..model.constraints.len() {
            // Treat Eq as Le + Ge.
            let senses: &[Sense] = match model.constraints[ci].sense {
                Sense::Eq => &[Sense::Le, Sense::Ge],
                Sense::Le => &[Sense::Le],
                Sense::Ge => &[Sense::Ge],
            };
            for &sense in senses {
                match propagate_row(model, ci, sense, &mut stats) {
                    Ok(c) => changed |= c,
                    Err(Infeasible) => {
                        return Ok((PresolveStatus::Infeasible, stats));
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    stats.fixed_vars = model
        .vars
        .iter()
        .filter(|v| (v.ub - v.lb).abs() <= TOL && v.lb.is_finite())
        .count() as u32;
    Ok((PresolveStatus::Reduced, stats))
}

struct Infeasible;

/// Propagates one row interpreted with the given sense (`Le` means
/// `expr <= rhs`, `Ge` means `expr >= rhs`).
fn propagate_row(
    model: &mut Model,
    ci: usize,
    sense: Sense,
    stats: &mut PresolveStats,
) -> Result<bool, Infeasible> {
    let terms: Vec<(VarId, f64)> = model.constraints[ci].expr.iter().collect();
    let rhs = model.constraints[ci].rhs;

    // Row activity bounds over current variable bounds.
    let mut min_act = 0.0f64;
    let mut max_act = 0.0f64;
    for &(v, c) in &terms {
        let (lb, ub) = (model.vars[v.0].lb, model.vars[v.0].ub);
        if c >= 0.0 {
            min_act += c * lb;
            max_act += c * ub;
        } else {
            min_act += c * ub;
            max_act += c * lb;
        }
    }

    match sense {
        Sense::Le => {
            if min_act > rhs + 1e-7 {
                return Err(Infeasible);
            }
            if max_act <= rhs + TOL {
                return Ok(false); // redundant for propagation purposes
            }
        }
        Sense::Ge => {
            if max_act < rhs - 1e-7 {
                return Err(Infeasible);
            }
            if min_act >= rhs - TOL {
                return Ok(false);
            }
        }
        Sense::Eq => unreachable!("normalized to Le/Ge"),
    }

    // Tighten each variable against the residual activity.
    let mut changed = false;
    for &(v, c) in &terms {
        if c.abs() < 1e-12 || min_act.is_infinite() {
            continue;
        }
        let (lb, ub) = (model.vars[v.0].lb, model.vars[v.0].ub);
        let own_min = if c >= 0.0 { c * lb } else { c * ub };
        let residual_min = min_act - own_min;
        if !residual_min.is_finite() {
            continue;
        }
        // For Le rows:  c*x <= rhs - residual_min.
        // For Ge rows:  c*x >= rhs - residual_max ... handled by symmetry
        // below via negation.
        let (bound, upper) = match sense {
            Sense::Le => ((rhs - residual_min) / c, c > 0.0),
            Sense::Ge => {
                let own_max = if c >= 0.0 { c * ub } else { c * lb };
                let residual_max = max_act - own_max;
                if !residual_max.is_finite() {
                    continue;
                }
                ((rhs - residual_max) / c, c < 0.0)
            }
            Sense::Eq => unreachable!(),
        };
        let integral = matches!(model.vars[v.0].ty, VarType::Integer | VarType::Binary);
        if upper {
            let mut new_ub = bound;
            if integral {
                new_ub = (new_ub + TOL).floor();
            }
            if new_ub < ub - 1e-9 {
                if new_ub < lb - TOL {
                    return Err(Infeasible);
                }
                model.vars[v.0].ub = new_ub;
                stats.tightened_bounds += 1;
                changed = true;
            }
        } else {
            let mut new_lb = bound;
            if integral {
                new_lb = (new_lb - TOL).ceil();
            }
            if new_lb > lb + 1e-9 {
                if new_lb > ub + TOL {
                    return Err(Infeasible);
                }
                model.vars[v.0].lb = new_lb;
                stats.tightened_bounds += 1;
                changed = true;
            }
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn forcing_row_fixes_binaries() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint(a + b, Sense::Ge, 2.0);
        let (status, stats) = presolve(&mut m).unwrap();
        assert_eq!(status, PresolveStatus::Reduced);
        assert_eq!(m.var(a).lower_bound(), 1.0);
        assert_eq!(m.var(b).lower_bound(), 1.0);
        assert_eq!(stats.fixed_vars, 2);
    }

    #[test]
    fn zero_sum_fixes_binaries_down() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint(a + b, Sense::Le, 0.0);
        presolve(&mut m).unwrap();
        assert_eq!(m.var(a).upper_bound(), 0.0);
        assert_eq!(m.var(b).upper_bound(), 0.0);
    }

    #[test]
    fn equality_propagates_both_ways() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint(a + b, Sense::Eq, 2.0);
        presolve(&mut m).unwrap();
        assert_eq!(m.var(a).lower_bound(), 1.0);
        assert_eq!(m.var(b).lower_bound(), 1.0);
    }

    #[test]
    fn infeasibility_detected() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_constraint(a * 1.0, Sense::Ge, 2.0);
        let (status, _) = presolve(&mut m).unwrap();
        assert_eq!(status, PresolveStatus::Infeasible);
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint(x * 2.0, Sense::Le, 7.0); // x <= 3.5 -> 3
        presolve(&mut m).unwrap();
        assert_eq!(m.var(x).upper_bound(), 3.0);
    }

    #[test]
    fn continuous_bounds_not_rounded() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        m.add_constraint(x * 2.0, Sense::Le, 7.0);
        presolve(&mut m).unwrap();
        assert!((m.var(x).upper_bound() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn chained_implication_propagates_to_fixpoint() {
        // a = 1 forced; b >= a; c >= b  => everything fixed to 1.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(a * 1.0, Sense::Ge, 1.0);
        m.add_constraint(a - b, Sense::Le, 0.0);
        m.add_constraint(b - c, Sense::Le, 0.0);
        let (_, stats) = presolve(&mut m).unwrap();
        assert_eq!(m.var(c).lower_bound(), 1.0);
        assert!(stats.passes >= 2, "fixpoint needs multiple sweeps");
    }

    #[test]
    fn never_cuts_feasible_points() {
        // Randomized check: presolve bounds always contain every feasible
        // binary assignment found by brute force.
        let mut state = 0xABCDEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let nvars = 2 + (rnd() % 4) as usize;
            let mut m = Model::new();
            let vars: Vec<_> = (0..nvars).map(|i| m.add_binary(&format!("b{i}"))).collect();
            for _ in 0..(1 + rnd() % 3) {
                let mut e = crate::LinExpr::new();
                for &v in &vars {
                    e.add_term(v, ((rnd() % 7) as f64) - 3.0);
                }
                let sense = match rnd() % 3 {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                m.add_constraint(e, sense, ((rnd() % 9) as f64) - 4.0);
            }
            let mut reduced = m.clone();
            let (status, _) = presolve(&mut reduced).unwrap();
            for mask in 0u64..(1 << nvars) {
                let x: Vec<f64> = (0..nvars).map(|i| ((mask >> i) & 1) as f64).collect();
                if m.is_feasible(&x, 1e-9) {
                    assert_ne!(
                        status,
                        PresolveStatus::Infeasible,
                        "presolve declared a feasible model infeasible"
                    );
                    for (i, &v) in vars.iter().enumerate() {
                        assert!(
                            x[i] >= reduced.var(v).lower_bound() - 1e-9
                                && x[i] <= reduced.var(v).upper_bound() + 1e-9,
                            "presolve cut off a feasible point"
                        );
                    }
                }
            }
        }
    }
}
