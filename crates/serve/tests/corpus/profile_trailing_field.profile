profile a
pdrmin 0.9 strict
