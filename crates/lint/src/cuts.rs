//! Cross-iteration cut accounting for Algorithm-1 style loops.
//!
//! The paper's Algorithm 1 repeatedly adds *no-good cuts* (excluding an
//! enumerated configuration) and *power cuts* (`P̄ > P̄*`) to one long-lived
//! model. Two bug classes hide there: re-adding a cut that is already
//! present (the loop stops making progress but still burns solver time),
//! and adding a cut weaker than an existing one (dead weight in every
//! subsequent solve). [`CutTracker`] observes each cut as it is added and
//! reports both via [`RuleId::RedundantCut`].

use std::collections::HashMap;

use crate::model::{normalize, LintRow, NormRow, TOL};
use crate::report::{Finding, RuleId, Span};

/// Tracks cuts added across solver iterations and flags redundant ones.
///
/// # Examples
///
/// ```
/// use hi_lint::{CutTracker, LintRow, RowSense};
///
/// let mut tracker = CutTracker::new();
/// let cut = LintRow {
///     name: "power-cut-0".into(),
///     terms: vec![(0, 1.0)],
///     sense: RowSense::Ge,
///     rhs: 2.0,
/// };
/// assert!(tracker.observe(&cut).is_none()); // first time: fine
/// assert!(tracker.observe(&cut).is_some()); // identical again: redundant
/// ```
#[derive(Debug, Clone, Default)]
pub struct CutTracker {
    /// Fingerprint -> (name of the strongest cut seen, its Le-normalized
    /// rhs). Smaller normalized rhs = tighter, since fingerprints are
    /// normalized to `<=` form.
    seen: HashMap<NormRow, (String, f64)>,
    observed: usize,
}

impl CutTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cuts observed so far (redundant or not).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Records `cut` and returns a [`RuleId::RedundantCut`] finding if it
    /// is no tighter than a cut already tracked.
    ///
    /// Cuts that fail to normalize (empty/non-finite) return `None` here;
    /// the model-level rules report those.
    pub fn observe(&mut self, cut: &LintRow) -> Option<Finding> {
        self.observed += 1;
        let norm = normalize(cut)?;
        let span = Span::Row {
            index: self.observed - 1,
            name: cut.name.clone(),
        };
        match self.seen.get_mut(&norm.key) {
            None => {
                self.seen.insert(norm.key, (cut.name.clone(), norm.rhs));
                None
            }
            Some((prev_name, prev_rhs)) => {
                if norm.rhs >= *prev_rhs - TOL {
                    // Not strictly tighter than what we already have.
                    let how = if (norm.rhs - *prev_rhs).abs() <= TOL {
                        "identical to"
                    } else {
                        "weaker than"
                    };
                    Some(Finding::new(
                        RuleId::RedundantCut,
                        span,
                        format!("{how} the earlier cut `{prev_name}`"),
                    ))
                } else {
                    // Strictly tighter: it supersedes the stored cut.
                    *prev_name = cut.name.clone();
                    *prev_rhs = norm.rhs;
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RowSense;

    fn cut(name: &str, terms: Vec<(usize, f64)>, sense: RowSense, rhs: f64) -> LintRow {
        LintRow {
            name: name.into(),
            terms,
            sense,
            rhs,
        }
    }

    #[test]
    fn distinct_no_good_cuts_are_clean() {
        // Cuts excluding different binary assignments have different terms.
        let mut t = CutTracker::new();
        let a = cut("ng0", vec![(0, 1.0), (1, -1.0)], RowSense::Ge, 0.0);
        let b = cut("ng1", vec![(0, -1.0), (1, 1.0)], RowSense::Ge, 0.0);
        assert!(t.observe(&a).is_none());
        assert!(t.observe(&b).is_none());
        assert_eq!(t.observed(), 2);
    }

    #[test]
    fn repeated_cut_is_redundant() {
        let mut t = CutTracker::new();
        let a = cut("ng0", vec![(0, 1.0), (1, 1.0)], RowSense::Ge, 1.0);
        assert!(t.observe(&a).is_none());
        let f = t.observe(&a).expect("second add flagged");
        assert_eq!(f.rule, RuleId::RedundantCut);
        assert!(f.message.contains("identical"), "{}", f.message);
    }

    #[test]
    fn tightened_power_cut_is_progress() {
        // Rising power threshold = strictly tighter Ge cut each round.
        let mut t = CutTracker::new();
        for (i, p) in [1.0, 2.0, 3.5].into_iter().enumerate() {
            let c = cut(&format!("power-{i}"), vec![(0, 1.0)], RowSense::Ge, p);
            assert!(t.observe(&c).is_none(), "iteration {i} flagged");
        }
    }

    #[test]
    fn loosened_power_cut_is_redundant() {
        let mut t = CutTracker::new();
        let tight = cut("power-0", vec![(0, 1.0)], RowSense::Ge, 5.0);
        let loose = cut("power-1", vec![(0, 1.0)], RowSense::Ge, 2.0);
        assert!(t.observe(&tight).is_none());
        let f = t.observe(&loose).expect("looser cut flagged");
        assert!(f.message.contains("weaker"), "{}", f.message);
        assert!(f.message.contains("power-0"), "{}", f.message);
    }

    #[test]
    fn scaling_does_not_hide_redundancy() {
        let mut t = CutTracker::new();
        let a = cut("c0", vec![(0, 1.0), (1, 1.0)], RowSense::Ge, 1.0);
        let b = cut("c1", vec![(0, 3.0), (1, 3.0)], RowSense::Ge, 3.0);
        assert!(t.observe(&a).is_none());
        assert!(t.observe(&b).is_some());
    }

    #[test]
    fn unnormalizable_cut_is_skipped() {
        let mut t = CutTracker::new();
        let empty = cut("e", vec![], RowSense::Ge, 1.0);
        assert!(t.observe(&empty).is_none());
        assert!(t.observe(&empty).is_none());
        assert_eq!(t.observed(), 2);
    }
}
