//! Experiment F3: regenerate the paper's Figure 3 — the (network
//! lifetime, packet delivery ratio) scatter of every feasible
//! configuration, plus the optimal configuration per `PDRmin` floor (the
//! figure's arrows).
//!
//! Output is tab-separated: one row per configuration, then a summary
//! block. Pipe the scatter into any plotting tool.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin fig3              # fast protocol
//! cargo run --release -p hi-bench --bin fig3 -- --paper   # 600 s x 3
//! ```

use hi_bench::{optima_per_floor, parallel_sweep, pareto_front, ExpOptions};
use hi_core::DesignSpace;
use std::time::Instant;

fn main() {
    let opts = ExpOptions::from_args();
    let space = DesignSpace::paper_default();
    let points = space.points();
    eprintln!(
        "sweeping {} feasible configurations ({}s x {} runs, {} threads) ...",
        points.len(),
        opts.t_sim.as_secs_f64(),
        opts.runs,
        opts.threads
    );
    let t0 = Instant::now();
    let evals = parallel_sweep(&points, &opts);
    eprintln!("sweep finished in {:.1?}", t0.elapsed());

    println!("# Figure 3: PDR vs network lifetime, all feasible configurations");
    println!("nlt_days\tpdr_pct\tplacement\trouting\tmac\ttx_power\tnodes");
    let sweep: Vec<_> = points.into_iter().zip(evals).collect();
    for (pt, ev) in &sweep {
        println!(
            "{:.3}\t{:.2}\t{}\t{}\t{}\t{}\t{}",
            ev.nlt_days,
            ev.pdr * 100.0,
            pt.placement,
            pt.routing,
            pt.mac,
            pt.tx_power,
            pt.num_nodes()
        );
    }

    println!("\n# Optimal configuration per PDRmin (the figure's arrows)");
    println!("pdr_min_pct\tdesign\tpdr_pct\tnlt_days");
    let floors = [0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1.00];
    for (floor, best) in optima_per_floor(&sweep, &floors) {
        match best {
            Some((pt, ev)) => println!(
                "{:.0}\t{}\t{:.2}\t{:.2}",
                floor * 100.0,
                pt,
                ev.pdr * 100.0,
                ev.nlt_days
            ),
            None => println!("{:.0}\t(infeasible)\t-\t-", floor * 100.0),
        }
    }

    println!("\n# Reliability/lifetime Pareto front");
    println!("pdr_pct\tnlt_days\tdesign");
    for (pt, ev) in pareto_front(&sweep) {
        println!("{:.2}\t{:.2}\t{}", ev.pdr * 100.0, ev.nlt_days, pt);
    }

    // Envelope, for quick comparison with the paper's axes
    // (0-100% PDR; ~2 days to >1 month NLT).
    let min_nlt = sweep
        .iter()
        .map(|(_, e)| e.nlt_days)
        .fold(f64::INFINITY, f64::min);
    let max_nlt = sweep.iter().map(|(_, e)| e.nlt_days).fold(0.0f64, f64::max);
    let min_pdr = sweep.iter().map(|(_, e)| e.pdr).fold(1.0f64, f64::min);
    let max_pdr = sweep.iter().map(|(_, e)| e.pdr).fold(0.0f64, f64::max);
    println!("\n# Envelope");
    println!(
        "nlt: {:.1} .. {:.1} days   pdr: {:.1} .. {:.1} %",
        min_nlt,
        max_nlt,
        min_pdr * 100.0,
        max_pdr * 100.0
    );
}
