//! Performance evaluation of design points (Algorithm 1's `RunSim`).

use std::collections::HashMap;
use std::sync::Arc;

use hi_channel::ChannelParams;
use hi_des::SimDuration;
use hi_exec::{EvalCache, EvalError};
use hi_net::{simulate_averaged_budgeted, AppParams, SimError};

use crate::point::DesignPoint;

/// The simulated performance of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Network packet delivery ratio in `[0, 1]` (eq. 7).
    pub pdr: f64,
    /// Network lifetime in days (eq. 4).
    pub nlt_days: f64,
    /// Simulated power of the lifetime-limiting node, mW (`P̄sim`).
    pub power_mw: f64,
    /// Mean end-to-end packet latency across replications, ms. The DES
    /// has always measured this; it is surfaced here so the Pareto
    /// archive can trade it off against power and PDR.
    pub latency_ms: f64,
}

/// Anything that can measure a design point. Algorithm 1 and the baseline
/// searches consume evaluations through this trait, so tests and benches
/// can substitute deterministic oracles for the (expensive) simulator.
pub trait Evaluator {
    /// Measures (or recalls) the performance of `point`.
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation;

    /// Number of *unique* expensive evaluations performed so far — the
    /// simulation-count metric behind the paper's "87% fewer simulations".
    fn unique_evaluations(&self) -> u64;
}

/// A thread-safe, cheaply clonable point evaluator: the interface the
/// parallel engines fan out over worker threads.
///
/// Unlike [`Evaluator`], evaluation takes `&self` (workers share one
/// instance) and is fallible: a broken point — or a panicking simulation
/// — degrades to a typed [`EvalError`] for that slot instead of taking
/// down the whole batch. Implementations must be deterministic: the same
/// point must always produce the same `Result`, independent of thread
/// count, evaluation order, and which clone asked.
pub trait PointEvaluator: Clone + Send + Sync + 'static {
    /// Measures (or recalls) the performance of `point`.
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError>;

    /// Number of unique expensive evaluations performed so far (failed
    /// attempts count: they spent the compute budget too).
    fn unique_evaluations(&self) -> u64;

    /// Forgets the memoized result of `point`, if any, so the next
    /// request recomputes it; returns whether an entry was dropped.
    /// Deterministic evaluators recompute the same value bit for bit, so
    /// a drop is observable only in effort counters — which is exactly
    /// what chaos testing needs. The default (for evaluators without a
    /// cache) drops nothing.
    fn drop_cached(&self, _point: &DesignPoint) -> bool {
        false
    }
}

/// The full simulation protocol of an evaluator: channel, per-run
/// duration, replication count and master seed.
///
/// Every evaluator in the workspace — the CLI's, the experiment
/// binaries' and the parallel engines' — is built through this one type,
/// so `--tsim`, `--runs`, `--seed` and `--threads` semantics cannot
/// drift between entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimProtocol {
    /// Channel model parameters.
    pub channel: ChannelParams,
    /// Per-run simulated duration.
    pub t_sim: SimDuration,
    /// Replications averaged per evaluation.
    pub runs: u32,
    /// Master seed (combined with each point's fingerprint).
    pub seed: u64,
    /// Logical deadline: the DES-event budget of each *replication* (not
    /// cumulative across the `runs` replications of one evaluation).
    /// A replication dispatching more events than this fails the whole
    /// evaluation with [`hi_exec::ErrorKind::DeadlineExceeded`] — a pure
    /// function of `(config, seed, budget)`, never wall clock. `None`
    /// means unbudgeted.
    pub max_events: Option<u64>,
    /// Application-layer traffic parameters (`χapp`): baseline power,
    /// packet length and generation rate. Defaults to the paper's §4.1
    /// values; fleet user profiles override this to model per-user
    /// traffic mixes.
    pub app: AppParams,
}

impl SimProtocol {
    /// A protocol over the default channel.
    pub fn new(t_sim: SimDuration, runs: u32, seed: u64) -> Self {
        Self {
            channel: ChannelParams::default(),
            t_sim,
            runs,
            seed,
            max_events: None,
            app: AppParams::default(),
        }
    }

    /// The same protocol under a per-replication DES-event budget
    /// (`None` removes the budget).
    pub fn with_max_events(mut self, max_events: Option<u64>) -> Self {
        self.max_events = max_events;
        self
    }

    /// The same protocol under different application-layer traffic
    /// parameters.
    pub fn with_app(mut self, app: AppParams) -> Self {
        self.app = app;
        self
    }

    /// The paper's §4 protocol: `Tsim = 600 s`, 3 runs.
    pub fn paper(seed: u64) -> Self {
        Self::new(SimDuration::from_secs(600.0), 3, seed)
    }

    /// A fresh single-threaded memoizing evaluator under this protocol.
    pub fn evaluator(&self) -> SimEvaluator {
        SimEvaluator::new(self.channel, self.t_sim, self.runs, self.seed)
    }

    /// A fresh thread-safe evaluator with a (shareable) evaluation cache.
    pub fn shared_evaluator(&self) -> SharedSimEvaluator {
        SharedSimEvaluator::new(*self)
    }
}

/// The expensive part of an evaluation: `runs` averaged simulations of
/// one design point, seeded purely from `(protocol seed, point)` so the
/// result is independent of evaluation order, thread interleaving and
/// which engine asked first.
fn simulate_point(protocol: &SimProtocol, point: &DesignPoint) -> Evaluation {
    try_simulate_point(protocol, point)
        .unwrap_or_else(|e| panic!("evaluation of {point} failed: {e}"))
}

/// [`simulate_point`] with the protocol's logical deadline surfaced as a
/// typed error: a replication exceeding [`SimProtocol::max_events`] fails
/// the evaluation with [`hi_exec::ErrorKind::DeadlineExceeded`] (and an
/// `exec.deadline` trace tick) instead of panicking. Invalid lowerings
/// still panic — the design space guarantees valid configs, so that path
/// is an engine bug, not an input condition.
fn try_simulate_point(
    protocol: &SimProtocol,
    point: &DesignPoint,
) -> Result<Evaluation, EvalError> {
    let mut cfg = point.to_network_config();
    cfg.app = protocol.app;
    let fingerprint = point.fingerprint();
    let seed = protocol.seed ^ hi_des::rng::derive_seed(fingerprint >> 4, fingerprint & 0xF);
    let out = simulate_averaged_budgeted(
        &cfg,
        protocol.channel,
        protocol.t_sim,
        seed,
        protocol.runs,
        protocol.max_events,
    )
    .map_err(|e| match e {
        SimError::Config(c) => panic!("design points lower to valid configs: {c}"),
        deadline @ SimError::DeadlineExceeded { .. } => {
            hi_trace::counter(hi_trace::wellknown::EXEC_DEADLINES, 1);
            EvalError::deadline(format!("evaluation of {point}: {deadline}"))
        }
    })?;
    Ok(Evaluation {
        pdr: out.pdr,
        nlt_days: out.nlt_days,
        power_mw: out.max_power_mw,
        latency_ms: out.latency.mean_ms,
    })
}

/// The production evaluator: runs the discrete-event simulator (averaged
/// over `runs` seeds), memoizing results per design point.
#[derive(Debug)]
pub struct SimEvaluator {
    protocol: SimProtocol,
    cache: HashMap<DesignPoint, Evaluation>,
    unique: u64,
}

impl SimEvaluator {
    /// Creates an evaluator with the paper's protocol: each evaluation is
    /// `runs` simulations of `t_sim` averaged together.
    pub fn new(channel: ChannelParams, t_sim: SimDuration, runs: u32, base_seed: u64) -> Self {
        Self {
            protocol: SimProtocol {
                channel,
                t_sim,
                runs,
                seed: base_seed,
                max_events: None,
                app: AppParams::default(),
            },
            cache: HashMap::new(),
            unique: 0,
        }
    }

    /// The paper's §4 protocol: `Tsim = 600 s`, 3 runs.
    pub fn paper_protocol(channel: ChannelParams, base_seed: u64) -> Self {
        Self::new(channel, SimDuration::from_secs(600.0), 3, base_seed)
    }

    /// Number of cached evaluations.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

impl Evaluator for SimEvaluator {
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation {
        if let Some(e) = self.cache.get(point) {
            return *e;
        }
        let eval = simulate_point(&self.protocol, point);
        self.cache.insert(*point, eval);
        self.unique += 1;
        eval
    }

    fn unique_evaluations(&self) -> u64 {
        self.unique
    }
}

/// A thread-safe simulation evaluator whose memo cache is *shared*
/// between clones.
///
/// Clones are cheap (`Arc` bump) and hand the same [`EvalCache`] to every
/// worker thread and every engine in the process, so a point simulated by
/// the exhaustive sweep is a cache hit for Algorithm 1 and simulated
/// annealing. The cache's exactly-once contract keeps
/// [`unique_evaluations`](Evaluator::unique_evaluations) independent of
/// the thread count, and the per-point seed derivation (certified by
/// `sim_evaluator_is_order_independent`) keeps every `Evaluation`
/// bit-identical to the sequential evaluator's.
#[derive(Debug, Clone)]
pub struct SharedSimEvaluator {
    protocol: SimProtocol,
    cache: Arc<EvalCache<DesignPoint, Result<Evaluation, EvalError>>>,
}

impl SharedSimEvaluator {
    /// A fresh evaluator (and cache) under `protocol`.
    pub fn new(protocol: SimProtocol) -> Self {
        Self {
            protocol,
            cache: Arc::new(EvalCache::new()),
        }
    }

    /// Measures (or recalls) `point` through the shared cache. Takes
    /// `&self`, so workers can evaluate concurrently. Panics if the
    /// simulation fails; use [`try_eval_point`](Self::try_eval_point)
    /// on paths that must survive broken points.
    pub fn eval_point(&self, point: &DesignPoint) -> Evaluation {
        match self.try_eval_point(point) {
            Ok(eval) => eval,
            Err(e) => panic!("evaluation of {point} failed: {e}"),
        }
    }

    /// Measures (or recalls) `point`, degrading a panicking simulation to
    /// a typed [`EvalError`] (and a logical-deadline trip to a typed
    /// [`hi_exec::ErrorKind::DeadlineExceeded`] error). The failure is
    /// cached exactly once like a success, so the unique-evaluation count
    /// stays thread-invariant even when some points are broken.
    pub fn try_eval_point(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        self.cache.get_or_compute(*point, || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                try_simulate_point(&self.protocol, point)
            }))
            .unwrap_or_else(|payload| Err(EvalError::from_panic(payload.as_ref())));
            if result.is_err() {
                // A fresh compute whose memoized value is a failure: every
                // later lookup of this point is a hit on the cached error.
                hi_trace::counter(hi_trace::wellknown::EXEC_CACHE_PANIC_MEMO, 1);
            }
            result
        })
    }

    /// The protocol this evaluator runs.
    pub fn protocol(&self) -> &SimProtocol {
        &self.protocol
    }

    /// Seeds the shared cache with a previously simulated outcome —
    /// the import half of cache persistence. Seeded points answer later
    /// lookups as ordinary hits without counting a miss, so a restarted
    /// process reports `simulations 0` for work a previous process paid
    /// for. An existing entry wins; returns whether the seed landed.
    pub fn seed_eval(&self, point: DesignPoint, eval: Evaluation) -> bool {
        self.cache.seed(point, Ok(eval))
    }

    /// Every successfully settled `(point, evaluation)` pair, sorted by
    /// point fingerprint — the export half of cache persistence. Cached
    /// *errors* are deliberately excluded: failures are deterministic
    /// and cheap to rediscover, and persisting them would resurrect
    /// stale diagnostics across configuration changes.
    pub fn cached_ok(&self) -> Vec<(DesignPoint, Evaluation)> {
        let mut out: Vec<(DesignPoint, Evaluation)> = self
            .cache
            .snapshot()
            .into_iter()
            .filter_map(|(point, outcome)| outcome.ok().map(|eval| (point, eval)))
            .collect();
        out.sort_by_key(|(point, _)| point.fingerprint());
        out
    }

    /// Number of cached evaluations (shared across clones).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache lookups answered without simulating.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache lookups that had to simulate (equals
    /// [`unique_evaluations`](Self::unique_evaluations); named for
    /// symmetry with [`cache_hits`](Self::cache_hits) at fleet
    /// accounting sites).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Number of unique expensive evaluations performed (shared across
    /// clones; failed attempts count). Inherent so call sites never
    /// have to disambiguate between the [`Evaluator`] and
    /// [`PointEvaluator`] impls, which both delegate here.
    pub fn unique_evaluations(&self) -> u64 {
        self.cache.misses()
    }
}

impl Evaluator for SharedSimEvaluator {
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation {
        self.eval_point(point)
    }

    fn unique_evaluations(&self) -> u64 {
        SharedSimEvaluator::unique_evaluations(self)
    }
}

impl PointEvaluator for SharedSimEvaluator {
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        self.try_eval_point(point)
    }

    fn unique_evaluations(&self) -> u64 {
        SharedSimEvaluator::unique_evaluations(self)
    }

    fn drop_cached(&self, point: &DesignPoint) -> bool {
        self.cache.remove(point)
    }
}

/// A deterministic test/bench oracle backed by a closure.
pub struct FnEvaluator<F: FnMut(&DesignPoint) -> Evaluation> {
    f: F,
    cache: HashMap<DesignPoint, Evaluation>,
    unique: u64,
}

impl<F: FnMut(&DesignPoint) -> Evaluation> std::fmt::Debug for FnEvaluator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnEvaluator")
            .field("unique", &self.unique)
            .finish()
    }
}

impl<F: FnMut(&DesignPoint) -> Evaluation> FnEvaluator<F> {
    /// Wraps a closure as a memoized evaluator.
    pub fn new(f: F) -> Self {
        Self {
            f,
            cache: HashMap::new(),
            unique: 0,
        }
    }
}

impl<F: FnMut(&DesignPoint) -> Evaluation> Evaluator for FnEvaluator<F> {
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation {
        if let Some(e) = self.cache.get(point) {
            return *e;
        }
        let e = (self.f)(point);
        self.cache.insert(*point, e);
        self.unique += 1;
        e
    }

    fn unique_evaluations(&self) -> u64 {
        self.unique
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;

    fn pt() -> DesignPoint {
        DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        }
    }

    #[test]
    fn fn_evaluator_memoizes() {
        let mut calls = 0;
        let mut ev = FnEvaluator::new(|_p| {
            calls += 1;
            Evaluation {
                pdr: 0.9,
                nlt_days: 10.0,
                power_mw: 1.0,
                latency_ms: 4.0,
            }
        });
        let a = ev.evaluate(&pt());
        let b = ev.evaluate(&pt());
        assert_eq!(a, b);
        assert_eq!(ev.unique_evaluations(), 1);
    }

    #[test]
    fn sim_evaluator_caches_and_counts() {
        let mut ev =
            SimEvaluator::new(ChannelParams::default(), SimDuration::from_secs(5.0), 1, 42);
        let a = ev.evaluate(&pt());
        assert_eq!(ev.unique_evaluations(), 1);
        let b = ev.evaluate(&pt());
        assert_eq!(ev.unique_evaluations(), 1);
        assert_eq!(a, b);
        assert_eq!(ev.cache_len(), 1);
        assert!(a.pdr >= 0.0 && a.pdr <= 1.0);
        assert!(a.power_mw > 0.1);
        assert!(a.latency_ms > 0.0, "the DES latency must reach the user");
    }

    #[test]
    fn shared_evaluator_matches_sequential_and_shares_its_cache() {
        let protocol = SimProtocol::new(SimDuration::from_secs(3.0), 1, 99);
        let shared = protocol.shared_evaluator();
        let mut sequential = protocol.evaluator();
        let p1 = pt();
        let mut p2 = pt();
        p2.tx_power = TxPower::Minus10Dbm;
        assert_eq!(shared.eval_point(&p1), sequential.evaluate(&p1));
        assert_eq!(shared.eval_point(&p2), sequential.evaluate(&p2));
        // A clone sees the same cache: no new simulations, hits recorded.
        let mut clone = shared.clone();
        assert_eq!(clone.evaluate(&p1), shared.eval_point(&p1));
        assert_eq!(shared.unique_evaluations(), 2);
        assert_eq!(clone.unique_evaluations(), 2);
        assert!(shared.cache_hits() >= 2);
        assert_eq!(shared.cache_len(), 2);
    }

    #[test]
    fn broken_point_degrades_to_a_cached_eval_error() {
        let protocol = SimProtocol::new(SimDuration::from_secs(1.0), 1, 5);
        let shared = protocol.shared_evaluator();
        // Star routing without the chest site: lowering to a network
        // config panics, which must surface as a typed error.
        let broken = DesignPoint {
            placement: Placement::from_indices([1, 2, 3, 4]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let err = shared.try_eval_point(&broken).unwrap_err();
        assert!(err.message().contains("chest"), "panic message lost: {err}");
        // The failure is cached: asking again is a hit, not a recompute,
        // and it still counts as one unique (attempted) evaluation.
        assert_eq!(shared.try_eval_point(&broken).unwrap_err(), err);
        assert_eq!(Evaluator::unique_evaluations(&shared.clone()), 1);
        assert!(shared.cache_hits() >= 1);
        // Healthy points are unaffected.
        assert!(shared.try_eval_point(&pt()).is_ok());
    }

    #[test]
    fn tiny_event_budget_is_a_typed_deadline_error() {
        let protocol =
            SimProtocol::new(SimDuration::from_secs(5.0), 2, 11).with_max_events(Some(3));
        let shared = protocol.shared_evaluator();
        let err = shared.try_eval_point(&pt()).unwrap_err();
        assert_eq!(err.kind(), hi_exec::ErrorKind::DeadlineExceeded);
        assert!(err.message().contains("event budget"), "{err}");
        // Deterministic: the cached error equals a fresh recompute's.
        let again = protocol
            .shared_evaluator()
            .try_eval_point(&pt())
            .unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    fn generous_event_budget_is_bit_identical_to_unbudgeted() {
        let plain = SimProtocol::new(SimDuration::from_secs(3.0), 1, 23);
        let budgeted = plain.with_max_events(Some(u64::MAX));
        let a = plain.shared_evaluator().try_eval_point(&pt()).unwrap();
        let b = budgeted.shared_evaluator().try_eval_point(&pt()).unwrap();
        assert_eq!(a.pdr.to_bits(), b.pdr.to_bits());
        assert_eq!(a.nlt_days.to_bits(), b.nlt_days.to_bits());
        assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
        assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
    }

    #[test]
    fn drop_cached_forces_a_deterministic_recompute() {
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 77);
        let shared = protocol.shared_evaluator();
        let first = shared.try_eval_point(&pt()).unwrap();
        assert!(shared.drop_cached(&pt()), "entry was cached");
        assert!(!shared.drop_cached(&pt()), "second drop finds nothing");
        let second = shared.try_eval_point(&pt()).unwrap();
        assert_eq!(first.pdr.to_bits(), second.pdr.to_bits());
        assert_eq!(shared.unique_evaluations(), 2, "the recompute is a miss");
    }

    #[test]
    fn sim_evaluator_is_order_independent() {
        let mk = || SimEvaluator::new(ChannelParams::default(), SimDuration::from_secs(5.0), 1, 7);
        let p1 = pt();
        let mut p2 = pt();
        p2.tx_power = TxPower::Minus10Dbm;
        let mut a = mk();
        let r1 = (a.evaluate(&p1), a.evaluate(&p2));
        let mut b = mk();
        let r2 = (b.evaluate(&p2), b.evaluate(&p1));
        assert_eq!(r1.0, r2.1);
        assert_eq!(r1.1, r2.0);
    }
}
