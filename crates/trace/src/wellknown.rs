//! The closed vocabulary of metric names used across the workspace.
//!
//! Centralizing the names here (a) keeps instrumentation sites typo-free,
//! (b) lets [`register_all`] pre-declare every metric so summaries have a
//! stable shape even when a counter never fires, and (c) gives the HL037
//! duplicate-metric lint one catalog to check.

use crate::metrics::{MetricKind, MetricsRegistry};

/// Tasks executed by the `hi-exec` thread pool.
pub const EXEC_TASKS_RUN: &str = "exec.tasks_run";
/// Jobs stolen from another worker's deque.
pub const EXEC_STEALS: &str = "exec.steals";
/// Times a worker parked on the wakeup condvar.
pub const EXEC_PARKS: &str = "exec.parks";
/// Times the pool signalled parked workers.
pub const EXEC_UNPARKS: &str = "exec.unparks";
/// Evaluation-cache hits (existing or in-flight entry found).
pub const EXEC_CACHE_HITS: &str = "exec.cache.hits";
/// Evaluation-cache misses (fresh computations).
pub const EXEC_CACHE_MISSES: &str = "exec.cache.misses";
/// Fresh computations whose memoized result was an error (panic demoted to
/// a cached per-point failure).
pub const EXEC_CACHE_PANIC_MEMO: &str = "exec.cache.panic_memo";
/// Supervised-evaluation retries (extra attempts beyond the first).
pub const EXEC_RETRIES: &str = "exec.retry";
/// Evaluations that tripped their logical deadline (DES-event budget).
pub const EXEC_DEADLINES: &str = "exec.deadline";
/// Chaos injections (panics, transients, cache drops) applied.
pub const EXEC_CHAOS_EVENTS: &str = "exec.chaos";

/// Complete MILP solves (`Model::solve`).
pub const MILP_SOLVES: &str = "milp.solves";
/// Simplex pivot operations across all LP relaxations.
pub const MILP_PIVOTS: &str = "milp.pivots";
/// Branch-and-bound nodes explored.
pub const MILP_BB_NODES: &str = "milp.bb_nodes";
/// Branch-and-bound nodes fathomed (bound-pruned, LP-infeasible, or
/// integral-but-not-improving).
pub const MILP_BB_FATHOMED: &str = "milp.bb_fathomed";
/// Wall time of each `Model::solve`, nanoseconds.
pub const MILP_SOLVE_NS: &str = "milp.solve_ns";
/// Size of each solution pool returned by `solve_pool`.
pub const MILP_POOL_SIZE: &str = "milp.pool_size";

/// DES events dispatched (all replications).
pub const DES_EVENTS_DISPATCHED: &str = "des.events_dispatched";
/// Simulated replications (stochastic runs).
pub const NET_REPLICATIONS: &str = "net.replications";
/// Application packets generated.
pub const NET_PACKETS_GENERATED: &str = "net.packets_generated";
/// Application packets delivered to the hub.
pub const NET_PACKETS_DELIVERED: &str = "net.packets_delivered";
/// Link-layer transmissions (including retries).
pub const NET_TRANSMISSIONS: &str = "net.transmissions";
/// Packets lost to collisions.
pub const NET_DROPS_COLLISION: &str = "net.drops.collision";
/// Packets lost to buffer overflow.
pub const NET_DROPS_BUFFER: &str = "net.drops.buffer";
/// Packets lost to MAC retry exhaustion.
pub const NET_DROPS_MAC: &str = "net.drops.mac";
/// Wall time of each stochastic replication, nanoseconds.
pub const NET_REPLICATION_NS: &str = "net.replication_ns";

/// Algorithm 1 live iterations (resume replay excluded).
pub const ALGO1_ITERATIONS: &str = "algo1.iterations";
/// Power cuts added by the live loop (resume replay excluded).
pub const ALGO1_CUTS_ADDED: &str = "algo1.cuts_added";
/// Candidate points proposed by MILP solution pools.
pub const ALGO1_CANDIDATES: &str = "algo1.candidates";
/// Incumbent improvements accepted.
pub const ALGO1_INCUMBENTS: &str = "algo1.incumbents";
/// Design-point evaluations requested (cache hits included).
pub const CORE_EVALS: &str = "core.evals";
/// Design-point evaluations that returned an error.
pub const CORE_EVAL_ERRORS: &str = "core.eval_errors";
/// Robust-suite scenario simulations.
pub const ROBUST_SCENARIOS: &str = "robust.scenarios";
/// Wall time of each robust scenario simulation, nanoseconds.
pub const ROBUST_SCENARIO_NS: &str = "robust.scenario_ns";

/// Jobs accepted by the `hi-serve` daemon (across restarts of one state
/// directory, freshly counted per process).
pub const SERVE_JOBS_ACCEPTED: &str = "serve.jobs.accepted";
/// Jobs that ran to a terminal `done` state.
pub const SERVE_JOBS_COMPLETED: &str = "serve.jobs.completed";
/// Jobs that ended in a terminal `failed` state.
pub const SERVE_JOBS_FAILED: &str = "serve.jobs.failed";
/// Jobs cancelled before or during execution.
pub const SERVE_JOBS_CANCELLED: &str = "serve.jobs.cancelled";
/// Jobs currently queued or running (gauge).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";
/// Wall time from job acceptance to its terminal state, nanoseconds.
pub const SERVE_JOB_LATENCY_NS: &str = "serve.job_latency_ns";
/// Fleet evaluation-cache hits: design points recalled from another
/// user's (or an earlier job's) simulations.
pub const SERVE_FLEET_HITS: &str = "serve.fleet.cache_hits";
/// Fleet evaluation-cache misses: design points simulated fresh.
pub const SERVE_FLEET_MISSES: &str = "serve.fleet.cache_misses";
/// Cache entries appended to (or rewritten into) durable segment files.
pub const SERVE_CACHE_PERSISTED: &str = "serve.cache.entries_persisted";
/// Cache entries loaded back from segment files at daemon start.
pub const SERVE_CACHE_LOADED: &str = "serve.cache.entries_loaded";
/// Segment compactions (full atomic rewrites folding the append tail).
pub const SERVE_CACHE_COMPACTIONS: &str = "serve.cache.compactions";
/// Segment files quarantined at load (structural bit rot, not a torn
/// tail — torn tails are truncated and recovered instead).
pub const SERVE_CACHE_QUARANTINED: &str = "serve.cache.segments_quarantined";
/// Client reconnect attempts (each retried session after a transport
/// failure, across all `hi-serve-client` invocations in-process).
pub const SERVE_RECONNECTS: &str = "serve.reconnect.attempts";
/// Evaluations accepted into a Pareto archive (new front members).
pub const SERVE_PARETO_INSERTS: &str = "serve.pareto.inserts";
/// Evaluations rejected by an archive (epsilon-box dominated).
pub const SERVE_PARETO_DOMINATED: &str = "serve.pareto.dominated";
/// `FRONT` wire queries answered.
pub const SERVE_PARETO_QUERIES: &str = "serve.pareto.queries";
/// Front points hydrated back from front segment files at daemon start.
pub const SERVE_PARETO_LOADED: &str = "serve.pareto.points_loaded";
/// Front points appended to (or rewritten into) durable front segments.
pub const SERVE_PARETO_PERSISTED: &str = "serve.pareto.points_persisted";

/// Every metric in the catalog with its kind.
pub const CATALOG: &[(&str, MetricKind)] = &[
    (EXEC_TASKS_RUN, MetricKind::Counter),
    (EXEC_STEALS, MetricKind::Counter),
    (EXEC_PARKS, MetricKind::Counter),
    (EXEC_UNPARKS, MetricKind::Counter),
    (EXEC_CACHE_HITS, MetricKind::Counter),
    (EXEC_CACHE_MISSES, MetricKind::Counter),
    (EXEC_CACHE_PANIC_MEMO, MetricKind::Counter),
    (EXEC_RETRIES, MetricKind::Counter),
    (EXEC_DEADLINES, MetricKind::Counter),
    (EXEC_CHAOS_EVENTS, MetricKind::Counter),
    (MILP_SOLVES, MetricKind::Counter),
    (MILP_PIVOTS, MetricKind::Counter),
    (MILP_BB_NODES, MetricKind::Counter),
    (MILP_BB_FATHOMED, MetricKind::Counter),
    (MILP_SOLVE_NS, MetricKind::Histogram),
    (MILP_POOL_SIZE, MetricKind::Histogram),
    (DES_EVENTS_DISPATCHED, MetricKind::Counter),
    (NET_REPLICATIONS, MetricKind::Counter),
    (NET_PACKETS_GENERATED, MetricKind::Counter),
    (NET_PACKETS_DELIVERED, MetricKind::Counter),
    (NET_TRANSMISSIONS, MetricKind::Counter),
    (NET_DROPS_COLLISION, MetricKind::Counter),
    (NET_DROPS_BUFFER, MetricKind::Counter),
    (NET_DROPS_MAC, MetricKind::Counter),
    (NET_REPLICATION_NS, MetricKind::Histogram),
    (ALGO1_ITERATIONS, MetricKind::Counter),
    (ALGO1_CUTS_ADDED, MetricKind::Counter),
    (ALGO1_CANDIDATES, MetricKind::Counter),
    (ALGO1_INCUMBENTS, MetricKind::Counter),
    (CORE_EVALS, MetricKind::Counter),
    (CORE_EVAL_ERRORS, MetricKind::Counter),
    (ROBUST_SCENARIOS, MetricKind::Counter),
    (ROBUST_SCENARIO_NS, MetricKind::Histogram),
    (SERVE_JOBS_ACCEPTED, MetricKind::Counter),
    (SERVE_JOBS_COMPLETED, MetricKind::Counter),
    (SERVE_JOBS_FAILED, MetricKind::Counter),
    (SERVE_JOBS_CANCELLED, MetricKind::Counter),
    (SERVE_QUEUE_DEPTH, MetricKind::Gauge),
    (SERVE_JOB_LATENCY_NS, MetricKind::Histogram),
    (SERVE_FLEET_HITS, MetricKind::Counter),
    (SERVE_FLEET_MISSES, MetricKind::Counter),
    (SERVE_CACHE_PERSISTED, MetricKind::Counter),
    (SERVE_CACHE_LOADED, MetricKind::Counter),
    (SERVE_CACHE_COMPACTIONS, MetricKind::Counter),
    (SERVE_CACHE_QUARANTINED, MetricKind::Counter),
    (SERVE_RECONNECTS, MetricKind::Counter),
    (SERVE_PARETO_INSERTS, MetricKind::Counter),
    (SERVE_PARETO_DOMINATED, MetricKind::Counter),
    (SERVE_PARETO_QUERIES, MetricKind::Counter),
    (SERVE_PARETO_LOADED, MetricKind::Counter),
    (SERVE_PARETO_PERSISTED, MetricKind::Counter),
];

/// Pre-registers the whole catalog on `registry`.
pub fn register_all(registry: &MetricsRegistry) {
    for &(name, kind) in CATALOG {
        registry.register(name, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_no_duplicate_names() {
        let mut names: Vec<_> = CATALOG.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric name in catalog");
    }

    #[test]
    fn register_all_declares_every_entry_once() {
        let reg = MetricsRegistry::new();
        register_all(&reg);
        let specs = reg.specs();
        assert_eq!(specs.len(), CATALOG.len());
        for (spec, (name, kind)) in specs.iter().zip(CATALOG) {
            assert_eq!(spec.name, *name);
            assert_eq!(spec.kind, *kind);
        }
    }
}
