//! Experiment E4: the paper's §4 protocol claim — "We set the duration of
//! each simulation to Tsim = 600 s and averaged the performance metrics
//! over 3 runs ... sufficient to obtain performance estimates within 0.5%
//! relative error."
//!
//! For a representative configuration this harness measures the spread of
//! the PDR and power estimates across many independent replications as a
//! function of `Tsim`, reporting the relative standard error of the
//! 3-run-average estimator.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_accuracy
//! ```

use hi_channel::{BodyLocation, ChannelParams};
use hi_des::SimDuration;
use hi_net::{simulate_stochastic, MacKind, NetworkConfig, Routing, TxPower};

fn main() {
    // A configuration in the interesting (stochastic) PDR regime.
    let cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftAnkle,
            BodyLocation::LeftWrist,
        ],
        TxPower::Minus10Dbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let replications = 24u64;

    println!("# Experiment E4: estimator accuracy vs simulated duration");
    println!("# config: {}", cfg.summary());
    println!("tsim_s\truns_avged\tpdr_mean_pct\tpdr_rel_stderr_pct\tpower_rel_stderr_pct");
    for tsim in [60.0, 150.0, 300.0, 600.0] {
        let mut pdrs = Vec::new();
        let mut powers = Vec::new();
        for r in 0..replications {
            let out = simulate_stochastic(
                &cfg,
                ChannelParams::default(),
                SimDuration::from_secs(tsim),
                1000 + r,
            )
            .expect("valid config");
            pdrs.push(out.pdr);
            powers.push(out.max_power_mw);
        }
        // Group into 3-run averages, the paper's estimator.
        let grouped = |xs: &[f64]| -> Vec<f64> {
            xs.chunks(3)
                .filter(|c| c.len() == 3)
                .map(|c| c.iter().sum::<f64>() / 3.0)
                .collect()
        };
        let rel_stderr = |xs: &[f64]| -> f64 {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            100.0 * var.sqrt() / mean
        };
        let gp = grouped(&pdrs);
        let gw = grouped(&powers);
        println!(
            "{:.0}\t3\t{:.2}\t{:.3}\t{:.3}",
            tsim,
            100.0 * gp.iter().sum::<f64>() / gp.len() as f64,
            rel_stderr(&gp),
            rel_stderr(&gw)
        );
    }
    println!("\n# paper: Tsim = 600 s x 3 runs gives <= 0.5% relative error");
}
