//! Experiment T1: regenerate the paper's Table 1 (TI CC2650 radio
//! specifications) from the constants embedded in `hi-net`.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin table1
//! ```

use hi_net::{RadioParams, TxPower};

fn main() {
    let base = RadioParams::cc2650(TxPower::ZeroDbm);
    println!("Table 1: TI CC2650 radio specifications");
    println!("---------------------------------------");
    println!("fc      {:>10.1} GHz", base.carrier_ghz);
    println!("BR      {:>10.0} kbps", base.bit_rate_bps / 1e3);
    println!("RxdBm   {:>10.1} dBm", base.rx_sensitivity_dbm);
    println!("RxmW    {:>10.2} mW", base.rx_consumption_mw);
    println!();
    println!("Tx Mode    TxdBm      TxmW");
    for (mode, p) in ["p1", "p2", "p3"].iter().zip(TxPower::ALL) {
        println!("{mode:<8} {:>7.0} {:>9.2}", p.dbm(), p.consumption_mw());
    }
    println!();
    println!(
        "derived: Tpkt(100 B) = {:.2} us",
        base.packet_duration(100).as_secs_f64() * 1e6
    );
}
