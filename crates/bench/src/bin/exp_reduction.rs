//! Experiment E1: the paper's §4.2 claim that Algorithm 1 cuts the number
//! of required simulations by ~87% relative to exhaustive search, while
//! returning the same optimum.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_reduction
//! cargo run --release -p hi-bench --bin exp_reduction -- --paper
//! ```

use hi_bench::{optima_per_floor, parallel_sweep, ExpOptions};
use hi_core::{explore, DesignSpace, Problem};
use std::time::Instant;

fn main() {
    let opts = ExpOptions::from_args();
    let space = DesignSpace::paper_default();
    let points = space.points();
    let total = points.len();

    // Exhaustive reference sweep (shared across all floors).
    eprintln!("exhaustive sweep of {total} configurations ...");
    let t0 = Instant::now();
    let evals = parallel_sweep(&points, &opts);
    let exhaustive_time = t0.elapsed();
    let sweep: Vec<_> = points.into_iter().zip(evals).collect();
    eprintln!("exhaustive sweep took {exhaustive_time:.1?}");

    let floors = [0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 1.00];
    let reference = optima_per_floor(&sweep, &floors);

    println!("# Experiment E1: simulations required, Algorithm 1 vs exhaustive");
    println!("pdr_min_pct\tsims_alg1\tsims_exhaustive\treduction_pct\tsame_optimum\talg1_time_s");
    let mut reductions = Vec::new();
    for (&floor, (_, reference_best)) in floors.iter().zip(&reference) {
        let problem = Problem::paper_default(floor);
        let mut evaluator = opts.evaluator();
        let t0 = Instant::now();
        let outcome = explore(&problem, &mut evaluator).expect("explore");
        let elapsed = t0.elapsed();
        let same = match (&outcome.best, reference_best) {
            (Some((_, a)), Some((_, b))) => (a.power_mw - b.power_mw).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        let reduction = 100.0 * (1.0 - outcome.simulations as f64 / total as f64);
        reductions.push(reduction);
        println!(
            "{:.0}\t{}\t{}\t{:.1}\t{}\t{:.2}",
            floor * 100.0,
            outcome.simulations,
            total,
            reduction,
            same,
            elapsed.as_secs_f64()
        );
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("\n# average reduction: {avg:.1}% (paper reports 87%)");
    println!(
        "# exhaustive wall-clock: {:.1}s for {} simulations",
        exhaustive_time.as_secs_f64(),
        total
    );
}
