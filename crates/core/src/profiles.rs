//! Application profiles: the paper's motivating use cases as presets.
//!
//! §1 of the paper frames the design tension with two archetypes: an
//! everyday activity monitor that tolerates occasional packet drops but
//! must live long on a coin cell, and a safety-critical wearable (the
//! insulin-delivery example) where reliability dominates everything.
//! These presets capture that spectrum as ready-made [`Problem`]s.

use crate::algorithm1::Problem;

/// A named reliability/lifetime trade-off preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProfile {
    /// Everyday physical-activity monitoring: "achieving the longest
    /// possible battery lifetime is preferred, while a few packet drops
    /// can occasionally be tolerated" (§1).
    FitnessMonitoring,
    /// Continuous clinical vital-signs monitoring: losses must be rare
    /// enough not to hide clinically relevant episodes.
    ClinicalMonitoring,
    /// Safety-critical actuation (the paper's wearable insulin-delivery
    /// example): "reliability becomes of utmost importance" (§1).
    SafetyCritical,
}

impl AppProfile {
    /// All profiles, ordered by rising reliability demand.
    pub const ALL: [AppProfile; 3] = [
        AppProfile::FitnessMonitoring,
        AppProfile::ClinicalMonitoring,
        AppProfile::SafetyCritical,
    ];

    /// The reliability floor `PDRmin` this profile demands.
    pub fn pdr_min(self) -> f64 {
        match self {
            AppProfile::FitnessMonitoring => 0.60,
            AppProfile::ClinicalMonitoring => 0.95,
            AppProfile::SafetyCritical => 0.999,
        }
    }

    /// Short display name.
    pub const fn name(self) -> &'static str {
        match self {
            AppProfile::FitnessMonitoring => "fitness-monitoring",
            AppProfile::ClinicalMonitoring => "clinical-monitoring",
            AppProfile::SafetyCritical => "safety-critical",
        }
    }

    /// The exploration problem for this profile over the paper's §4.1
    /// design space.
    pub fn problem(self) -> Problem {
        Problem::paper_default(self.pdr_min())
    }
}

impl std::fmt::Display for AppProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_rise_with_criticality() {
        let floors: Vec<f64> = AppProfile::ALL.iter().map(|p| p.pdr_min()).collect();
        assert!(floors.windows(2).all(|w| w[0] < w[1]));
        assert!(floors.iter().all(|f| (0.0..=1.0).contains(f)));
    }

    #[test]
    fn problems_use_the_paper_space() {
        for profile in AppProfile::ALL {
            let p = profile.problem();
            assert_eq!(p.space.points().len(), 1320);
            assert!((p.pdr_min - profile.pdr_min()).abs() < 1e-12);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AppProfile::SafetyCritical.to_string(), "safety-critical");
    }
}
