//! A minimal property-based testing harness.
//!
//! The workspace builds offline, so instead of `proptest` the test suites
//! use this deliberately small stand-in: [`run_cases`] drives a closure
//! with many independently seeded [`Gen`]s, and on failure reports the
//! case's seed so the exact input can be replayed by hand.
//!
//! ```
//! use hi_des::check::{run_cases, Gen};
//!
//! run_cases(64, 0xC0FFEE, |g: &mut Gen| {
//!     let xs: Vec<u32> = g.vec(0..20, |g| g.u64_below(1000) as u32);
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     assert_eq!(sorted.len(), xs.len()); // sorting preserves length
//! });
//! ```

use crate::rng::{derive_seed, standard_normal, Rng};

/// A source of random test inputs for one generated case.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
    seed: u64,
}

impl Gen {
    /// Creates a generator from an explicit seed (for replaying a failure).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this case was built from — print it to reproduce.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw 64 random bits.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.gen_below(bound)
    }

    /// A uniform `usize` in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// A uniform `i64` in the inclusive `[lo, hi]` range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in with lo > hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.rng.gen_below(span) as i64
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad f64 range");
        lo + self.rng.gen_f64() * (hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// A standard-normal draw.
    pub fn normal(&mut self) -> f64 {
        standard_normal(&mut self.rng)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool()
    }

    /// `true` with probability `p`.
    pub fn bool_p(&mut self, p: f64) -> bool {
        self.rng.gen_bool_p(p)
    }

    /// A vector whose length is drawn uniformly from `len` and whose
    /// elements come from `f`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let n = if len.start + 1 == len.end {
            len.start
        } else {
            self.usize_in(len)
        };
        (0..n).map(|_| f(self)).collect()
    }

    /// A reference to a uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_in(0..items.len())]
    }

    /// A random subsequence of `items` where each element is kept with
    /// probability `p`.
    pub fn subsequence<T: Clone>(&mut self, items: &[T], p: f64) -> Vec<T> {
        items.iter().filter(|_| self.bool_p(p)).cloned().collect()
    }
}

/// Runs `f` against `cases` independently generated inputs.
///
/// Case seeds are derived from `master_seed` via [`derive_seed`], so a
/// suite is fully reproducible; a failing case panics with its index and
/// seed attached (via [`Gen::seed`], printed by the wrapped panic), which
/// [`Gen::from_seed`] replays.
///
/// # Panics
///
/// Re-raises the first assertion failure from `f`, annotated with the
/// case number and seed.
pub fn run_cases(cases: u64, master_seed: u64, mut f: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = derive_seed(master_seed, case);
        let mut g = Gen::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut g)));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} \
                 (replay with Gen::from_seed({seed:#x}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            run_cases(16, 42, |g| out.push(g.u64()));
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn cases_are_distinct() {
        let mut firsts = Vec::new();
        run_cases(16, 42, |g| firsts.push(g.u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 16, "all case streams differ");
    }

    #[test]
    fn replay_matches_original() {
        let mut seen: Option<(u64, u64)> = None;
        run_cases(1, 7, |g| seen = Some((g.seed(), g.u64())));
        let (seed, value) = seen.unwrap();
        let mut replay = Gen::from_seed(seed);
        assert_eq!(replay.u64(), value);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run_cases(8, 1, |g| {
            if g.u64() % 2 == 0 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn vec_respects_length_range() {
        run_cases(64, 3, |g| {
            let v = g.vec(2..5, |g| g.bool());
            assert!((2..5).contains(&v.len()));
        });
    }

    #[test]
    fn i64_in_is_inclusive() {
        let mut g = Gen::from_seed(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            let x = g.i64_in(-2, 2);
            assert!((-2..=2).contains(&x));
            saw_lo |= x == -2;
            saw_hi |= x == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn subsequence_extremes() {
        let mut g = Gen::from_seed(2);
        let items = [1, 2, 3, 4];
        assert!(g.subsequence(&items, 0.0).is_empty());
        assert_eq!(g.subsequence(&items, 1.0), items.to_vec());
    }
}
