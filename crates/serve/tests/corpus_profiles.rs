//! Corpus fuzz tests for the serve crate's two on-disk text formats:
//! profile files (`parse_profiles`) and job records
//! (`JobRecord::from_text`), in the `hi-core` corpus idiom
//! (`crates/core/tests/corpus_parsers.rs`).
//!
//! Both parsers promise to be *total*: any byte soup — truncation at
//! any boundary, bit flips, CRLF endings, megabyte lines, a fault suite
//! or checkpoint fed to the profile parser, a profile fed to the suite
//! parser — yields a typed error (1-based line numbers where a line is
//! at fault), never a panic and never a silently-partial result. The
//! corpus under `tests/corpus/` pins real-world shapes; the tests below
//! additionally mutate the well-formed seeds systematically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use hi_core::parse_fault_suite;
use hi_serve::{parse_profiles, JobRecord, ProfileParseError, Request};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_file(name: &str) -> String {
    let path = corpus_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("corpus file {} unreadable: {e}", path.display()))
}

fn corpus_files() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|entry| entry.expect("corpus entry readable").file_name())
        .map(|name| name.to_string_lossy().into_owned())
        .map(|name| {
            let text = corpus_file(&name);
            (name, text)
        })
        .collect();
    files.sort();
    assert!(files.len() >= 12, "corpus went missing: {files:?}");
    files
}

/// Runs every serve-crate parser (and the suite parser, for
/// cross-feeding) on `text` and asserts none panics. Returns the
/// profile parser's verdict for callers that care.
fn all_parsers_survive(
    context: &str,
    text: &str,
) -> Result<Vec<hi_serve::UserProfile>, ProfileParseError> {
    let profiles = catch_unwind(AssertUnwindSafe(|| parse_profiles(text)))
        .unwrap_or_else(|_| panic!("profile parser panicked on {context}"));
    let _ = catch_unwind(AssertUnwindSafe(|| JobRecord::from_text(text)))
        .unwrap_or_else(|_| panic!("job-record parser panicked on {context}"));
    let _ = catch_unwind(AssertUnwindSafe(|| parse_fault_suite(text)))
        .unwrap_or_else(|_| panic!("suite parser panicked on {context}"));
    // The wire-protocol request parser is line-oriented; feed it every
    // line of the file.
    for line in text.lines() {
        let _ = catch_unwind(AssertUnwindSafe(|| Request::parse(line)))
            .unwrap_or_else(|_| panic!("request parser panicked on a line of {context}"));
    }
    profiles
}

#[test]
fn every_corpus_file_feeds_every_parser_without_panicking() {
    // Cross-feeding is deliberate: a user submitting a fault suite (or a
    // job record, or a checkpoint) as a profile file must get a
    // diagnostic, not a crash — and vice versa.
    for (name, text) in corpus_files() {
        let _ = all_parsers_survive(&name, &text);
    }
}

#[test]
fn wellformed_corpus_profiles_parse_and_roundtrip() {
    let fleet = parse_profiles(&corpus_file("profile_demo.profile"))
        .expect("the committed demo fleet is valid");
    assert_eq!(fleet.len(), 4);
    assert!(hi_serve::lint_profiles(&fleet).is_clean());

    let full = parse_profiles(&corpus_file("profile_full.profile"))
        .expect("the every-directive profile is valid");
    assert_eq!(full.len(), 1);
    assert_eq!(full[0].id, "full monty");
    assert_eq!(full[0].packet_len_bytes, 128);
    assert!(full[0].faults.is_some());

    let minimal = parse_profiles(&corpus_file("profile_minimal.profile"))
        .expect("a bare `profile` line is a valid (default) profile");
    assert_eq!(minimal.len(), 1);

    // Canonical text is a fixed point: parse → render → parse is
    // identity for every well-formed corpus profile.
    for profile in fleet.iter().chain(&full).chain(&minimal) {
        let reparsed = parse_profiles(&profile.to_text()).expect("canonical text parses");
        assert_eq!(reparsed, vec![profile.clone()], "{}", profile.to_text());
    }
}

#[test]
fn crlf_profiles_parse_identically_to_lf() {
    let crlf = corpus_file("profile_crlf.profile");
    assert!(crlf.contains("\r\n"), "the CRLF seed lost its CRLFs");
    let with = parse_profiles(&crlf).expect("CRLF profile parses");
    let without = parse_profiles(&crlf.replace("\r\n", "\n")).expect("LF rewrite parses");
    assert_eq!(with, without);
}

#[test]
fn malformed_corpus_profiles_yield_typed_line_errors() {
    let check =
        |name: &str, want_line: usize, needle: &str| match parse_profiles(&corpus_file(name)) {
            Err(ProfileParseError::Line { line, message }) => {
                assert_eq!(line, want_line, "{name}: wrong line in {message:?}");
                assert!(
                    message.contains(needle),
                    "{name}: {message:?} lacks {needle:?}"
                );
            }
            other => panic!("{name}: expected a line error, got {other:?}"),
        };
    check("profile_bad_number.profile", 3, "geometry scale");
    check("profile_directive_first.profile", 1, "before any `profile`");
    check("profile_unknown_keyword.profile", 2, "unknown keyword");
    check("profile_trailing_field.profile", 2, "trailing field");
    assert_eq!(
        parse_profiles(&corpus_file("profile_comments_only.profile")),
        Err(ProfileParseError::NoProfile)
    );
}

#[test]
fn wellformed_and_malformed_corpus_records_behave() {
    let record = JobRecord::from_text(&corpus_file("record_done.rec"))
        .expect("the committed record is valid");
    assert_eq!(record.id, 3);
    assert!(record.state.is_terminal());
    // The embedded profile block is itself parseable — the invariant the
    // daemon relies on when it restores a queue.
    let fleet = parse_profiles(&record.profile_text).expect("embedded profile parses");
    assert_eq!(fleet[0].id, "alice");

    let err = JobRecord::from_text(&corpus_file("record_torn.rec")).unwrap_err();
    assert!(err.contains("crc32"), "{err}");
    let err = JobRecord::from_text(&corpus_file("record_bit_rot.rec")).unwrap_err();
    assert!(err.contains("mismatch"), "{err}");
}

#[test]
fn truncation_at_every_byte_never_panics() {
    // Profiles are line-oriented with no trailer: a prefix ending on a
    // line boundary may legitimately parse as a shorter fleet, but no
    // truncation point may panic, and a cut *inside* a directive line
    // must not silently extend the fleet beyond the whole lines seen.
    let text = corpus_file("profile_demo.profile");
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let prefix = &text[..cut];
        if let Ok(fleet) = all_parsers_survive(&format!("demo profile cut at {cut}"), prefix) {
            let whole_profiles =
                prefix.matches("\nprofile ").count() + usize::from(prefix.starts_with("profile "));
            assert!(
                fleet.len() <= whole_profiles + 1,
                "cut at {cut} invented profiles: {} from {whole_profiles}",
                fleet.len()
            );
        }
    }

    // Records carry a CRC trailer: any cut short of the whole file must
    // be rejected (the final newline itself is outside the CRC'd body).
    let text = corpus_file("record_done.rec");
    let whole = text.trim_end().len();
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let verdict = JobRecord::from_text(&text[..cut]);
        assert_eq!(
            verdict.is_err(),
            cut < whole,
            "record cut at byte {cut}: {verdict:?}"
        );
    }
}

#[test]
fn bit_flips_in_records_are_always_caught() {
    let text = corpus_file("record_done.rec");
    let body_len = text.rfind("crc32 ").expect("record has a trailer");
    let bytes = text.as_bytes();
    for at in 0..body_len {
        for bit in 0..8 {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= 1 << bit;
            let Ok(mutated) = String::from_utf8(mutated) else {
                continue; // the parser takes &str; invalid UTF-8 can't reach it
            };
            let verdict = JobRecord::from_text(&mutated);
            assert!(
                verdict.is_err(),
                "flipping bit {bit} of byte {at} went undetected"
            );
        }
    }
}

#[test]
fn megabyte_lines_error_without_panicking() {
    // A 1 MiB id is *legal* (the id is the rest of the line) — it must
    // parse, not OOM or panic, and lint must still work over it.
    let huge_id = format!("profile {}\n", "x".repeat(1 << 20));
    let fleet = all_parsers_survive("megabyte id", &huge_id).expect("a huge id is representable");
    assert_eq!(fleet[0].id.len(), 1 << 20);

    // A 1 MiB *number* is not: every numeric directive must reject it
    // with its line named, whether it overflows to inf or just fails.
    for directive in ["geometry", "channel", "pdrmin", "tsim", "runs", "seed"] {
        let huge = format!("profile a\n{directive} {}\n", "9".repeat(1 << 20));
        let err = all_parsers_survive(&format!("megabyte {directive}"), &huge)
            .expect_err("a megabyte numeral is rejected");
        match err {
            ProfileParseError::Line { line, .. } => assert_eq!(line, 2, "{directive}"),
            other => panic!("{directive}: {other:?}"),
        }
    }

    // And a megabyte of request line must bounce, not buffer.
    let huge_request = format!("SUBMIT {}", "9".repeat(1 << 20));
    assert!(Request::parse(&huge_request).is_err());
}

#[test]
fn cross_fed_formats_are_rejected_with_diagnostics() {
    // A fault suite as a profile file: `scenario` is not a profile
    // keyword, and it appears before any `profile` line.
    let suite = corpus_file("xfeed_suite_demo.suite");
    let err = parse_profiles(&suite).expect_err("a suite is not a profile file");
    assert!(matches!(err, ProfileParseError::Line { .. }), "{err}");

    // A checkpoint as a profile file: same story, its header line loses.
    let ck = corpus_file("xfeed_checkpoint_v2.ck");
    assert!(parse_profiles(&ck).is_err());

    // A profile file as a fault suite / job record: typed errors.
    let profile = corpus_file("profile_demo.profile");
    assert!(parse_fault_suite(&profile).is_err());
    assert!(JobRecord::from_text(&profile).is_err());

    // A job record as a fault suite: its header is not a suite entry.
    let record = corpus_file("record_done.rec");
    assert!(parse_fault_suite(&record).is_err());
}
