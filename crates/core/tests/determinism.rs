//! Cross-thread determinism contract for the parallel search engines.
//!
//! The `hi-exec` integration promises that for any thread count the
//! engines produce *bit-identical* results and the same unique-simulation
//! accounting. These tests run the real discrete-event simulator (short
//! protocol) through every parallel entry point at 1, 2 and 8 threads and
//! compare outcomes field by field.

use hi_core::{
    exhaustive_search, exhaustive_search_par, explore_par, explore_par_from, explore_tradeoff_par,
    simulated_annealing_restarts, DesignPoint, EvalError, Evaluation, ExecContext,
    ExhaustiveOutcome, ExploreCheckpoint, ExploreError, ExploreOptions, PointEvaluator, Problem,
    SaParams, SimProtocol, StopReason,
};
use hi_des::SimDuration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn protocol() -> SimProtocol {
    SimProtocol::new(SimDuration::from_secs(2.0), 1, 20_260_806)
}

fn assert_same_best(a: &Option<(DesignPoint, Evaluation)>, b: &Option<(DesignPoint, Evaluation)>) {
    match (a, b) {
        (None, None) => {}
        (Some((pa, ea)), Some((pb, eb))) => {
            assert_eq!(pa, pb, "chosen optimum differs");
            assert_eq!(ea, eb, "optimum's evaluation differs");
        }
        _ => panic!("feasibility verdict differs: {a:?} vs {b:?}"),
    }
}

#[test]
fn exhaustive_search_is_bit_identical_across_thread_counts() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| -> ExhaustiveOutcome {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        exhaustive_search_par(&problem, &evaluator, &exec)
    };
    let baseline = run(1);
    assert!(baseline.best.is_some(), "70% floor must be feasible");
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(
            baseline.evaluations, outcome.evaluations,
            "{threads} threads evaluated a different number of points"
        );
        assert_eq!(
            baseline.simulations, outcome.simulations,
            "{threads} threads changed the unique-simulation count"
        );
    }
}

#[test]
fn parallel_exhaustive_matches_the_sequential_engine() {
    let problem = Problem::paper_default(0.7);
    let mut sequential_eval = protocol().evaluator();
    let sequential = exhaustive_search(&problem, &mut sequential_eval);

    let exec = ExecContext::new(4);
    let evaluator = protocol().shared_evaluator();
    let parallel = exhaustive_search_par(&problem, &evaluator, &exec);

    assert_same_best(&sequential.best, &parallel.best);
    assert_eq!(sequential.evaluations, parallel.evaluations);
    assert_eq!(sequential.simulations, parallel.simulations);
}

#[test]
fn algorithm1_is_bit_identical_across_thread_counts() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
            .expect("exploration succeeds")
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(baseline.stop_reason, outcome.stop_reason);
        assert_eq!(baseline.iterations, outcome.iterations);
        assert_eq!(
            baseline.simulations, outcome.simulations,
            "{threads} threads changed Algorithm 1's simulation count"
        );
    }
}

#[test]
fn sa_restarts_are_bit_identical_across_thread_counts() {
    let problem = Problem::paper_default(0.7);
    let params = SaParams {
        steps: 40,
        ..SaParams::default()
    };
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        simulated_annealing_restarts(&problem, &evaluator, params, 7, 4, &exec)
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(baseline.steps, outcome.steps);
        assert_eq!(
            baseline.simulations, outcome.simulations,
            "{threads} threads changed the restart batch's simulation count"
        );
    }
}

#[test]
fn tradeoff_sweep_is_bit_identical_across_thread_counts() {
    let template = Problem::paper_default(0.5);
    let floors = [0.5, 0.7];
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        explore_tradeoff_par(&template, &floors, &evaluator, &exec).expect("sweep succeeds")
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let sweep = run(*threads);
        assert_eq!(baseline.len(), sweep.len());
        for (b, s) in baseline.iter().zip(&sweep) {
            assert_eq!(b.pdr_min, s.pdr_min);
            assert_same_best(&b.best, &s.best);
            assert_eq!(b.new_simulations, s.new_simulations);
            assert_eq!(b.stop_reason, s.stop_reason);
        }
    }
}

#[test]
fn engines_share_one_cache_so_a_second_engine_is_free() {
    // Exhaustive search visits every feasible point, so Algorithm 1 run
    // against the same shared evaluator afterwards needs zero new
    // simulations — the cross-engine cache-sharing the subsystem exists
    // for.
    let problem = Problem::paper_default(0.7);
    let exec = ExecContext::new(2);
    let evaluator = protocol().shared_evaluator();

    let sweep = exhaustive_search_par(&problem, &evaluator, &exec);
    assert!(sweep.simulations > 0);

    let explored = explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
        .expect("exploration succeeds");
    assert_eq!(
        explored.simulations, 0,
        "Algorithm 1 re-simulated points the sweep already covered"
    );
    assert_same_best(&sweep.best, &explored.best);
}

#[test]
fn cache_hit_accounting_is_thread_count_invariant() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = protocol().shared_evaluator();
        let _ = exhaustive_search_par(&problem, &evaluator, &exec);
        let _ = exhaustive_search_par(&problem, &evaluator, &exec);
        (
            evaluator.unique_evaluations(),
            evaluator.cache_hits(),
            evaluator.cache_len(),
        )
    };
    let baseline = run(1);
    assert!(baseline.1 > 0, "second pass must hit the cache");
    for threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            baseline,
            run(*threads),
            "{threads} threads changed accounting"
        );
    }
}

/// Wraps the real evaluator and fires a cancel token after a fixed
/// number of evaluation requests — deterministic at 1 thread, where the
/// sequential path evaluates pool order one by one.
#[derive(Clone)]
struct CancellingEvaluator {
    inner: hi_core::SharedSimEvaluator,
    cancel_after: u64,
    count: std::sync::Arc<std::sync::atomic::AtomicU64>,
    token: hi_core::CancelToken,
}

impl PointEvaluator for CancellingEvaluator {
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        use std::sync::atomic::Ordering;
        let n = self.count.fetch_add(1, Ordering::SeqCst) + 1;
        let result = self.inner.try_eval_point(point);
        if n >= self.cancel_after {
            self.token.cancel();
        }
        result
    }

    fn unique_evaluations(&self) -> u64 {
        self.inner.unique_evaluations()
    }
}

#[test]
fn mid_level_cancellation_discards_the_partial_level() {
    let problem = Problem::paper_default(0.7);

    // Reference: a budget of 1 simulation stops Algorithm 1 right after
    // its first fully evaluated level, exposing the level-1 incumbent.
    let exec = ExecContext::sequential();
    let evaluator = protocol().shared_evaluator();
    let options = ExploreOptions {
        budget: Some(1),
        ..ExploreOptions::default()
    };
    let after_level1 = explore_par(&problem, &evaluator, options, &exec).unwrap();
    assert_eq!(after_level1.stop_reason, StopReason::BudgetExhausted);
    assert_eq!(after_level1.iterations, 1);
    let level1_sims = after_level1.simulations;
    assert!(level1_sims > 0);

    // Now cancel one evaluation *into* level 2: the partial level must be
    // fully discarded and the reported incumbent must be exactly the
    // level-1 incumbent — never a point from the half-evaluated level.
    let exec = ExecContext::sequential();
    let cancelling = CancellingEvaluator {
        inner: protocol().shared_evaluator(),
        cancel_after: level1_sims + 1,
        count: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        token: exec.cancel_token(),
    };
    let cancelled = explore_par(&problem, &cancelling, ExploreOptions::default(), &exec).unwrap();
    assert_eq!(cancelled.stop_reason, StopReason::Cancelled);
    assert_eq!(cancelled.iterations, 2, "cancel fired during level 2");
    assert_same_best(&after_level1.best, &cancelled.best);
    assert_eq!(cancelled.cuts, after_level1.cuts);
}

#[test]
fn budget_zero_stops_immediately_with_best_so_far_none() {
    let problem = Problem::paper_default(0.7);
    let exec = ExecContext::sequential();
    let evaluator = protocol().shared_evaluator();
    let options = ExploreOptions {
        budget: Some(0),
        ..ExploreOptions::default()
    };
    let out = explore_par(&problem, &evaluator, options, &exec).unwrap();
    assert_eq!(out.stop_reason, StopReason::BudgetExhausted);
    assert_eq!(out.iterations, 0);
    assert_eq!(out.simulations, 0);
    assert!(out.best.is_none());
}

#[test]
fn ample_budget_changes_nothing() {
    let problem = Problem::paper_default(0.7);
    let run = |budget: Option<u64>| {
        let exec = ExecContext::sequential();
        let evaluator = protocol().shared_evaluator();
        let options = ExploreOptions {
            budget,
            ..ExploreOptions::default()
        };
        explore_par(&problem, &evaluator, options, &exec).unwrap()
    };
    let unlimited = run(None);
    let generous = run(Some(1_000_000));
    assert_same_best(&unlimited.best, &generous.best);
    assert_eq!(unlimited.stop_reason, generous.stop_reason);
    assert_eq!(unlimited.iterations, generous.iterations);
    assert_eq!(unlimited.simulations, generous.simulations);
    assert_eq!(unlimited.cuts, generous.cuts);
}

#[test]
fn checkpoint_resume_is_bit_identical_to_a_straight_through_run() {
    let problem = Problem::paper_default(0.7);

    // The uninterrupted reference run.
    let exec = ExecContext::new(2);
    let evaluator = protocol().shared_evaluator();
    let straight = explore_par(&problem, &evaluator, ExploreOptions::default(), &exec).unwrap();
    assert!(
        straight.iterations >= 2,
        "need at least two levels to interrupt between"
    );

    // Interrupted run: stop after the first level on a 1-sim budget...
    let exec = ExecContext::new(2);
    let evaluator = protocol().shared_evaluator();
    let options = ExploreOptions {
        budget: Some(1),
        ..ExploreOptions::default()
    };
    let partial = explore_par(&problem, &evaluator, options, &exec).unwrap();
    assert_eq!(partial.stop_reason, StopReason::BudgetExhausted);

    // ... serialize the exploration state through the text format ...
    let saved = ExploreCheckpoint::from_outcome(problem.pdr_min, true, &partial).to_text();
    let restored = ExploreCheckpoint::from_text(&saved).expect("own format parses");

    // ... and resume with a *fresh* evaluator and cache, as a restarted
    // process would. Every field of the final outcome must match the
    // straight-through run bit for bit.
    let exec = ExecContext::new(2);
    let evaluator = protocol().shared_evaluator();
    let resumed = explore_par_from(
        &problem,
        &evaluator,
        ExploreOptions::default(),
        &exec,
        Some(&restored),
    )
    .unwrap();
    assert_same_best(&straight.best, &resumed.best);
    assert_eq!(straight.stop_reason, resumed.stop_reason);
    assert_eq!(straight.iterations, resumed.iterations);
    assert_eq!(straight.candidates_proposed, resumed.candidates_proposed);
    assert_eq!(straight.simulations, resumed.simulations);
    assert_eq!(straight.cuts, resumed.cuts);
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_problem() {
    let partial = {
        let problem = Problem::paper_default(0.7);
        let exec = ExecContext::sequential();
        let evaluator = protocol().shared_evaluator();
        let options = ExploreOptions {
            budget: Some(1),
            ..ExploreOptions::default()
        };
        explore_par(&problem, &evaluator, options, &exec).unwrap()
    };
    let checkpoint = ExploreCheckpoint::from_outcome(0.7, true, &partial);
    let other = Problem::paper_default(0.9);
    let exec = ExecContext::sequential();
    let evaluator = protocol().shared_evaluator();
    let err = explore_par_from(
        &other,
        &evaluator,
        ExploreOptions::default(),
        &exec,
        Some(&checkpoint),
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::Checkpoint(_)), "got {err:?}");
}

/// Wraps the real evaluator and fails deterministically on a subset of
/// points, exercising the per-point degradation path.
#[derive(Clone)]
struct FlakyEvaluator {
    inner: hi_core::SharedSimEvaluator,
}

impl PointEvaluator for FlakyEvaluator {
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        if point.fingerprint().is_multiple_of(5) {
            return Err(EvalError::new(format!("injected failure for {point}")));
        }
        self.inner.try_eval_point(point)
    }

    fn unique_evaluations(&self) -> u64 {
        self.inner.unique_evaluations()
    }
}

#[test]
fn failed_evaluations_degrade_per_point_and_stay_deterministic() {
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let flaky = FlakyEvaluator {
            inner: protocol().shared_evaluator(),
        };
        explore_par(&problem, &flaky, ExploreOptions::default(), &exec)
            .expect("errors must degrade, not abort")
    };
    let baseline = run(1);
    assert!(
        baseline.eval_errors > 0,
        "the injected failures must be observed"
    );
    assert!(
        baseline.best.is_some(),
        "healthy candidates must still elect an optimum"
    );
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(baseline.eval_errors, outcome.eval_errors);
        assert_eq!(baseline.stop_reason, outcome.stop_reason);
        assert_eq!(baseline.iterations, outcome.iterations);
    }
}

#[test]
fn robust_exploration_is_bit_identical_across_thread_counts() {
    use hi_core::{FaultSuite, RobustEvaluator, RobustMode};
    use hi_net::{FaultScenario, SiteOutage, Window};

    let mut scenario = FaultScenario::named("sternum outage");
    scenario.outages.push(SiteOutage {
        site: 1,
        window: Window::from_secs(0.5, 1.5),
    });
    let suite = FaultSuite::new(vec![scenario]);
    let problem = Problem::paper_default(0.5);
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = RobustEvaluator::new(protocol(), suite.clone(), RobustMode::WorstCase);
        explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
            .expect("robust exploration succeeds")
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let outcome = run(*threads);
        assert_same_best(&baseline.best, &outcome.best);
        assert_eq!(baseline.stop_reason, outcome.stop_reason);
        assert_eq!(baseline.iterations, outcome.iterations);
        assert_eq!(baseline.simulations, outcome.simulations);
    }
}

#[test]
fn tracing_never_perturbs_exploration_results() {
    // The observability contract: a traced run returns the *same
    // `ExplorationOutcome`, field for field*, as an untraced one, at any
    // thread count — recording must observe the search, never steer it.
    let problem = Problem::paper_default(0.7);
    let run = |threads: usize, collector: hi_trace::Collector| {
        let exec = ExecContext::new(threads).with_collector(collector.clone());
        let _main = collector.install(0, 0);
        let evaluator = protocol().shared_evaluator();
        explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
            .expect("exploration succeeds")
    };
    let untraced = run(1, hi_trace::Collector::disabled());
    for &threads in &[1usize, 8] {
        let collector = hi_trace::Collector::enabled();
        let traced = run(threads, collector.clone());
        assert_eq!(
            untraced, traced,
            "tracing at {threads} thread(s) changed the outcome"
        );
        assert!(
            !collector.drain_events().is_empty(),
            "the traced run must actually have recorded events"
        );
        let metrics_only = run(threads, hi_trace::Collector::metrics_only());
        assert_eq!(
            untraced, metrics_only,
            "metrics-only at {threads} thread(s) changed the outcome"
        );
    }
}

#[test]
fn traced_event_layout_is_thread_count_invariant() {
    // Event *structure* — (epoch, lane, name, kind) in drain order — must
    // be identical for every pool size; only timestamps may differ.
    let problem = Problem::paper_default(0.7);
    let layout = |threads: usize| {
        let collector = hi_trace::Collector::enabled();
        let exec = ExecContext::new(threads).with_collector(collector.clone());
        {
            let _main = collector.install(0, 0);
            let evaluator = protocol().shared_evaluator();
            explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
                .expect("exploration succeeds");
        }
        collector
            .drain_events()
            .into_iter()
            .map(|e| (e.epoch, e.lane, e.event.name, e.event.kind))
            .collect::<Vec<_>>()
    };
    let baseline = layout(1);
    assert!(!baseline.is_empty());
    for threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            baseline,
            layout(*threads),
            "{threads} threads changed the trace layout"
        );
    }
}

#[test]
fn supervised_chaos_free_exploration_is_bit_identical_to_unsupervised() {
    // Wrapping the evaluator in a Supervisor with no chaos policy must be
    // invisible: same outcome, same unique-simulation accounting, at any
    // thread count. This is the "supervision is free" half of the
    // robustness contract — CI byte-diffs the CLI transcripts for the
    // same property end to end.
    use hi_core::{RetryPolicy, SupervisedEvaluator, Supervisor};

    let problem = Problem::paper_default(0.7);
    let plain = {
        let exec = ExecContext::new(2);
        let evaluator = protocol().shared_evaluator();
        explore_par(&problem, &evaluator, ExploreOptions::default(), &exec).unwrap()
    };
    for threads in THREAD_COUNTS {
        let exec = ExecContext::new(threads);
        let supervised =
            SupervisedEvaluator::new(protocol().shared_evaluator(), Supervisor::default());
        let outcome = explore_par(&problem, &supervised, ExploreOptions::default(), &exec).unwrap();
        assert_eq!(
            plain, outcome,
            "{threads} threads diverged under supervision"
        );
        assert_eq!(
            supervised.inner().unique_evaluations(),
            plain.simulations,
            "{threads} threads re-simulated under supervision"
        );

        let retried = SupervisedEvaluator::new(
            protocol().shared_evaluator(),
            Supervisor::new(RetryPolicy::new(5), None),
        );
        let outcome = explore_par(&problem, &retried, ExploreOptions::default(), &exec).unwrap();
        assert_eq!(
            plain, outcome,
            "a bigger retry budget changed a healthy run"
        );
    }
}

#[test]
fn chaos_injected_exploration_is_thread_count_invariant() {
    // Chaos injection is keyed by (fingerprint, attempt), so the same
    // spec must fault the same evaluations regardless of which worker
    // picks them up — the whole outcome, including the eval-error count,
    // is a pure function of the spec.
    use hi_core::{ChaosPolicy, RetryPolicy, SupervisedEvaluator, Supervisor};

    let problem = Problem::paper_default(0.7);
    let chaos = ChaosPolicy::parse("seed=1,panic=13,transient=3,drop=8").unwrap();
    let run = |threads: usize| {
        let exec = ExecContext::new(threads);
        let evaluator = SupervisedEvaluator::new(
            protocol().shared_evaluator(),
            Supervisor::new(RetryPolicy::new(3), Some(chaos)),
        );
        explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
            .expect("chaos degrades per point, never aborts")
    };
    let baseline = run(1);
    assert!(
        baseline.best.is_some(),
        "this spec must leave the optimum electable"
    );
    for threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            baseline,
            run(*threads),
            "{threads} threads diverged under chaos"
        );
    }

    // And the chaos-free optimum survives: retries ride out the injected
    // transients, so only unlucky points (transient on every attempt) are
    // lost, and this spec spares the winner.
    let exec = ExecContext::new(2);
    let plain = explore_par(
        &problem,
        &protocol().shared_evaluator(),
        ExploreOptions::default(),
        &exec,
    )
    .unwrap();
    assert_same_best(&plain.best, &baseline.best);
}

#[test]
fn resume_from_a_mid_run_auto_checkpoint_is_bit_identical() {
    // The observer fires after every completed iteration (checkpoint_every
    // = 1); resuming from any of those snapshots with a fresh process's
    // evaluator must land on the straight-through outcome bit for bit.
    let problem = Problem::paper_default(0.7);
    let options = ExploreOptions {
        checkpoint_every: Some(1),
        ..ExploreOptions::default()
    };
    let mut snapshots: Vec<ExploreCheckpoint> = Vec::new();
    let exec = ExecContext::new(2);
    let evaluator = protocol().shared_evaluator();
    let straight = hi_core::explore_par_observed(
        &problem,
        &evaluator,
        options,
        &exec,
        None,
        &mut |cp: &ExploreCheckpoint| snapshots.push(cp.clone()),
    )
    .unwrap();
    // Every iteration that *continued* (pushed a cut) snapshotted; the
    // final iteration proves the bound and stops instead of cutting.
    assert_eq!(
        snapshots.len() as u32,
        straight.iterations - 1,
        "every continuing iteration must have produced a snapshot"
    );
    assert!(
        snapshots.len() >= 2,
        "need a mid-run snapshot to resume from"
    );

    for (i, snapshot) in snapshots.iter().enumerate() {
        // Round-trip through the on-disk text format, like a real resume.
        let restored = ExploreCheckpoint::from_text(&snapshot.to_text()).unwrap();
        let exec = ExecContext::new(2);
        let evaluator = protocol().shared_evaluator();
        let resumed = explore_par_from(
            &problem,
            &evaluator,
            ExploreOptions::default(),
            &exec,
            Some(&restored),
        )
        .unwrap();
        assert_same_best(&straight.best, &resumed.best);
        assert_eq!(straight.stop_reason, resumed.stop_reason, "snapshot {i}");
        assert_eq!(straight.iterations, resumed.iterations, "snapshot {i}");
        assert_eq!(straight.cuts, resumed.cuts, "snapshot {i}");
        assert_eq!(
            straight.candidates_proposed, resumed.candidates_proposed,
            "snapshot {i}"
        );
    }
}

#[test]
fn evaluator_panic_reaches_the_caller_through_the_pool() {
    // A poisoned point must abort the batch with the worker's own panic
    // message, not hang or return partial results silently.
    let pool = hi_exec::ThreadPool::new(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.par_map((0..8u32).collect::<Vec<_>>(), |x| {
            assert!(x != 5, "simulator diverged on point {x}");
            x
        })
    }));
    let payload = result.expect_err("panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(message.contains("simulator diverged on point 5"));
}
