//! Shared command-line plumbing for the `hi-opt` binary: the trace/metrics
//! session behind `--trace`/`--trace-format`/`--metrics`, and the stderr
//! notices for budget/cancel stops.
//!
//! Everything here writes to **stderr** (or to the `--trace` file): stdout
//! is byte-stable across thread counts and tracing modes, and ci.sh diffs
//! it to prove tracing never perturbs results.

use std::io::Write;

use hi_core::{ExplorationOutcome, StopReason};
use hi_trace::{sink, wellknown, Collector, InstallGuard};

/// Serialization format for the `--trace` output file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One JSON object per line (`{"epoch":..,"lane":..,"name":..,...}`).
    #[default]
    Jsonl,
    /// A Chrome trace-event array, loadable in Perfetto / `chrome://tracing`.
    Chrome,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "jsonl" => Some(TraceFormat::Jsonl),
            "chrome" => Some(TraceFormat::Chrome),
            _ => None,
        }
    }
}

/// One invocation's observability state: the collector handed to the
/// engines, where (and how) to serialize the event stream, and whether to
/// print the metrics summary on exit.
#[derive(Debug)]
pub struct TraceSession {
    collector: Collector,
    trace_path: Option<String>,
    format: TraceFormat,
    metrics: bool,
}

impl TraceSession {
    /// Builds the session implied by the CLI flags: `--trace` enables full
    /// event recording, `--metrics` alone enables counters only, neither
    /// yields a disabled collector whose recording calls short-circuit.
    pub fn new(trace_path: Option<String>, format: TraceFormat, metrics: bool) -> Self {
        let collector = match (&trace_path, metrics) {
            (Some(_), _) => Collector::enabled(),
            (None, true) => Collector::metrics_only(),
            (None, false) => Collector::disabled(),
        };
        if let Some(registry) = collector.registry() {
            wellknown::register_all(registry);
        }
        Self {
            collector,
            trace_path,
            format,
            metrics,
        }
    }

    /// The collector to thread through `ExecContext` and install on the
    /// driving thread.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Installs the driving thread as epoch 0, lane 0. Drop the guard
    /// before [`finish`](Self::finish) so the main thread's buffer is
    /// flushed into the drain.
    pub fn install_main(&self) -> InstallGuard {
        self.collector.install(0, 0)
    }

    /// Whether a metrics summary should be printed even on early stops.
    pub fn wants_metrics(&self) -> bool {
        self.metrics
    }

    /// Finishes the session: serializes the event stream to the `--trace`
    /// file (if any) and prints the metrics summary table. All output
    /// beyond the trace file itself goes to stderr.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error message if the trace file cannot
    /// be written.
    pub fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.trace_path {
            let events = self.collector.drain_events();
            let mut buf = Vec::new();
            let io = match self.format {
                TraceFormat::Jsonl => sink::write_jsonl(&mut buf, &events),
                TraceFormat::Chrome => sink::write_chrome(&mut buf, &events),
            };
            io.and_then(|()| std::fs::write(path, &buf))
                .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
            eprintln!(
                "trace: wrote {} event(s) to `{path}` ({})",
                events.len(),
                match self.format {
                    TraceFormat::Jsonl => "jsonl",
                    TraceFormat::Chrome => "chrome trace format",
                }
            );
        }
        if self.metrics {
            if let Some(registry) = self.collector.registry() {
                let mut err = std::io::stderr().lock();
                let _ = err.write_all(sink::render_metrics(&registry.snapshot()).as_bytes());
            }
        }
        Ok(())
    }
}

/// The stderr notice for explorations that stopped before their natural
/// end (`--budget` ran dry, or the run was cancelled), naming the stop
/// and where the best-so-far result came from. `None` for natural stops:
/// those already explain themselves through the printed optimum.
pub fn stop_notice(outcome: &ExplorationOutcome) -> Option<String> {
    let stop = match outcome.stop_reason {
        StopReason::BudgetExhausted => "simulation budget exhausted",
        StopReason::Cancelled => "cancelled",
        StopReason::MilpExhausted | StopReason::BoundProven => return None,
    };
    let provenance = match &outcome.best {
        Some((point, eval)) => format!(
            "best so far: {point} ({:.2}% PDR, {:.1} days), found within {} iteration(s) and {} simulation(s)",
            eval.pdr * 100.0,
            eval.nlt_days,
            outcome.iterations,
            outcome.simulations,
        ),
        None => format!(
            "no feasible design found in {} iteration(s) and {} simulation(s)",
            outcome.iterations, outcome.simulations,
        ),
    };
    Some(format!("stopped early: {stop} — {provenance}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::{DesignPoint, Evaluation, MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;

    fn outcome(
        stop_reason: StopReason,
        best: Option<(DesignPoint, Evaluation)>,
    ) -> ExplorationOutcome {
        ExplorationOutcome {
            best,
            iterations: 7,
            candidates_proposed: 21,
            simulations: 19,
            eval_errors: 0,
            cuts: vec![1.0, 2.0],
            stop_reason,
        }
    }

    fn best() -> (DesignPoint, Evaluation) {
        (
            DesignPoint {
                placement: Placement::from_indices([0, 1, 3, 5]),
                tx_power: TxPower::ZeroDbm,
                mac: MacChoice::Tdma,
                routing: RouteChoice::Star,
            },
            Evaluation {
                pdr: 0.9137,
                nlt_days: 41.6,
                power_mw: 1.2,
                latency_ms: 5.4,
            },
        )
    }

    #[test]
    fn natural_stops_print_nothing() {
        assert_eq!(
            stop_notice(&outcome(StopReason::MilpExhausted, Some(best()))),
            None
        );
        assert_eq!(stop_notice(&outcome(StopReason::BoundProven, None)), None);
    }

    #[test]
    fn budget_stop_names_the_reason_and_the_incumbent() {
        let notice = stop_notice(&outcome(StopReason::BudgetExhausted, Some(best()))).unwrap();
        assert!(notice.contains("simulation budget exhausted"), "{notice}");
        assert!(notice.contains("best so far"), "{notice}");
        assert!(notice.contains("91.37% PDR"), "{notice}");
        assert!(notice.contains("41.6 days"), "{notice}");
        assert!(notice.contains("7 iteration(s)"), "{notice}");
        assert!(notice.contains("19 simulation(s)"), "{notice}");
    }

    #[test]
    fn cancelled_stop_without_incumbent_says_so() {
        let notice = stop_notice(&outcome(StopReason::Cancelled, None)).unwrap();
        assert!(notice.contains("cancelled"), "{notice}");
        assert!(notice.contains("no feasible design found"), "{notice}");
        assert!(notice.contains("19 simulation(s)"), "{notice}");
    }

    #[test]
    fn trace_format_parses_only_known_names() {
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("json"), None);
    }

    #[test]
    fn disabled_session_finishes_without_output() {
        let session = TraceSession::new(None, TraceFormat::Jsonl, false);
        assert!(!session.collector().is_enabled());
        assert!(!session.wants_metrics());
        session.finish().unwrap();
    }
}
