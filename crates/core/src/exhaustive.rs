//! Exhaustive-search baseline: simulate every feasible configuration.
//!
//! This is the reference the paper measures its "87% reduction in the
//! number of required simulations" against.

use crate::algorithm1::Problem;
use crate::evaluator::{Evaluation, Evaluator, PointEvaluator};
use crate::parallel::ExecContext;
use crate::point::DesignPoint;

/// Whether `candidate` strictly improves on the incumbent `best`.
///
/// The selection contract of every engine in this crate: **lowest
/// simulated power wins; ties keep the earlier point in enumeration
/// order** (strict `<`, first-wins). Because reductions always scan
/// evaluations in input order, the reported optimum cannot depend on
/// which worker finished first.
pub(crate) fn improves(candidate: &Evaluation, best: &Evaluation) -> bool {
    candidate.power_mw < best.power_mw
}

/// Folds `(point, evaluation)` pairs — in enumeration order — down to the
/// best reliability-feasible one under the [`improves`] tie-break.
pub(crate) fn best_feasible<'a>(
    pairs: impl IntoIterator<Item = &'a (DesignPoint, Evaluation)>,
    pdr_min: f64,
) -> Option<(DesignPoint, Evaluation)> {
    let mut best: Option<(DesignPoint, Evaluation)> = None;
    for (point, eval) in pairs {
        if eval.pdr >= pdr_min && best.as_ref().is_none_or(|(_, b)| improves(eval, b)) {
            best = Some((*point, *eval));
        }
    }
    best
}

/// Result of an exhaustive sweep.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    /// The lifetime-optimal reliability-feasible point, if any.
    pub best: Option<(DesignPoint, Evaluation)>,
    /// Every `(point, evaluation)` pair, in enumeration order — the raw
    /// material of the paper's Fig. 3 scatter.
    pub evaluations: Vec<(DesignPoint, Evaluation)>,
    /// Unique simulations run.
    pub simulations: u64,
}

/// Evaluates every point of the problem's design space and returns the
/// best feasible one along with the full sweep.
///
/// Best-point selection follows the crate-wide tie-break: lowest
/// `power_mw`, ties resolved to the first point in enumeration order.
pub fn exhaustive_search(problem: &Problem, evaluator: &mut dyn Evaluator) -> ExhaustiveOutcome {
    let before = evaluator.unique_evaluations();
    let mut evaluations = Vec::new();
    for point in problem.space.points() {
        let eval = evaluator.evaluate(&point);
        evaluations.push((point, eval));
    }
    ExhaustiveOutcome {
        best: best_feasible(&evaluations, problem.pdr_min),
        evaluations,
        simulations: evaluator.unique_evaluations() - before,
    }
}

/// [`exhaustive_search`] on the execution engine: the sweep fans out over
/// `exec`'s thread pool while the reduction stays sequential over
/// enumeration order, so the outcome — points, evaluations, best point
/// and simulation count — is bit-identical for every thread count
/// (`threads == 1` runs the plain sequential loop).
///
/// If `exec` is cancelled mid-sweep, the outcome covers the evaluations
/// that completed (a best-effort partial sweep, no longer guaranteed to
/// be deterministic).
pub fn exhaustive_search_par<P: PointEvaluator>(
    problem: &Problem,
    evaluator: &P,
    exec: &ExecContext,
) -> ExhaustiveOutcome {
    let before = evaluator.unique_evaluations();
    let points = problem.space.points();
    let evals = exec.eval_points(evaluator, &points);
    let evaluations: Vec<(DesignPoint, Evaluation)> = points
        .into_iter()
        .zip(evals)
        .filter_map(|(point, eval)| eval.map(|e| (point, e)))
        .collect();
    ExhaustiveOutcome {
        best: best_feasible(&evaluations, problem.pdr_min),
        evaluations,
        simulations: evaluator.unique_evaluations() - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::power::analytic_power_mw;
    use hi_net::AppParams;

    fn oracle(point: &DesignPoint) -> Evaluation {
        let app = AppParams::default();
        let power = analytic_power_mw(point, &app);
        Evaluation {
            pdr: if point.tx_power == hi_net::TxPower::ZeroDbm {
                0.95
            } else {
                0.5
            },
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
            latency_ms: 2.0 + power,
            power_mw: power,
        }
    }

    #[test]
    fn sweeps_whole_space() {
        let problem = Problem::paper_default(0.9);
        let mut ev = FnEvaluator::new(oracle);
        let out = exhaustive_search(&problem, &mut ev);
        assert_eq!(out.evaluations.len(), 1320);
        assert_eq!(out.simulations, 1320);
        let (pt, _) = out.best.unwrap();
        // Cheapest feasible: 4-node star at 0 dBm.
        assert_eq!(pt.tx_power, hi_net::TxPower::ZeroDbm);
        assert_eq!(pt.num_nodes(), 4);
    }

    #[test]
    fn tie_on_power_keeps_first_point_in_enumeration_order() {
        // A constant oracle makes every point tie on power; the documented
        // tie-break must pick the very first enumerated point, no matter
        // what order evaluations complete in.
        let problem = Problem::paper_default(0.0);
        let mut ev = FnEvaluator::new(|_: &DesignPoint| Evaluation {
            pdr: 1.0,
            nlt_days: 1.0,
            power_mw: 1.0,
            latency_ms: 1.0,
        });
        let out = exhaustive_search(&problem, &mut ev);
        assert_eq!(out.best.unwrap().0, problem.space.points()[0]);
    }

    #[test]
    fn reports_infeasible_when_nothing_qualifies() {
        let problem = Problem::paper_default(0.99);
        let mut ev = FnEvaluator::new(oracle);
        let out = exhaustive_search(&problem, &mut ev);
        assert!(out.best.is_none());
        assert_eq!(out.evaluations.len(), 1320);
    }
}
