//! `hi-serve-client` — a tiny protocol driver for a running `hi-opt
//! serve` daemon. Exists so tests and the CI gate can speak the wire
//! protocol without depending on `nc`; it is deliberately dumb — one
//! TCP connection, request in, response out, exit code mirrors the
//! server's verdict.
//!
//! ```text
//! hi-serve-client <addr> submit <profile-file>
//! hi-serve-client <addr> status|result|wait|cancel <job-id>
//! hi-serve-client <addr> stats
//! hi-serve-client <addr> shutdown
//! hi-serve-client <addr> run <profile-file>   # submit + wait + result, all jobs
//! ```
//!
//! `<addr>` is `host:port` or a path to a file whose first line is the
//! address (the daemon writes `<state_dir>/addr`). Counted `OK` blocks
//! go to stdout; `EVENT` streams go to stderr; exit codes: 0 success,
//! 2 usage, 3 I/O failure, 4 the server answered `ERR`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hi-serve-client <addr> <command>\n\
         commands:\n\
         \x20 submit <profile-file>      submit every profile in the file, print job ids\n\
         \x20 status <job-id>            one-line lifecycle state\n\
         \x20 result <job-id>            print the terminal result block\n\
         \x20 wait <job-id>              stream progress events until terminal\n\
         \x20 cancel <job-id>            cancel a queued or running job\n\
         \x20 stats                      print the daemon's metric snapshot\n\
         \x20 shutdown                   drain the current job and exit\n\
         \x20 run <profile-file>         submit, wait for and print every result\n\
         <addr> is host:port, or a file whose first line is host:port"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr_spec, command) = match args.split_first() {
        Some((addr, rest)) if !rest.is_empty() => (addr.clone(), rest.to_vec()),
        _ => return usage(),
    };
    let addr = match resolve_addr(&addr_spec) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("hi-serve-client: {e}");
            return ExitCode::from(3);
        }
    };
    let outcome = match (command[0].as_str(), command.len()) {
        ("submit", 2) => with_profile(&command[1], |text| {
            run_session(&addr, &[Step::Submit(text)])
        }),
        ("status", 2) => run_session(&addr, &[Step::Line(format!("STATUS {}", command[1]))]),
        ("result", 2) => run_session(&addr, &[Step::Line(format!("RESULT {}", command[1]))]),
        ("wait", 2) => run_session(&addr, &[Step::Line(format!("WAIT {}", command[1]))]),
        ("cancel", 2) => run_session(&addr, &[Step::Line(format!("CANCEL {}", command[1]))]),
        ("stats", 1) => run_session(&addr, &[Step::Line("STATS".into())]),
        ("shutdown", 1) => run_session(&addr, &[Step::Line("SHUTDOWN".into())]),
        ("run", 2) => with_profile(&command[1], |text| run_fleet(&addr, text)),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(ClientError::Io(e)) => {
            eprintln!("hi-serve-client: {e}");
            ExitCode::from(3)
        }
        Err(ClientError::Server(line)) => {
            eprintln!("{line}");
            ExitCode::from(4)
        }
    }
}

enum ClientError {
    Io(String),
    Server(String),
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

enum Step {
    /// One request line, no payload.
    Line(String),
    /// `SUBMIT <n>` framing around a profile file's text.
    Submit(String),
}

fn resolve_addr(spec: &str) -> Result<String, String> {
    if std::path::Path::new(spec).is_file() {
        let text =
            std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))?;
        let addr = text.lines().next().unwrap_or("").trim();
        if addr.is_empty() {
            return Err(format!("`{spec}` holds no address"));
        }
        return Ok(addr.to_string());
    }
    Ok(spec.to_string())
}

fn with_profile(
    path: &str,
    go: impl FnOnce(String) -> Result<(), ClientError>,
) -> Result<(), ClientError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ClientError::Io(format!("cannot read `{path}`: {e}")))?;
    go(text)
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Io(format!("cannot connect to `{addr}`: {e}")))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    fn send(&mut self, step: &Step) -> Result<(), ClientError> {
        match step {
            Step::Line(line) => self.writer.write_all(format!("{line}\n").as_bytes())?,
            Step::Submit(text) => {
                let count = text.lines().count();
                self.writer
                    .write_all(format!("SUBMIT {count}\n").as_bytes())?;
                for line in text.lines() {
                    self.writer.write_all(line.as_bytes())?;
                    self.writer.write_all(b"\n")?;
                }
            }
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one full response: `EVENT` lines stream to stderr, a
    /// counted `OK ... <n>` block prints its `n` lines to stdout, and
    /// the terminal `OK`/`ERR` line decides the outcome. Returns the
    /// final `OK` line's tail words.
    fn read_response(&mut self) -> Result<String, ClientError> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io("connection closed mid-response".into()));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if let Some(event) = line.strip_prefix("EVENT ") {
                eprintln!("{event}");
                continue;
            }
            if line.starts_with("ERR ") || line == "ERR" {
                return Err(ClientError::Server(line.to_string()));
            }
            let Some(tail) = line.strip_prefix("OK ") else {
                return Err(ClientError::Io(format!("unparseable response `{line}`")));
            };
            // Counted block: the verb decides whether the last field is
            // a line count (result/stats blocks) or payload (job ids).
            let mut words: Vec<&str> = tail.split_whitespace().collect();
            let counted = matches!(words.first(), Some(&"result") | Some(&"stats"));
            if counted {
                let count: usize = words
                    .pop()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Io(format!("bad block header `{line}`")))?;
                for _ in 0..count {
                    let mut body = String::new();
                    if self.reader.read_line(&mut body)? == 0 {
                        return Err(ClientError::Io("connection closed mid-block".into()));
                    }
                    print!("{body}");
                }
                return Ok(words.join(" "));
            }
            println!("{tail}");
            return Ok(tail.to_string());
        }
    }
}

fn run_session(addr: &str, steps: &[Step]) -> Result<(), ClientError> {
    let mut conn = Connection::open(addr)?;
    for step in steps {
        conn.send(step)?;
        conn.read_response()?;
    }
    Ok(())
}

/// `run`: submit the whole file, then wait for and print every job's
/// result block in id order — the one-command fleet driver.
fn run_fleet(addr: &str, text: String) -> Result<(), ClientError> {
    let mut conn = Connection::open(addr)?;
    conn.send(&Step::Submit(text))?;
    let tail = conn.read_response()?;
    let ids: Vec<String> = tail
        .split_whitespace()
        .skip(1) // the literal word `job`
        .map(str::to_string)
        .collect();
    if ids.is_empty() {
        return Err(ClientError::Io(format!("no job ids in `{tail}`")));
    }
    for id in &ids {
        conn.send(&Step::Line(format!("WAIT {id}")))?;
        conn.read_response()?;
        conn.send(&Step::Line(format!("RESULT {id}")))?;
        conn.read_response()?;
        println!();
    }
    Ok(())
}
