# a profile file with nothing in it

# still nothing
