//! Trace event model: typed spans, instants and counter samples.
//!
//! Events are recorded into per-lane buffers (see [`crate::collector`]) and
//! serialized by the sinks in [`crate::sink`]. Timestamps are nanoseconds
//! relative to the collector's start instant, so two runs of the same
//! workload produce events with identical *structure and order* even though
//! the timestamp values differ.

/// A dynamically typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer payload (counts, sizes, fingerprints).
    U64(u64),
    /// Signed integer payload (gauge levels, deltas).
    I64(i64),
    /// Floating-point payload (objective values, rates).
    F64(f64),
    /// String payload (scenario names, stop reasons). May contain arbitrary
    /// UTF-8 including control characters; sinks escape it.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// The phase of an event, mirroring the Chrome trace event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a duration span (`ph: "B"`).
    SpanBegin,
    /// Closes the innermost open span with the same name (`ph: "E"`).
    SpanEnd,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`); the sample rides in `args`.
    Counter,
}

impl EventKind {
    /// The Chrome trace `ph` character for this kind.
    pub fn chrome_phase(self) -> char {
        match self {
            EventKind::SpanBegin => 'B',
            EventKind::SpanEnd => 'E',
            EventKind::Instant => 'i',
            EventKind::Counter => 'C',
        }
    }
}

/// One recorded trace event.
///
/// `name` is a `&'static str` on purpose: event names are a closed,
/// code-defined vocabulary (see [`crate::wellknown`]), which keeps recording
/// allocation-free for the common case. Dynamic data goes in `args`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (static vocabulary; see [`crate::wellknown`]).
    pub name: &'static str,
    /// Span/instant/counter phase.
    pub kind: EventKind,
    /// Nanoseconds since the collector was created.
    pub ts_ns: u64,
    /// Key/value payload; keys are static, values are typed.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A drained event tagged with the deterministic lane it was recorded on.
///
/// Lane 0 is the driving thread; lanes `i + 1` correspond to work item `i`
/// of a parallel batch (item index, *not* worker thread id, so the layout is
/// invariant under thread count).
#[derive(Debug, Clone, PartialEq)]
pub struct LanedEvent {
    /// Batch epoch the event belongs to (monotonic per collector).
    pub epoch: u64,
    /// Deterministic lane within the epoch.
    pub lane: u32,
    /// The event itself.
    pub event: Event,
}
