//! Everyday fitness monitoring: lifetime is king, a few dropped packets
//! are acceptable (the paper's low-`PDRmin` regime).
//!
//! Sweeps the reliability floor with [`explore_tradeoff`] and prints how
//! the selected architecture migrates from a weak star to a strong star
//! to a mesh — the ladder the paper's Fig. 3 arrows trace.
//!
//! ```sh
//! cargo run --release -p hi-opt --example fitness_tracker
//! ```

use hi_opt::channel::ChannelParams;
use hi_opt::des::SimDuration;
use hi_opt::{explore_tradeoff, Evaluator, Problem, SimEvaluator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared evaluator: its cache makes the sweep cheap, mirroring how
    // a designer would explore several requirement levels interactively.
    let mut evaluator = SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(60.0),
        3,
        0xF17_BEEF,
    );

    let template = Problem::paper_default(0.5);
    let floors = [0.50, 0.60, 0.70, 0.80, 0.90, 0.95];
    let sweep = explore_tradeoff(&template, &floors, &mut evaluator)?;

    println!(
        "{:>7} | {:<34} | {:>6} | {:>9} | {:>9}",
        "PDRmin", "selected design", "PDR", "lifetime", "new sims"
    );
    println!("{}", "-".repeat(82));
    for point in &sweep {
        match &point.best {
            Some((design, eval)) => println!(
                "{:>6.0}% | {:<34} | {:>5.1}% | {:>7.1} d | {:>9}",
                point.pdr_min * 100.0,
                design.to_string(),
                eval.pdr * 100.0,
                eval.nlt_days,
                point.new_simulations,
            ),
            None => println!(
                "{:>6.0}% | {:<34} | {:>6} | {:>9} | {:>9}",
                point.pdr_min * 100.0,
                "(infeasible)",
                "-",
                "-",
                point.new_simulations
            ),
        }
    }
    println!(
        "\ntotal unique simulations across the sweep: {} (cache shared between floors)",
        evaluator.unique_evaluations()
    );
    Ok(())
}
