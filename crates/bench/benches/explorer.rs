//! Microbenchmark B4: the search loops themselves. An instant analytic
//! oracle stands in for the simulator, so these measure the pure
//! orchestration cost of Algorithm 1 (MILP queries, pool expansion,
//! bookkeeping) and of the baselines — the overhead on top of `RunSim`.

use hi_bench::micro::Runner;
use hi_core::power::analytic_power_mw;
use hi_core::{
    exhaustive_search, explore, simulated_annealing, DesignPoint, Evaluation, FnEvaluator, Problem,
    RouteChoice, SaParams,
};
use hi_net::{AppParams, TxPower};

fn oracle(point: &DesignPoint) -> Evaluation {
    let app = AppParams::default();
    let base = match point.tx_power {
        TxPower::Minus20Dbm => 0.45,
        TxPower::Minus10Dbm => 0.70,
        TxPower::ZeroDbm => 0.93,
    };
    let bonus: f64 = if point.routing == RouteChoice::Mesh {
        0.06
    } else {
        0.0
    };
    let power = analytic_power_mw(point, &app);
    Evaluation {
        pdr: (base + bonus).min(1.0),
        nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
        power_mw: power,
        latency_ms: 2.0 + power,
    }
}

fn main() {
    let runner = Runner::new("explorer_oracle");
    let problem = Problem::paper_default(0.90);
    runner.bench("algorithm1_pdr90", || {
        let mut ev = FnEvaluator::new(oracle);
        explore(&problem, &mut ev).expect("explore").simulations
    });
    runner.bench("exhaustive_pdr90", || {
        let mut ev = FnEvaluator::new(oracle);
        exhaustive_search(&problem, &mut ev).simulations
    });
    runner.bench("annealing_pdr90_300steps", || {
        let mut ev = FnEvaluator::new(oracle);
        simulated_annealing(
            &problem,
            &mut ev,
            SaParams {
                steps: 300,
                ..Default::default()
            },
            7,
        )
        .simulations
    });
}
