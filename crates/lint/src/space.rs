//! Lints over configuration (design) spaces.
//!
//! Algorithm 1 explores a Cartesian product of design dimensions
//! (placements × transmit powers × MACs × routings). A dimension that is
//! accidentally empty silently collapses the whole space to nothing, and a
//! single-value dimension is usually a constraint-tightening bug; both are
//! cheap to detect up front.

use crate::report::{Finding, Report, RuleId, Span};

/// Above this many total configurations, exhaustive enumeration is
/// flagged as impractical.
const EXPLOSION_LIMIT: u128 = 1_000_000_000;

/// One named dimension of a configuration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceDim {
    /// Display name of the dimension.
    pub name: String,
    /// Number of admissible values.
    pub cardinality: u64,
}

impl SpaceDim {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cardinality: u64) -> Self {
        Self {
            name: name.into(),
            cardinality,
        }
    }
}

/// Lints the Cartesian product of `dims`.
///
/// Fires [`RuleId::EmptyDimension`] (error) for zero-cardinality
/// dimensions, [`RuleId::DegenerateDimension`] (info) for singletons, and
/// [`RuleId::SpaceExplosion`] (info) when the product exceeds a billion
/// configurations.
///
/// # Examples
///
/// ```
/// use hi_lint::{lint_space, SpaceDim, RuleId};
///
/// let report = lint_space(&[
///     SpaceDim::new("placement", 110),
///     SpaceDim::new("tx-power", 0), // oops: constraints filtered everything
/// ]);
/// assert!(report.has_rule(RuleId::EmptyDimension));
/// ```
pub fn lint_space(dims: &[SpaceDim]) -> Report {
    let mut report = Report::new();
    let mut total: u128 = 1;
    for d in dims {
        let span = Span::Dimension {
            name: d.name.clone(),
        };
        match d.cardinality {
            0 => report.push(Finding::new(
                RuleId::EmptyDimension,
                span,
                "no admissible values: the whole space is empty".to_owned(),
            )),
            1 => report.push(Finding::new(
                RuleId::DegenerateDimension,
                span,
                "only one admissible value: the dimension is fixed".to_owned(),
            )),
            _ => {}
        }
        total = total.saturating_mul(u128::from(d.cardinality));
    }
    if total > EXPLOSION_LIMIT {
        report.push(Finding::new(
            RuleId::SpaceExplosion,
            Span::Model,
            format!(
                "{total} total configurations exceed {EXPLOSION_LIMIT}; \
                 exhaustive enumeration is impractical"
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_is_clean() {
        // 110 placements x 3 powers x 2 MACs x 2 routings.
        let r = lint_space(&[
            SpaceDim::new("placement", 110),
            SpaceDim::new("tx-power", 3),
            SpaceDim::new("mac", 2),
            SpaceDim::new("routing", 2),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn empty_dimension_is_error() {
        let r = lint_space(&[SpaceDim::new("placement", 0)]);
        assert!(r.has_rule(RuleId::EmptyDimension));
        assert!(r.has_errors());
    }

    #[test]
    fn singleton_dimension_is_info() {
        let r = lint_space(&[SpaceDim::new("mac", 1), SpaceDim::new("power", 3)]);
        assert!(r.has_rule(RuleId::DegenerateDimension));
        assert!(!r.has_errors());
    }

    #[test]
    fn explosion_is_flagged() {
        let r = lint_space(&[SpaceDim::new("a", 1 << 20), SpaceDim::new("b", 1 << 20)]);
        assert!(r.has_rule(RuleId::SpaceExplosion));
        assert!(!r.has_errors());
    }

    #[test]
    fn product_does_not_overflow() {
        let r = lint_space(&[
            SpaceDim::new("a", u64::MAX),
            SpaceDim::new("b", u64::MAX),
            SpaceDim::new("c", u64::MAX),
        ]);
        assert!(r.has_rule(RuleId::SpaceExplosion));
    }
}
