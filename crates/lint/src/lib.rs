//! Static analysis for optimization models, configuration spaces and
//! event schedules.
//!
//! The DAC 2017 Human-Intranet exploration loop (Algorithm 1) alternates a
//! MILP solver with a discrete-event simulator, mutating the MILP every
//! iteration with no-good and power cuts. A malformed or trivially
//! infeasible encoding does not crash — it silently turns into "MILP
//! infeasible → terminate", which corrupts the whole reproduction. This
//! crate is the pre-solve gate that catches those states and explains them:
//!
//! * [`analyze`] runs the full rule set over a [`LintModel`] — structural
//!   errors (non-finite numbers, dangling variable references, crossed
//!   bounds), semantic warnings (provable infeasibility via interval
//!   propagation, unused variables, duplicate/dominated rows, big-M
//!   conditioning) and redundancy infos.
//! * [`CutTracker`] watches the cuts an Algorithm-1 style loop adds across
//!   iterations and flags ones that are identical to or weaker than cuts
//!   already present.
//! * [`lint_schedule`] and [`lint_space`] cover two other inputs of the
//!   loop: event schedules (monotone, finite times) and configuration
//!   spaces (no empty dimensions).
//! * [`lint_faults`] validates fault-scenario specifications before the
//!   robust-evaluation engine spends simulations on them: inverted or
//!   overlapping windows, faults past the horizon, hub-disabling
//!   scenarios.
//! * [`lint_metrics`] checks a metrics registry's declaration log for
//!   duplicate metric names (two subsystems claiming one counter).
//! * [`lint_supervision`] validates execution-supervision policies:
//!   retry/deadline misconfigurations that would waste the whole run
//!   (HL038) and chaos injection left enabled in release or robust runs
//!   (HL039).
//! * [`lint_exec`] validates the parallel-execution configuration —
//!   thread counts and cache sharding the engine would silently clamp or
//!   round (HL040) — and [`lint_model_locks`] checks `hi-check` model
//!   programs for lock acquire/release imbalance (HL041).
//! * [`lint_profile`] validates fleet user profiles before the `hi-serve`
//!   daemon spends simulations on them — empty/duplicate ids, zero
//!   traffic, PDRmin outside `[0, 1]` (HL042) — and [`lint_server`]
//!   checks the daemon's own queue capacity and per-job deadline against
//!   the DES warm-up floor (HL043). [`lint_cache_persist`] validates the
//!   daemon's durable-cache persistence (zero/absurd compaction
//!   threshold, segment/record directory collision — HL044) and
//!   [`lint_client_retry`] a reconnecting client's retry policy
//!   (unbounded attempts, non-positive backoff base — HL045).
//! * [`lint_archive`] validates a Pareto archive's epsilon-box widths —
//!   non-positive/non-finite or range-swallowing epsilons that collapse
//!   the front (HL046) — and [`lint_front_query`] flags a `FRONT` wire
//!   query issued before any job completed (HL047).
//! * [`lint_robustness`] validates Γ-robust engine specifications before
//!   the dualization prices them: a non-positive or link-count-exceeding
//!   budget and NaN/negative/zero-width deviation bounds (HL048), and a
//!   robust engine pointed at an empty fault suite, which silently
//!   degenerates to the nominal engine (HL049).
//!
//! Every [`Finding`] carries a stable [`RuleId`], a [`Severity`], and a
//! [`Span`] naming the offending variable, row, event or dimension. The
//! severity contract is deliberate: **errors mean the object is broken and
//! solving it would be meaningless; provable *infeasibility* is only a
//! warning**, because an infeasible model is a legal question with a
//! well-defined answer — Algorithm 1 terminates by driving its model
//! infeasible on purpose.
//!
//! This crate is dependency-free and sits at the bottom of the workspace
//! graph so `hi-milp` itself can call it on every solve.
//!
//! # Example
//!
//! ```
//! use hi_lint::{analyze, LintModel, RowSense, RuleId, Severity};
//!
//! let mut m = LintModel::new();
//! let x = m.var("x", 0.0, 1.0, true);
//! let y = m.var("y", 0.0, 1.0, true);
//! m.row("choose-two", vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 3.0);
//! m.objective = vec![(x, 1.0), (y, 1.0)];
//!
//! let report = analyze(&m);
//! assert!(report.has_rule(RuleId::BoundInfeasible)); // 2 binaries < 3
//! assert!(!report.has_errors());                     // ...but still legal
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod concurrency;
mod cuts;
mod faults;
mod metrics;
mod model;
mod propagate;
mod report;
mod robustness;
mod rules;
mod schedule;
mod serve;
mod space;
mod supervision;

pub use concurrency::{lint_exec, lint_model_locks, ExecSpec, ModelLockSpec};
pub use cuts::CutTracker;
pub use faults::{lint_faults, FaultEntity, FaultWindowSpec};
pub use metrics::{lint_metrics, MetricDefSpec};
pub use model::{LintModel, LintRow, LintVar, RowSense};
pub use propagate::{propagate, Propagation};
pub use report::{Finding, Report, RuleId, Severity, Span};
pub use robustness::{lint_robustness, RobustnessLintSpec};
pub use rules::analyze;
pub use schedule::lint_schedule;
pub use serve::{
    lint_archive, lint_cache_persist, lint_client_retry, lint_front_query, lint_profile,
    lint_server, ArchiveSpec, CachePersistSpec, ClientRetrySpec, FrontQuerySpec, ProfileSpec,
    ServerSpec, COMPACT_THRESHOLD_CEILING,
};
pub use space::{lint_space, SpaceDim};
pub use supervision::{lint_supervision, SupervisionSpec};
