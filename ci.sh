#!/bin/sh
# Full offline CI gate: formatting, lints, release build, tests.
# Benches run in quick mode so the whole script stays under a few minutes.
set -eux

cargo fmt --all --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
HI_BENCH_QUICK=1 cargo bench
