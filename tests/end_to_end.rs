//! Full-pipeline test: Algorithm 1 (MILP + real discrete-event simulation)
//! must find the same optimum as exhaustive search, with fewer
//! simulations — the paper's central claim, on a reduced space sized for
//! CI.

use hi_opt::channel::ChannelParams;
use hi_opt::des::SimDuration;
use hi_opt::net::AppParams;
use hi_opt::{
    exhaustive_search, explore, DesignSpace, Evaluator, Problem, SimEvaluator, TopologyConstraints,
};

/// A CI-sized problem: 4-node placements only (8 of them), full stack
/// choices — 96 design points.
fn small_problem(pdr_min: f64) -> Problem {
    let mut constraints = TopologyConstraints::paper_default();
    constraints.max_nodes = 4;
    Problem {
        space: DesignSpace::new(constraints),
        pdr_min,
        app: AppParams::default(),
    }
}

fn evaluator(seed: u64) -> SimEvaluator {
    SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(20.0),
        1,
        seed,
    )
}

#[test]
fn algorithm1_matches_exhaustive_optimum() {
    for pdr_min in [0.55, 0.80] {
        let problem = small_problem(pdr_min);
        // One shared evaluator: both searches see identical measurements.
        let mut ev = evaluator(42);
        let a1 = explore(&problem, &mut ev).expect("explore");
        let ex = exhaustive_search(&problem, &mut ev);

        let a1_power = a1.best.as_ref().map(|(_, e)| e.power_mw);
        let ex_power = ex.best.as_ref().map(|(_, e)| e.power_mw);
        assert_eq!(
            a1_power, ex_power,
            "PDRmin {pdr_min}: algorithm1 {:?} vs exhaustive {:?}",
            a1.best, ex.best
        );
    }
}

#[test]
fn algorithm1_uses_fraction_of_exhaustive_simulations() {
    let problem = small_problem(0.80);
    let mut a1_ev = evaluator(7);
    let a1 = explore(&problem, &mut a1_ev).expect("explore");
    assert!(a1.is_feasible());

    let total = problem.space.points().len() as u64;
    assert!(
        a1.simulations * 2 <= total,
        "algorithm used {} of {} simulations — expected a substantial cut",
        a1.simulations,
        total
    );
}

#[test]
fn infeasible_floor_is_detected_against_simulation() {
    // Nothing delivers literally every packet on a 20 s x 1 run of the
    // -20 dBm-class space... but 0 dBm mesh might. Constrain to
    // reliability no stack can reach by capping power implicitly: ask for
    // a PDR floor strictly above 1.0 being impossible, use 1.0 + epsilon
    // via 1.0 and a lossy channel instead. Pragmatic check: a floor of
    // 1.0 on the *star-only* 4-node space must fail on the fading channel.
    let mut constraints = TopologyConstraints::paper_default();
    constraints.max_nodes = 4;
    let problem = Problem {
        space: DesignSpace::new(constraints),
        pdr_min: 1.0,
        app: AppParams::default(),
    };
    let mut ev = evaluator(3);
    let out = explore(&problem, &mut ev).expect("explore");
    // With only 4-node configurations and deep fades, 100.0% across all
    // 12 ordered pairs for 20 s is effectively unreachable for stars;
    // mesh at 0 dBm occasionally manages it, so accept either a mesh
    // optimum or infeasibility — but never a star.
    if let Some((pt, ev)) = out.best {
        assert_eq!(pt.routing, hi_opt::RouteChoice::Mesh, "{pt}");
        assert_eq!(ev.pdr, 1.0);
    }
}

#[test]
fn outcome_statistics_are_consistent() {
    let problem = small_problem(0.70);
    let mut ev = evaluator(11);
    let out = explore(&problem, &mut ev).expect("explore");
    assert!(out.iterations >= 1);
    assert!(out.candidates_proposed >= out.simulations);
    assert_eq!(out.simulations, ev.unique_evaluations());
    if let Some((pt, e)) = out.best {
        assert!(problem.space.contains(&pt));
        assert!(e.pdr >= 0.70);
        assert!(e.nlt_days > 0.0 && e.nlt_days.is_finite());
        assert!(e.power_mw > 0.1, "must exceed the 100 uW baseline");
    }
}
