//! Robust (fault-aware) evaluation of design points.
//!
//! The paper's Algorithm 1 scores each candidate under nominal
//! conditions. This module rescores candidates across a suite of fault
//! scenarios ([`FaultSuite`]) — node outages, link blackouts, battery
//! depletions, interference bursts — and aggregates the per-scenario
//! results into a single conservative [`Evaluation`] the exploration
//! engines consume unchanged. Feasibility under
//! [`RobustMode::WorstCase`] therefore means *the PDR floor holds in
//! every scenario* (the Γ = all case of Γ-robustness: the optimum must
//! survive every modeled disruption), and [`RobustMode::Quantile`]
//! relaxes that to "holds in a fraction `q` of scenarios".
//!
//! Determinism: scenario `s` of point `p` is seeded purely from
//! `(protocol seed, p, s)`, with `s = 0` (nominal) reproducing
//! [`SharedSimEvaluator`](crate::SharedSimEvaluator)'s seed bit for bit —
//! so an empty suite makes robust exploration identical, bit for bit, to
//! nominal exploration, and a non-empty suite stays thread-invariant
//! through the shared cache's exactly-once contract.

use std::sync::Arc;

use hi_exec::{EvalCache, EvalError};
use hi_net::{simulate_averaged_budgeted, FaultScenario, SimError};

use crate::evaluator::{Evaluation, PointEvaluator, SimProtocol};
use crate::point::DesignPoint;

/// An ordered set of fault scenarios a design is scored against (the
/// nominal, fault-free scenario is always implicitly included first).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSuite {
    /// The fault scenarios, in evaluation (and seed-derivation) order.
    pub scenarios: Vec<FaultScenario>,
}

impl FaultSuite {
    /// A suite over the given scenarios.
    pub fn new(scenarios: Vec<FaultScenario>) -> Self {
        Self { scenarios }
    }

    /// The empty suite: robust evaluation degenerates to nominal.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of fault scenarios (not counting the implicit nominal one).
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True if the suite holds no fault scenario.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// How per-scenario results collapse into the one [`Evaluation`] the
/// exploration engines rank and constrain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RobustMode {
    /// Ignore the fault suite: report the nominal evaluation (useful as a
    /// baseline against the robust modes on the same suite).
    Nominal,
    /// Field-wise worst case over nominal + all scenarios: lowest PDR,
    /// lowest lifetime, highest power. The conservative envelope — each
    /// field may come from a different scenario.
    WorstCase,
    /// The `q`-quantile (lower tail for PDR and lifetime, upper tail for
    /// power) over nominal + all scenarios. `Quantile(0.0)` is
    /// `WorstCase`; `Quantile(1.0)` is the most optimistic scenario.
    Quantile(f64),
}

/// The full fault-suite scorecard of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEvaluation {
    /// The fault-free evaluation (scenario index 0).
    pub nominal: Evaluation,
    /// Per-fault-scenario evaluations, in suite order.
    pub scenarios: Vec<Evaluation>,
}

/// `values` sorted ascending with a total order (all simulator outputs
/// are finite, but `total_cmp` keeps even pathological values stable).
fn sorted(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    v
}

impl RobustEvaluation {
    /// All evaluations — nominal first, then suite order.
    pub fn all(&self) -> impl Iterator<Item = &Evaluation> {
        std::iter::once(&self.nominal).chain(self.scenarios.iter())
    }

    /// The field-wise worst case (see [`RobustMode::WorstCase`]).
    pub fn worst_case(&self) -> Evaluation {
        Evaluation {
            pdr: self.all().map(|e| e.pdr).fold(f64::INFINITY, f64::min),
            nlt_days: self.all().map(|e| e.nlt_days).fold(f64::INFINITY, f64::min),
            power_mw: self
                .all()
                .map(|e| e.power_mw)
                .fold(f64::NEG_INFINITY, f64::max),
            latency_ms: self
                .all()
                .map(|e| e.latency_ms)
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// The `q`-quantile evaluation (see [`RobustMode::Quantile`]): the
    /// deterministic index `round(q * (n - 1))` into the sorted
    /// per-scenario values, taken from the pessimistic end of each field.
    ///
    /// Pinned semantics (certified by `quantile_edge_semantics_are_pinned`):
    ///
    /// * `q` is clamped to `[0, 1]`; `q = 0` equals [`worst_case`]
    ///   field-wise and `q = 1` is the most optimistic value of each
    ///   field (lowest power, highest PDR/lifetime);
    /// * the index rounds half away from zero, so with one fault
    ///   scenario (`n = 2`) the median `q = 0.5` resolves to the
    ///   *optimistic* end;
    /// * an empty suite (`n = 1`) returns the nominal evaluation for
    ///   every `q`, bit for bit;
    /// * fields are ranked independently, so the quantile evaluation —
    ///   like the worst case — may mix fields from different scenarios.
    ///
    /// [`worst_case`]: Self::worst_case
    pub fn quantile(&self, q: f64) -> Evaluation {
        let q = q.clamp(0.0, 1.0);
        let n = self.scenarios.len() + 1;
        let idx = (q * (n - 1) as f64).round() as usize;
        let pdr = sorted(self.all().map(|e| e.pdr))[idx];
        let nlt = sorted(self.all().map(|e| e.nlt_days))[idx];
        // For power and latency, pessimistic = high: index from the top.
        let power = sorted(self.all().map(|e| e.power_mw))[n - 1 - idx];
        let latency = sorted(self.all().map(|e| e.latency_ms))[n - 1 - idx];
        Evaluation {
            pdr,
            nlt_days: nlt,
            power_mw: power,
            latency_ms: latency,
        }
    }

    /// Collapses the scorecard under `mode`.
    pub fn aggregate(&self, mode: RobustMode) -> Evaluation {
        match mode {
            RobustMode::Nominal => self.nominal,
            RobustMode::WorstCase => self.worst_case(),
            RobustMode::Quantile(q) => self.quantile(q),
        }
    }
}

/// A [`PointEvaluator`] scoring each point across a [`FaultSuite`].
///
/// Clones share one evaluation cache (keyed by design point, holding the
/// full per-scenario scorecard), so the engines' exactly-once and
/// thread-invariance guarantees carry over unchanged: a point costs
/// `(1 + suite.len()) × runs` simulations exactly once, no matter how
/// many threads or engines ask.
#[derive(Debug, Clone)]
pub struct RobustEvaluator {
    protocol: SimProtocol,
    suite: Arc<FaultSuite>,
    mode: RobustMode,
    cache: Arc<EvalCache<DesignPoint, Result<RobustEvaluation, EvalError>>>,
}

impl RobustEvaluator {
    /// A fresh robust evaluator (and cache) under `protocol`.
    pub fn new(protocol: SimProtocol, suite: FaultSuite, mode: RobustMode) -> Self {
        Self {
            protocol,
            suite: Arc::new(suite),
            mode,
            cache: Arc::new(EvalCache::new()),
        }
    }

    /// The simulation protocol.
    pub fn protocol(&self) -> &SimProtocol {
        &self.protocol
    }

    /// The fault suite this evaluator scores against.
    pub fn suite(&self) -> &FaultSuite {
        &self.suite
    }

    /// The aggregation mode.
    pub fn mode(&self) -> RobustMode {
        self.mode
    }

    /// Runs scenario `index` (0 = nominal) of `point`. Seed derivation
    /// for index 0 matches the nominal evaluator's exactly; fault
    /// scenarios mix the index into the low fingerprint half. A
    /// replication exceeding the protocol's [`SimProtocol::max_events`]
    /// budget fails the scenario — and through it the whole scorecard —
    /// with a typed deadline error.
    fn simulate_scenario(&self, point: &DesignPoint, index: u64) -> Result<Evaluation, EvalError> {
        let mut span = hi_trace::span("robust.scenario");
        if span.is_recording() {
            // Scenario labels are user-supplied strings (quotes, control
            // characters, non-ASCII all possible): the sinks escape them.
            let label = if index == 0 {
                "nominal".to_string()
            } else {
                self.suite.scenarios[index as usize - 1].name.clone()
            };
            span.arg("scenario", label);
            span.arg("index", index);
        }
        let t_begin = hi_trace::now_ns();
        let mut cfg = point.to_network_config();
        cfg.app = self.protocol.app;
        if index > 0 {
            cfg.scenario = self.suite.scenarios[index as usize - 1].clone();
        }
        let fingerprint = point.fingerprint();
        let seed = self.protocol.seed
            ^ hi_des::rng::derive_seed(fingerprint >> 4, (fingerprint & 0xF) | (index << 8));
        let out = simulate_averaged_budgeted(
            &cfg,
            self.protocol.channel,
            self.protocol.t_sim,
            seed,
            self.protocol.runs,
            self.protocol.max_events,
        )
        .map_err(|e| match e {
            SimError::Config(c) => panic!("design points lower to valid configs: {c}"),
            deadline @ SimError::DeadlineExceeded { .. } => {
                hi_trace::counter(hi_trace::wellknown::EXEC_DEADLINES, 1);
                EvalError::deadline(format!(
                    "robust evaluation of {point} (scenario {index}): {deadline}"
                ))
            }
        })?;
        hi_trace::counter(hi_trace::wellknown::ROBUST_SCENARIOS, 1);
        if let (Some(t0), Some(t1)) = (t_begin, hi_trace::now_ns()) {
            hi_trace::histogram(
                hi_trace::wellknown::ROBUST_SCENARIO_NS,
                t1.saturating_sub(t0),
            );
        }
        Ok(Evaluation {
            pdr: out.pdr,
            nlt_days: out.nlt_days,
            power_mw: out.max_power_mw,
            latency_ms: out.latency.mean_ms,
        })
    }

    /// The full scorecard of `point` (cached; a panicking simulation —
    /// or a deadline trip in any scenario — degrades to a cached
    /// [`EvalError`]).
    pub fn try_robust_eval(&self, point: &DesignPoint) -> Result<RobustEvaluation, EvalError> {
        self.cache.get_or_compute(*point, || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || -> Result<RobustEvaluation, EvalError> {
                    Ok(RobustEvaluation {
                        nominal: self.simulate_scenario(point, 0)?,
                        scenarios: (1..=self.suite.len() as u64)
                            .map(|s| self.simulate_scenario(point, s))
                            .collect::<Result<_, _>>()?,
                    })
                },
            ))
            .unwrap_or_else(|payload| Err(EvalError::from_panic(payload.as_ref())));
            if result.is_err() {
                hi_trace::counter(hi_trace::wellknown::EXEC_CACHE_PANIC_MEMO, 1);
            }
            result
        })
    }

    /// Seeds the scorecard cache with a previously computed outcome —
    /// the import half of cache persistence (see
    /// [`SharedSimEvaluator::seed_eval`](crate::SharedSimEvaluator::seed_eval)).
    /// An existing entry wins; returns whether the seed landed.
    pub fn seed_scorecard(&self, point: DesignPoint, card: RobustEvaluation) -> bool {
        self.cache.seed(point, Ok(card))
    }

    /// Every successfully settled `(point, scorecard)` pair, sorted by
    /// point fingerprint — the export half of cache persistence. Cached
    /// errors are excluded, mirroring
    /// [`SharedSimEvaluator::cached_ok`](crate::SharedSimEvaluator::cached_ok).
    pub fn cached_scorecards(&self) -> Vec<(DesignPoint, RobustEvaluation)> {
        let mut out: Vec<(DesignPoint, RobustEvaluation)> = self
            .cache
            .snapshot()
            .into_iter()
            .filter_map(|(point, outcome)| outcome.ok().map(|card| (point, card)))
            .collect();
        out.sort_by_key(|(point, _)| point.fingerprint());
        out
    }

    /// Forgets the cached scorecard of `point`, if any (see
    /// [`PointEvaluator::drop_cached`]).
    pub fn drop_cached(&self, point: &DesignPoint) -> bool {
        self.cache.remove(point)
    }

    /// Number of unique points whose scorecard has been computed.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache lookups answered without simulating.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Raw cache misses: scorecards actually computed (each one costs
    /// `1 + suite.len()` simulations — see
    /// [`unique_evaluations`](Self::unique_evaluations)).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Unique simulations spent: each computed scorecard costs one
    /// nominal plus one run per suite scenario.
    pub fn unique_evaluations(&self) -> u64 {
        self.cache.misses() * (self.suite.len() as u64 + 1)
    }
}

impl PointEvaluator for RobustEvaluator {
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        self.try_robust_eval(point).map(|r| r.aggregate(self.mode))
    }

    fn unique_evaluations(&self) -> u64 {
        RobustEvaluator::unique_evaluations(self)
    }

    fn drop_cached(&self, point: &DesignPoint) -> bool {
        RobustEvaluator::drop_cached(self, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_des::SimDuration;
    use hi_net::TxPower;

    fn ev(pdr: f64, nlt: f64, power: f64) -> Evaluation {
        Evaluation {
            pdr,
            nlt_days: nlt,
            power_mw: power,
            // Latency covaries with power in these fixtures, so the
            // pessimistic-high aggregation is exercised on both fields.
            latency_ms: power * 10.0,
        }
    }

    fn scorecard() -> RobustEvaluation {
        RobustEvaluation {
            nominal: ev(0.95, 100.0, 1.0),
            scenarios: vec![ev(0.60, 80.0, 1.4), ev(0.85, 120.0, 1.2)],
        }
    }

    #[test]
    fn worst_case_is_the_fieldwise_envelope() {
        let w = scorecard().worst_case();
        assert_eq!(w.pdr, 0.60);
        assert_eq!(w.nlt_days, 80.0);
        assert_eq!(w.power_mw, 1.4);
        assert_eq!(w.latency_ms, 14.0, "latency worst case is the maximum");
    }

    #[test]
    fn quantile_spans_worst_to_best() {
        let card = scorecard();
        assert_eq!(card.quantile(0.0), card.worst_case());
        let median = card.quantile(0.5);
        assert_eq!(median.pdr, 0.85);
        assert_eq!(median.nlt_days, 100.0);
        assert_eq!(median.power_mw, 1.2);
        assert_eq!(median.latency_ms, 12.0);
        let best = card.quantile(1.0);
        assert_eq!(best.pdr, 0.95);
        assert_eq!(best.power_mw, 1.0);
        assert_eq!(best.latency_ms, 10.0, "optimistic latency is the lowest");
    }

    #[test]
    fn nominal_mode_ignores_the_suite() {
        assert_eq!(
            scorecard().aggregate(RobustMode::Nominal),
            ev(0.95, 100.0, 1.0)
        );
    }

    #[test]
    fn quantile_edge_semantics_are_pinned() {
        // Empty suite (n = 1): every quantile is the nominal evaluation.
        let lone = RobustEvaluation {
            nominal: ev(0.95, 100.0, 1.0),
            scenarios: vec![],
        };
        for q in [0.0, 0.25, 0.5, 1.0] {
            let e = lone.quantile(q);
            assert_eq!(e.pdr.to_bits(), lone.nominal.pdr.to_bits(), "q = {q}");
            assert_eq!(e.nlt_days.to_bits(), lone.nominal.nlt_days.to_bits());
            assert_eq!(e.power_mw.to_bits(), lone.nominal.power_mw.to_bits());
        }
        // Single-scenario suite (n = 2): q = 0 is the worst case, q = 1
        // the best, and the median rounds half away from zero — to the
        // optimistic end.
        let pair = RobustEvaluation {
            nominal: ev(0.95, 100.0, 1.0),
            scenarios: vec![ev(0.60, 80.0, 1.4)],
        };
        assert_eq!(pair.quantile(0.0), pair.worst_case());
        assert_eq!(pair.quantile(1.0), ev(0.95, 100.0, 1.0));
        assert_eq!(pair.quantile(0.5), ev(0.95, 100.0, 1.0));
        // q = 0 / q = 100 percent pin to the ends on a wider card too,
        // and out-of-range q clamps instead of panicking or indexing out.
        let card = scorecard();
        assert_eq!(card.quantile(0.0), card.worst_case());
        assert_eq!(card.quantile(1.0), ev(0.95, 120.0, 1.0));
        assert_eq!(card.quantile(-3.0), card.quantile(0.0));
        assert_eq!(card.quantile(7.0), card.quantile(1.0));
    }

    #[test]
    fn all_scenarios_infeasible_still_aggregates() {
        // Every scenario floored at PDR 0 (total outage): the worst case
        // is infeasible for any positive floor, the nominal untouched,
        // and nothing panics or divides by zero.
        let card = RobustEvaluation {
            nominal: ev(0.95, 100.0, 1.0),
            scenarios: vec![ev(0.0, 0.0, 2.0), ev(0.0, 0.0, 1.8)],
        };
        let worst = card.aggregate(RobustMode::WorstCase);
        assert_eq!(worst.pdr, 0.0);
        assert_eq!(worst.nlt_days, 0.0);
        assert_eq!(worst.power_mw, 2.0);
        assert_eq!(card.aggregate(RobustMode::Nominal), ev(0.95, 100.0, 1.0));
        // The median of {0, 0, 0.95} is the middle order statistic.
        assert_eq!(card.aggregate(RobustMode::Quantile(0.5)).pdr, 0.0);
    }

    #[test]
    fn empty_suite_robust_eval_equals_nominal_eval_bitwise() {
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 314);
        let robust = RobustEvaluator::new(protocol, FaultSuite::empty(), RobustMode::WorstCase);
        let nominal = protocol.shared_evaluator();
        let point = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let a = robust.try_eval(&point).unwrap();
        let b = nominal.try_eval_point(&point).unwrap();
        assert_eq!(a.pdr.to_bits(), b.pdr.to_bits());
        assert_eq!(a.nlt_days.to_bits(), b.nlt_days.to_bits());
        assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
        assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
        assert_eq!(robust.unique_evaluations(), 1);
    }

    #[test]
    fn faulted_scenarios_change_the_scorecard() {
        use hi_net::{SiteOutage, Window};
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 314);
        let mut scenario = FaultScenario::named("arm down");
        scenario.outages.push(SiteOutage {
            site: 5,
            window: Window::open_ended(hi_des::SimTime::ZERO),
        });
        let robust = RobustEvaluator::new(
            protocol,
            FaultSuite::new(vec![scenario]),
            RobustMode::WorstCase,
        );
        let point = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let card = robust.try_robust_eval(&point).unwrap();
        assert_eq!(card.scenarios.len(), 1);
        assert!(
            card.scenarios[0].pdr < card.nominal.pdr,
            "a dead node all run long must cost PDR ({} vs nominal {})",
            card.scenarios[0].pdr,
            card.nominal.pdr
        );
        assert_eq!(robust.unique_evaluations(), 2);
        // Broken points degrade to typed errors, same as the nominal path.
        let broken = DesignPoint {
            placement: Placement::from_indices([1, 2, 3, 4]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        assert!(robust.try_eval(&broken).is_err());
    }
}
