//! Simulated-annealing baseline (the paper compares against the
//! `perrygeo/simanneal` package).
//!
//! The state is a feasible [`DesignPoint`]; moves toggle an optional site,
//! step the transmit power, or flip the MAC/routing bits. The energy is
//! the simulated node power with a large penalty for violating the
//! reliability floor, so the annealer minimizes power among reliable
//! configurations — the same objective Algorithm 1 optimizes exactly.

use hi_des::rng;
use hi_net::TxPower;

use crate::algorithm1::Problem;
use crate::evaluator::{Evaluation, Evaluator, SharedSimEvaluator};
use crate::exhaustive::improves;
use crate::parallel::ExecContext;
use crate::point::{DesignPoint, MacChoice, Placement, RouteChoice};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Initial temperature (energy units: mW).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Number of annealing steps.
    pub steps: u32,
    /// Penalty weight (mW per unit of PDR deficit) for infeasible states.
    pub penalty_mw: f64,
}

impl Default for SaParams {
    fn default() -> Self {
        Self {
            t_start: 2.0,
            t_end: 0.01,
            steps: 600,
            penalty_mw: 100.0,
        }
    }
}

/// Result of a simulated-annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// Best reliability-feasible point observed, if any.
    pub best: Option<(DesignPoint, Evaluation)>,
    /// Annealing steps performed.
    pub steps: u32,
    /// Unique simulations run.
    pub simulations: u64,
}

/// Runs simulated annealing on `problem`.
///
/// # Panics
///
/// Panics if the problem's design space is empty.
pub fn simulated_annealing(
    problem: &Problem,
    evaluator: &mut dyn Evaluator,
    params: SaParams,
    seed: u64,
) -> SaOutcome {
    let before = evaluator.unique_evaluations();
    let mut rng = rng::stream(seed, 0x5A5A);
    let constraints = problem.space.constraints().clone();
    let placements = constraints.feasible_placements();
    assert!(!placements.is_empty(), "empty design space");

    let energy = |e: &Evaluation| -> f64 {
        if e.pdr >= problem.pdr_min {
            e.power_mw
        } else {
            e.power_mw + params.penalty_mw * (problem.pdr_min - e.pdr)
        }
    };

    // Random feasible starting state.
    let mut current = DesignPoint {
        placement: placements[rng.gen_range(0..placements.len())],
        tx_power: TxPower::ALL[rng.gen_range(0..3)],
        mac: MacChoice::ALL[rng.gen_range(0..2)],
        routing: RouteChoice::ALL[rng.gen_range(0..2)],
    };
    let mut current_eval = evaluator.evaluate(&current);
    let mut current_energy = energy(&current_eval);

    let mut best: Option<(DesignPoint, Evaluation)> = feasible(problem, current, current_eval);

    let cooling = (params.t_end / params.t_start).powf(1.0 / params.steps.max(1) as f64);
    let mut temperature = params.t_start;
    for _ in 0..params.steps {
        let candidate = neighbor(&current, &constraints, &mut rng);
        let eval = evaluator.evaluate(&candidate);
        let e = energy(&eval);
        let accept =
            e < current_energy || rng.gen_f64() < ((current_energy - e) / temperature).exp();
        if accept {
            current = candidate;
            current_eval = eval;
            current_energy = e;
            if let Some(fb) = feasible(problem, current, current_eval) {
                let better = best
                    .as_ref()
                    .is_none_or(|(_, b)| fb.1.power_mw < b.power_mw);
                if better {
                    best = Some(fb);
                }
            }
        }
        temperature *= cooling;
    }

    SaOutcome {
        best,
        steps: params.steps,
        simulations: evaluator.unique_evaluations() - before,
    }
}

/// Multi-restart simulated annealing on the execution engine: `restarts`
/// independent chains (chain `i` is seeded `derive_seed(base_seed, i)`,
/// so the chain set is fixed up front) run across `exec`'s thread pool
/// against the shared evaluation cache, and the best feasible point over
/// all chains is selected deterministically — lowest power first, ties
/// resolved to the lowest chain index.
///
/// Each chain is internally sequential (annealing is a Markov chain), so
/// `threads == 1` degenerates to running the chains back to back; any
/// thread count returns bit-identical results. The shared cache means
/// chains revisiting each other's states (or states another engine
/// already simulated) pay nothing, and `simulations` counts unique
/// simulations across the whole restart batch.
///
/// Cancelling `exec` skips chains that have not started; finished chains
/// still contribute to `best`.
///
/// # Panics
///
/// Panics if `restarts == 0` or the problem's design space is empty.
pub fn simulated_annealing_restarts(
    problem: &Problem,
    evaluator: &SharedSimEvaluator,
    params: SaParams,
    base_seed: u64,
    restarts: u32,
    exec: &ExecContext,
) -> SaOutcome {
    assert!(restarts > 0, "need at least one restart");
    let before = evaluator.unique_evaluations();
    let seeds: Vec<u64> = (0..restarts)
        .map(|i| rng::derive_seed(base_seed, u64::from(i)))
        .collect();
    let chain_bests: Vec<Option<Option<(DesignPoint, Evaluation)>>> = {
        let problem = problem.clone();
        let evaluator = evaluator.clone();
        exec.map_cancellable(seeds, move |seed| {
            let mut ev = evaluator.clone();
            simulated_annealing(&problem, &mut ev, params, seed).best
        })
    };
    let mut best: Option<(DesignPoint, Evaluation)> = None;
    for chain_best in chain_bests.into_iter().flatten().flatten() {
        if best
            .as_ref()
            .is_none_or(|(_, b)| improves(&chain_best.1, b))
        {
            best = Some(chain_best);
        }
    }
    SaOutcome {
        best,
        steps: params.steps.saturating_mul(restarts),
        simulations: evaluator.unique_evaluations() - before,
    }
}

fn feasible(
    problem: &Problem,
    point: DesignPoint,
    eval: Evaluation,
) -> Option<(DesignPoint, Evaluation)> {
    (eval.pdr >= problem.pdr_min).then_some((point, eval))
}

/// Draws a random constraint-preserving move.
fn neighbor(
    point: &DesignPoint,
    constraints: &crate::constraints::TopologyConstraints,
    rng: &mut rng::Rng,
) -> DesignPoint {
    for _attempt in 0..32 {
        let mut next = *point;
        match rng.gen_range(0..4) {
            0 => {
                // Toggle one of the ten sites.
                let site = rng.gen_range(0..10);
                let mask = next.placement.mask() ^ (1 << site);
                next.placement = Placement::from_mask(mask);
            }
            1 => {
                let step: i8 = if rng.gen_bool() { 1 } else { -1 };
                let idx = TxPower::ALL
                    .iter()
                    .position(|&p| p == next.tx_power)
                    .expect("power level is in ALL") as i8;
                let new = (idx + step).clamp(0, 2) as usize;
                next.tx_power = TxPower::ALL[new];
            }
            2 => {
                next.mac = match next.mac {
                    MacChoice::Csma => MacChoice::Tdma,
                    MacChoice::Tdma => MacChoice::Csma,
                };
            }
            _ => {
                next.routing = match next.routing {
                    RouteChoice::Star => RouteChoice::Mesh,
                    RouteChoice::Mesh => RouteChoice::Star,
                };
            }
        }
        if constraints.is_satisfied(next.placement) && next != *point {
            return next;
        }
    }
    *point // fall back to staying put (bounded retry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::power::analytic_power_mw;
    use hi_net::AppParams;

    fn oracle(point: &DesignPoint) -> Evaluation {
        let app = AppParams::default();
        let power = analytic_power_mw(point, &app);
        let pdr = match (point.tx_power, point.routing) {
            (TxPower::Minus20Dbm, RouteChoice::Star) => 0.45,
            (TxPower::Minus10Dbm, RouteChoice::Star) => 0.70,
            (TxPower::ZeroDbm, RouteChoice::Star) => 0.93,
            (TxPower::Minus20Dbm, RouteChoice::Mesh) => 0.55,
            (TxPower::Minus10Dbm, RouteChoice::Mesh) => 0.80,
            (TxPower::ZeroDbm, RouteChoice::Mesh) => 0.99,
        };
        Evaluation {
            pdr,
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
            power_mw: power,
            latency_ms: 2.0 + power,
        }
    }

    #[test]
    fn finds_a_feasible_solution() {
        let problem = Problem::paper_default(0.9);
        let mut ev = FnEvaluator::new(oracle);
        let out = simulated_annealing(&problem, &mut ev, SaParams::default(), 3);
        let (pt, e) = out.best.expect("SA should find a feasible point");
        assert!(e.pdr >= 0.9);
        assert_eq!(pt.tx_power, TxPower::ZeroDbm);
    }

    #[test]
    fn converges_to_cheapest_feasible_class() {
        // With enough steps SA should land on the 4-node 0 dBm star.
        let problem = Problem::paper_default(0.9);
        let mut ev = FnEvaluator::new(oracle);
        let out = simulated_annealing(
            &problem,
            &mut ev,
            SaParams {
                steps: 2000,
                ..Default::default()
            },
            11,
        );
        let (pt, _) = out.best.unwrap();
        assert_eq!(pt.tx_power, TxPower::ZeroDbm);
        assert_eq!(pt.routing, RouteChoice::Star);
        assert_eq!(pt.num_nodes(), 4, "SA should shed the optional nodes");
    }

    #[test]
    fn respects_constraints_during_search() {
        let problem = Problem::paper_default(0.5);
        let constraints = problem.space.constraints().clone();
        let mut ev = FnEvaluator::new(move |p: &DesignPoint| {
            assert!(
                constraints.is_satisfied(p.placement),
                "SA evaluated infeasible placement {p}"
            );
            oracle(p)
        });
        let _ = simulated_annealing(&problem, &mut ev, SaParams::default(), 9);
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = Problem::paper_default(0.7);
        let run = |seed| {
            let mut ev = FnEvaluator::new(oracle);
            simulated_annealing(&problem, &mut ev, SaParams::default(), seed)
                .best
                .map(|(p, _)| p)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn uses_more_simulations_than_algorithm1() {
        // The headline claim: SA needs more evaluations for the same
        // optimum. With memoized oracles, compare unique evaluations.
        let problem = Problem::paper_default(0.9);

        let mut sa_ev = FnEvaluator::new(oracle);
        let sa = simulated_annealing(&problem, &mut sa_ev, SaParams::default(), 1);

        let mut a1_ev = FnEvaluator::new(oracle);
        let a1 = crate::algorithm1::explore(&problem, &mut a1_ev).unwrap();

        assert_eq!(
            sa.best.as_ref().map(|(_, e)| e.power_mw),
            a1.best.as_ref().map(|(_, e)| e.power_mw),
            "both should find the same optimum class"
        );
        assert!(
            sa.simulations > a1.simulations,
            "SA {} sims vs Algorithm 1 {} sims",
            sa.simulations,
            a1.simulations
        );
    }
}
