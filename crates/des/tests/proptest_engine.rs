//! Property-based tests of the event engine: delivery order, FIFO ties,
//! cancellation and horizon semantics under arbitrary schedules.

use hi_des::check::{run_cases, Gen};
use hi_des::{Engine, SimTime};

fn times(g: &mut Gen, len: std::ops::Range<usize>) -> Vec<u64> {
    g.vec(len, |g| g.u64_below(1_000))
}

#[test]
fn delivery_is_sorted_and_complete() {
    run_cases(256, 0xE0_0001, |g| {
        let times = times(g, 0..64);
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut delivered = Vec::new();
        while let Some((t, id)) = engine.pop() {
            delivered.push((t.as_nanos(), id));
        }
        // Complete: every scheduled event arrives exactly once.
        assert_eq!(delivered.len(), times.len());
        // Sorted by time, FIFO among equal timestamps (ids ascend within
        // the same instant because we scheduled them in id order).
        for w in delivered.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
            }
        }
    });
}

#[test]
fn cancellation_removes_exactly_the_cancelled() {
    run_cases(256, 0xE0_0002, |g| {
        let times = times(g, 1..64);
        let cancel_mask: Vec<bool> = g.vec(1..64, |g| g.bool());
        let mut engine = Engine::new();
        let mut keep = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let h = engine.schedule_at(SimTime::from_nanos(t), i);
            if *cancel_mask.get(i).unwrap_or(&false) {
                engine.cancel(h);
            } else {
                keep.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, id)) = engine.pop() {
            delivered.push(id);
        }
        delivered.sort_unstable();
        assert_eq!(delivered, keep);
    });
}

#[test]
fn horizon_is_a_clean_cut() {
    run_cases(256, 0xE0_0003, |g| {
        let times = times(g, 1..64);
        let horizon = g.u64_below(1_000);
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::from_nanos(horizon));
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut count = 0usize;
        while let Some((t, _)) = engine.pop() {
            assert!(t.as_nanos() <= horizon);
            count += 1;
        }
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(count, expected);
    });
}

#[test]
fn clock_is_monotone_under_interleaved_scheduling() {
    run_cases(256, 0xE0_0004, |g| {
        // Re-schedule from inside the run loop (events spawn events).
        let seeds: Vec<u64> = g.vec(1..32, |g| g.u64_below(100));
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::from_nanos(5_000));
        for (i, &s) in seeds.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(s), i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, gen)) = engine.pop() {
            assert!(t >= last);
            last = t;
            if gen < 1_000 {
                // Spawn a follow-up event a pseudo-random delay ahead.
                let delay = (gen * 37 + 11) % 400 + 1;
                engine.schedule_at(SimTime::from_nanos(t.as_nanos() + delay), gen + 1_000);
            }
        }
    });
}
