profile a
antenna 3
