//! Static validation of metrics-registry declarations.
//!
//! A metrics registry keyed by string names has one classic failure mode:
//! two subsystems (or one subsystem, registered twice) claiming the same
//! name, silently folding unrelated counts into one number. The registry
//! itself tolerates duplicates — re-registration must stay cheap and
//! panic-free on hot paths — so this pass is where they get *reported*:
//!
//! * **HL037** — the same metric name is declared more than once
//!   (warning). If the duplicate declarations also disagree on kind
//!   (counter vs gauge vs histogram), the finding says so: that variant is
//!   almost always a real bug rather than a benign double-registration.
//!
//! Like the rest of the crate this module is dependency-free: callers
//! lower their registry's declaration log into [`MetricDefSpec`]s (the
//! tracing crate's registry exposes exactly that via its introspection
//! iterator).

use crate::report::{Finding, Report, RuleId, Span};

/// One metric declaration, lowered for analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDefSpec {
    /// The metric's registered name.
    pub name: String,
    /// The declared kind, as a plain label (`"counter"`, `"gauge"`,
    /// `"histogram"` — any stable vocabulary works; the rule only
    /// compares labels for equality).
    pub kind: String,
}

/// Lints a registry's declaration log (in registration order) for
/// duplicate metric names (HL037).
pub fn lint_metrics(defs: &[MetricDefSpec]) -> Report {
    let mut report = Report::new();
    for (index, def) in defs.iter().enumerate() {
        let Some(earlier) = defs[..index].iter().find(|d| d.name == def.name) else {
            continue;
        };
        let message = if earlier.kind == def.kind {
            format!(
                "declared again as a {} — double registration folds \
                 unrelated counts into one series",
                def.kind
            )
        } else {
            format!(
                "declared as a {} but already registered as a {} — two \
                 subsystems are fighting over one name",
                def.kind, earlier.kind
            )
        };
        report.push(Finding::new(
            RuleId::DuplicateMetric,
            Span::Metric {
                name: def.name.clone(),
            },
            message,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, kind: &str) -> MetricDefSpec {
        MetricDefSpec {
            name: name.into(),
            kind: kind.into(),
        }
    }

    #[test]
    fn unique_names_are_clean() {
        let defs = [
            spec("exec.tasks_run", "counter"),
            spec("milp.pool_size", "histogram"),
            spec("net.drops.mac", "counter"),
        ];
        assert!(lint_metrics(&defs).is_clean());
        assert!(lint_metrics(&[]).is_clean());
    }

    #[test]
    fn duplicate_name_warns_once_per_redeclaration() {
        let defs = [
            spec("core.evals", "counter"),
            spec("core.evals", "counter"),
            spec("core.evals", "counter"),
        ];
        let report = lint_metrics(&defs);
        assert!(report.has_rule(RuleId::DuplicateMetric));
        assert!(!report.has_errors(), "HL037 is a warning");
        assert_eq!(report.warning_count(), 2, "first declaration is fine");
        assert_eq!(
            report.findings()[0].span,
            Span::Metric {
                name: "core.evals".into()
            }
        );
    }

    #[test]
    fn kind_mismatch_is_called_out() {
        let defs = [
            spec("milp.solve_ns", "histogram"),
            spec("milp.solve_ns", "counter"),
        ];
        let report = lint_metrics(&defs);
        assert_eq!(report.warning_count(), 1);
        let message = &report.findings()[0].message;
        assert!(
            message.contains("counter") && message.contains("histogram"),
            "{message}"
        );
    }
}
