hi-opt explore checkpoint v2
pdr_min 3fe6666666666666
alpha_corr