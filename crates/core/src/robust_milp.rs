//! The Γ-robust MILP engine: robustness in the formulation, simulation
//! only to verify.
//!
//! Where Algorithm 1 simulates the MILP's whole optimal pool at every
//! power level (and PR 3's `--robust worst` multiplies that by the fault
//! suite), this engine solves the Bertsimas–Sim robust counterpart
//! ([`MilpEncoding::new_robust`]) and simulates **only the witness** of
//! each robust level: the inner Γ adversary is priced into the objective,
//! so a witness is already margin-hardened before the first simulation
//! runs. The ladder climbs robust objective values by excluding each
//! disproven witness ([`MilpEncoding::exclude_point`] — an
//! objective-threshold cut would be unsound, because the dualization's
//! free duals can inflate past any demanded value) until a witness's
//! evaluation clears the PDR floor — with a worst-case
//! [`RobustEvaluator`](crate::RobustEvaluator) behind the oracle, that is
//! "every scenario survives", at `1 + suite.len()` simulation sets per
//! level instead of `pool × (1 + suite.len())`.
//!
//! Budget / checkpoint / cancel support mirrors Algorithm 1's: the cut
//! ladder replays into a fresh robust encoding, so checkpoint-and-resume
//! is bit-identical to a straight-through run. A degenerate
//! [`RobustnessSpec`] (Γ = 0 or an empty fault suite) delegates to
//! [`explore_par_observed`] verbatim — nominal behavior, bit for bit.

use hi_trace::wellknown as wk;

use crate::algorithm1::{
    explore_par_observed, ExplorationOutcome, ExploreError, ExploreOptions, Problem, StopReason,
};
use crate::checkpoint::{ExploreCheckpoint, ENGINE_ROBUST_MILP};
use crate::evaluator::PointEvaluator;
use crate::milp_encode::MilpEncoding;
use crate::parallel::ExecContext;
use crate::robustness::RobustnessSpec;

/// The result of a robust-engine run: the ordinary exploration outcome
/// plus the price-of-robustness ingredients.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustOutcome {
    /// The exploration outcome, shaped exactly like Algorithm 1's so the
    /// CLI, checkpoints, the fleet service and the Pareto archive consume
    /// it unchanged.
    pub outcome: ExplorationOutcome,
    /// The *nominal* MILP optimum (no deviations priced), mW — the
    /// baseline of the price-of-robustness line. `None` if even the
    /// nominal model is infeasible. Costs one MILP solve, zero
    /// simulations.
    pub nominal_power_mw: Option<f64>,
    /// The robust objective (nominal + Γ-deviation margin) of the
    /// accepted witness, mW. `None` when no witness was accepted.
    pub robust_power_mw: Option<f64>,
    /// Repair steps performed (ILP heuristic only: sites released after a
    /// restricted model went infeasible). Always 0 for the robust MILP.
    pub repairs: u32,
}

impl RobustOutcome {
    /// Wraps a plain exploration outcome (degenerate-spec delegation).
    fn degenerate(outcome: ExplorationOutcome) -> Self {
        Self {
            outcome,
            nominal_power_mw: None,
            robust_power_mw: None,
            repairs: 0,
        }
    }
}

/// Validates a resume checkpoint against the engine about to continue it.
pub(crate) fn validate_resume(
    resume: Option<&ExploreCheckpoint>,
    engine: &str,
    problem: &Problem,
    options: ExploreOptions,
) -> Result<(), ExploreError> {
    let Some(cp) = resume else { return Ok(()) };
    if cp.engine != engine {
        return Err(ExploreError::Checkpoint(format!(
            "checkpoint was recorded by engine `{}`, this run uses `{engine}`",
            cp.engine
        )));
    }
    if cp.pdr_min.to_bits() != problem.pdr_min.to_bits() {
        return Err(ExploreError::Checkpoint(format!(
            "checkpoint was recorded at pdr_min = {}, this run uses {}",
            cp.pdr_min, problem.pdr_min
        )));
    }
    if cp.alpha_correction != options.alpha_correction {
        return Err(ExploreError::Checkpoint(
            "checkpoint and this run disagree on alpha_correction".into(),
        ));
    }
    Ok(())
}

/// The witness ladder shared by both robust engines.
///
/// `repair_queue` holds the sites the ILP heuristic may release (in
/// order) when the restricted model goes infeasible; the robust MILP
/// passes an empty queue. Iteration counting is pinned for determinism
/// across checkpoint/resume: only solves that *yield a witness* plus the
/// final exhausting solve count — repair-triggering infeasible solves do
/// not, because a resumed run replays the whole cut ladder first and then
/// performs the pending repairs back to back.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_witness_ladder<P: PointEvaluator>(
    problem: &Problem,
    options: ExploreOptions,
    evaluator: &P,
    exec: &ExecContext,
    resume: Option<&ExploreCheckpoint>,
    observer: &mut dyn FnMut(&ExploreCheckpoint),
    encoding: &mut MilpEncoding,
    mut repair_queue: Vec<usize>,
    engine: &'static str,
) -> Result<(ExplorationOutcome, Option<f64>, u32), ExploreError> {
    let mut cuts: Vec<f64> = Vec::new();
    let mut best = None;
    let mut robust_power = None;
    let mut iterations = 0u32;
    let mut candidates_proposed = 0u64;
    let mut prior_sims = 0u64;
    let mut eval_errors = 0u64;
    let mut repairs = 0u32;
    if let Some(cp) = resume {
        // Replay the ladder: each recorded level is a witness that was
        // disproven. The solver is deterministic, so re-solving and
        // re-excluding reproduces the exact model state — including any
        // repairs an infeasible restricted model forced along the way —
        // with zero fresh simulations.
        while cuts.len() < cp.cuts.len() {
            match encoding.solve_witness()? {
                Some((point, robust_mw)) => {
                    encoding.exclude_point(&point);
                    cuts.push(robust_mw);
                }
                None => {
                    let Some(site) = (!repair_queue.is_empty()).then(|| repair_queue.remove(0))
                    else {
                        break;
                    };
                    encoding.free_site(site);
                    repairs += 1;
                }
            }
        }
        best = cp.best;
        iterations = cp.iterations;
        candidates_proposed = cp.candidates_proposed;
        prior_sims = cp.simulations;
    }
    let sims_before = evaluator.unique_evaluations();
    let sims_spent = |evaluator: &P| prior_sims + (evaluator.unique_evaluations() - sims_before);

    let stop_reason = loop {
        if exec.is_cancelled() {
            break StopReason::Cancelled;
        }
        // A resumed final checkpoint already carries the accepted design:
        // nothing left to search.
        if best.is_some() {
            break StopReason::BoundProven;
        }
        if options.budget.is_some_and(|b| sims_spent(evaluator) >= b) {
            break StopReason::BudgetExhausted;
        }
        let witness = {
            let _s = hi_trace::span("robust.milp_query");
            encoding.solve_witness()?
        };
        let Some((point, robust_mw)) = witness else {
            if let Some(site) = (!repair_queue.is_empty()).then(|| repair_queue.remove(0)) {
                // Deterministic repair: release the lowest-index pinned
                // site and re-solve (the cut ladder stays in force).
                encoding.free_site(site);
                repairs += 1;
                continue;
            }
            iterations += 1;
            hi_trace::counter(wk::ALGO1_ITERATIONS, 1);
            break StopReason::MilpExhausted;
        };
        iterations += 1;
        candidates_proposed += 1;
        hi_trace::counter(wk::ALGO1_ITERATIONS, 1);
        hi_trace::counter(wk::ALGO1_CANDIDATES, 1);
        // Verification pass: simulate *only* the witness.
        hi_trace::counter(wk::CORE_EVALS, 1);
        let evals = exec.try_eval_points(evaluator, std::slice::from_ref(&point));
        if exec.is_cancelled() {
            break StopReason::Cancelled;
        }
        match evals.into_iter().next().flatten() {
            Some(Ok(eval)) if eval.pdr >= problem.pdr_min => {
                best = Some((point, eval));
                robust_power = Some(robust_mw);
                hi_trace::counter(wk::ALGO1_INCUMBENTS, 1);
                break StopReason::BoundProven;
            }
            Some(Ok(_)) => {} // verified infeasible: cut the level, climb
            Some(Err(_)) => {
                // Degraded candidate: count it, cut the level, carry on.
                eval_errors += 1;
                hi_trace::counter(wk::CORE_EVAL_ERRORS, 1);
            }
            None => break StopReason::Cancelled,
        }
        encoding.exclude_point(&point);
        cuts.push(robust_mw);
        hi_trace::counter(wk::ALGO1_CUTS_ADDED, 1);
        if options
            .checkpoint_every
            .is_some_and(|k| k > 0 && iterations.is_multiple_of(k))
        {
            observer(&ExploreCheckpoint {
                engine: engine.to_string(),
                pdr_min: problem.pdr_min,
                alpha_correction: options.alpha_correction,
                cuts: cuts.clone(),
                iterations,
                candidates_proposed,
                simulations: sims_spent(evaluator),
                best,
            });
        }
    };

    Ok((
        ExplorationOutcome {
            best,
            iterations,
            candidates_proposed,
            simulations: sims_spent(evaluator),
            eval_errors,
            cuts,
            stop_reason,
        },
        robust_power,
        repairs,
    ))
}

/// Runs the Γ-robust MILP engine (see the [module docs](self)).
///
/// A degenerate `spec` delegates to [`explore_par_observed`] bit for bit.
/// The ladder accepts the first witness whose (evaluator-aggregated)
/// evaluation clears `problem.pdr_min` — put a worst-case
/// [`RobustEvaluator`](crate::RobustEvaluator) behind `evaluator` to make
/// acceptance mean "survives every scenario".
///
/// # Errors
///
/// Returns [`ExploreError::Checkpoint`] on a resume checkpoint recorded
/// by another engine or under different problem/options, and
/// [`ExploreError::Milp`] if the solver fails.
pub fn robust_milp_search<P: PointEvaluator>(
    problem: &Problem,
    spec: &RobustnessSpec,
    evaluator: &P,
    options: ExploreOptions,
    exec: &ExecContext,
    resume: Option<&ExploreCheckpoint>,
    observer: &mut dyn FnMut(&ExploreCheckpoint),
) -> Result<RobustOutcome, ExploreError> {
    if spec.is_degenerate() {
        return explore_par_observed(problem, evaluator, options, exec, resume, observer)
            .map(RobustOutcome::degenerate);
    }
    validate_resume(resume, ENGINE_ROBUST_MILP, problem, options)?;
    let constraints = problem.space.constraints();
    // The price-of-robustness baseline: one nominal solve, zero sims.
    let nominal_power_mw = MilpEncoding::new(constraints, &problem.app)
        .solve_witness()?
        .map(|(_, p)| p);
    let mut encoding = MilpEncoding::new_robust(constraints, &problem.app, spec);
    let (outcome, robust_power_mw, repairs) = run_witness_ladder(
        problem,
        options,
        evaluator,
        exec,
        resume,
        observer,
        &mut encoding,
        Vec::new(),
        ENGINE_ROBUST_MILP,
    )?;
    Ok(RobustOutcome {
        outcome,
        nominal_power_mw,
        robust_power_mw,
        repairs,
    })
}
