//! `trace-check` — validates hi-trace output files.
//!
//! Usage: `trace-check <file> [--format jsonl|chrome]`
//!
//! * `jsonl`: every line must be a standalone JSON object carrying the
//!   `epoch`, `lane`, `name`, `ph` and `ts_ns` fields.
//! * `chrome`: the whole file must be one JSON array whose elements carry
//!   the Chrome trace `name`, `ph`, `ts`, `pid` and `tid` fields.
//!
//! Exit codes: 0 valid, 1 invalid content, 2 usage/I/O error. Used by
//! ci.sh to gate trace output line by line.

use std::process::ExitCode;

use hi_trace::json::{self, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(CheckError::Usage(msg)) => {
            eprintln!("trace-check: {msg}");
            eprintln!("usage: trace-check <file> [--format jsonl|chrome]");
            ExitCode::from(2)
        }
        Err(CheckError::Invalid(msg)) => {
            eprintln!("trace-check: {msg}");
            ExitCode::FAILURE
        }
    }
}

enum CheckError {
    Usage(String),
    Invalid(String),
}

fn run(args: &[String]) -> Result<String, CheckError> {
    let mut file = None;
    let mut format = "jsonl".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                format = it
                    .next()
                    .ok_or_else(|| CheckError::Usage("--format needs a value".into()))?
                    .clone();
            }
            "--help" | "-h" => return Err(CheckError::Usage("help".into())),
            _ if file.is_none() => file = Some(a.clone()),
            other => return Err(CheckError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let path = file.ok_or_else(|| CheckError::Usage("missing input file".into()))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CheckError::Usage(format!("cannot read {path}: {e}")))?;
    match format.as_str() {
        "jsonl" => check_jsonl(&path, &text),
        "chrome" => check_chrome(&path, &text),
        other => Err(CheckError::Usage(format!("unknown format `{other}`"))),
    }
}

fn require_fields(v: &Value, fields: &[&str], what: &str) -> Result<(), CheckError> {
    let Value::Obj(_) = v else {
        return Err(CheckError::Invalid(format!("{what}: not a JSON object")));
    };
    for f in fields {
        if v.get(f).is_none() {
            return Err(CheckError::Invalid(format!("{what}: missing field `{f}`")));
        }
    }
    Ok(())
}

fn check_jsonl(path: &str, text: &str) -> Result<String, CheckError> {
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| CheckError::Invalid(format!("{path}:{}: invalid JSON ({e})", i + 1)))?;
        require_fields(
            &v,
            &["epoch", "lane", "name", "ph", "ts_ns"],
            &format!("{path}:{}", i + 1),
        )?;
        n += 1;
    }
    Ok(format!("{path}: valid jsonl, {n} events"))
}

fn check_chrome(path: &str, text: &str) -> Result<String, CheckError> {
    let v = json::parse(text)
        .map_err(|e| CheckError::Invalid(format!("{path}: invalid JSON ({e})")))?;
    let Value::Arr(items) = v else {
        return Err(CheckError::Invalid(format!(
            "{path}: chrome trace must be a top-level array"
        )));
    };
    for (i, item) in items.iter().enumerate() {
        require_fields(
            item,
            &["name", "ph", "ts", "pid", "tid"],
            &format!("{path}: event {i}"),
        )?;
    }
    Ok(format!(
        "{path}: valid chrome trace, {} events",
        items.len()
    ))
}
