pdrmin 0.9
profile late
