profile crlf-user
geometry 1.15
pdrmin 0.9
