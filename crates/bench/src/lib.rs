//! Shared plumbing for the experiment binaries: CLI options, the
//! pool-backed design-space sweep and result formatting.
//!
//! Every binary regenerates one artifact of the paper (see the experiment
//! index in `DESIGN.md`); this crate keeps them small and consistent.
//! All simulation work funnels through one [`SimProtocol`] constructor
//! ([`ExpOptions::protocol`]) so the sequential evaluator, the shared
//! cached evaluator and every worker thread are guaranteed to agree on
//! `t_sim`, `runs` and seeding.

#![forbid(unsafe_code)]

pub mod micro;
pub mod report;

use hi_core::{DesignPoint, Evaluation, ExecContext, SimEvaluator, SimProtocol};
use hi_des::SimDuration;

/// Common command-line options of the experiment binaries.
///
/// Parsed from `--tsim <secs>`, `--runs <n>`, `--seed <n>`,
/// `--paper` (shorthand for the paper's 600 s × 3 protocol) and
/// `--threads <n>`.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Per-run simulated duration.
    pub t_sim: SimDuration,
    /// Replications averaged per evaluation.
    pub runs: u32,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for sweeps.
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            // Fast default so the harnesses finish in tens of seconds;
            // `--paper` switches to the publication protocol.
            t_sim: SimDuration::from_secs(60.0),
            runs: 3,
            seed: 0xDAC_2017,
            threads: hi_exec::default_threads(),
        }
    }
}

impl ExpOptions {
    /// Parses options from `std::env::args`, exiting with a usage message
    /// on malformed input.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let usage = || -> ! {
            eprintln!("usage: [--tsim <secs>] [--runs <n>] [--seed <n>] [--threads <n>] [--paper]");
            std::process::exit(2);
        };
        while i < args.len() {
            match args[i].as_str() {
                "--tsim" => {
                    i += 1;
                    let secs: f64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage());
                    opts.t_sim = SimDuration::from_secs(secs);
                }
                "--runs" => {
                    i += 1;
                    opts.runs = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--paper" => {
                    opts.t_sim = SimDuration::from_secs(600.0);
                    opts.runs = 3;
                }
                _ => usage(),
            }
            i += 1;
        }
        opts
    }

    /// The simulation protocol these options describe. Every evaluator a
    /// binary constructs — sequential or shared — must come from this one
    /// value so `--tsim`/`--runs`/`--seed` cannot drift between workers.
    pub fn protocol(&self) -> SimProtocol {
        SimProtocol::new(self.t_sim, self.runs, self.seed)
    }

    /// A fresh memoizing simulator evaluator under these options.
    pub fn evaluator(&self) -> SimEvaluator {
        self.protocol().evaluator()
    }

    /// A fresh cache-backed evaluator for pool-based sweeps.
    pub fn shared_evaluator(&self) -> hi_core::SharedSimEvaluator {
        self.protocol().shared_evaluator()
    }

    /// An execution context with these options' thread count.
    pub fn exec_context(&self) -> ExecContext {
        ExecContext::new(self.threads)
    }
}

/// Evaluates `points` on the `hi-exec` engine with per-point
/// deterministic seeding.
///
/// Results are returned in the input order regardless of scheduling, so
/// sweeps are reproducible: the per-point seed derivation in
/// [`SimProtocol`] makes the measurements bit-identical to a sequential
/// sweep for any `--threads` value.
pub fn parallel_sweep(points: &[DesignPoint], opts: &ExpOptions) -> Vec<Evaluation> {
    let exec = opts.exec_context();
    let evaluator = opts.shared_evaluator();
    exec.eval_points(&evaluator, points)
        .into_iter()
        .map(|e| e.expect("sweep is never cancelled"))
        .collect()
}

/// Picks, per reliability floor, the lifetime-optimal point of a sweep —
/// the "arrows" of the paper's Fig. 3.
pub fn optima_per_floor(
    sweep: &[(DesignPoint, Evaluation)],
    floors: &[f64],
) -> Vec<(f64, Option<(DesignPoint, Evaluation)>)> {
    floors
        .iter()
        .map(|&floor| {
            let best = sweep
                .iter()
                .filter(|(_, e)| e.pdr >= floor)
                .min_by(|(_, a), (_, b)| {
                    a.power_mw.partial_cmp(&b.power_mw).expect("finite powers")
                })
                .map(|&(p, e)| (p, e));
            (floor, best)
        })
        .collect()
}

/// The (reliability, lifetime) Pareto front of a sweep: every point not
/// dominated by another with both a higher-or-equal PDR and a
/// higher-or-equal lifetime (one strictly). Sorted by descending PDR.
pub fn pareto_front(sweep: &[(DesignPoint, Evaluation)]) -> Vec<(DesignPoint, Evaluation)> {
    let mut sorted: Vec<&(DesignPoint, Evaluation)> = sweep.iter().collect();
    // Descending PDR; lifetime breaks ties descending so the scan below
    // keeps the best representative per PDR level.
    sorted.sort_by(|(_, a), (_, b)| {
        b.pdr
            .partial_cmp(&a.pdr)
            .expect("finite pdr")
            .then(b.nlt_days.partial_cmp(&a.nlt_days).expect("finite nlt"))
    });
    let mut front = Vec::new();
    let mut best_nlt = f64::NEG_INFINITY;
    let mut last_pdr = f64::INFINITY;
    for &&(p, e) in &sorted {
        if e.nlt_days > best_nlt + 1e-12 {
            // Equal-PDR entries after the first are dominated.
            if (e.pdr - last_pdr).abs() > 1e-12 {
                front.push((p, e));
                best_nlt = e.nlt_days;
                last_pdr = e.pdr;
            }
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::{DesignSpace, Evaluator};

    #[test]
    fn parallel_sweep_matches_sequential() {
        let opts = ExpOptions {
            t_sim: SimDuration::from_secs(3.0),
            runs: 1,
            seed: 5,
            threads: 4,
        };
        let points: Vec<_> = DesignSpace::paper_default()
            .points()
            .into_iter()
            .take(12)
            .collect();
        let par = parallel_sweep(&points, &opts);
        let mut evaluator = opts.evaluator();
        let seq: Vec<_> = points.iter().map(|p| evaluator.evaluate(p)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        use hi_core::{MacChoice, Placement, RouteChoice};
        use hi_net::TxPower;
        let pt = |p| DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: p,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let e = |pdr, nlt| Evaluation {
            pdr,
            nlt_days: nlt,
            power_mw: 1.0,
            latency_ms: 5.0,
        };
        let sweep = vec![
            (pt(TxPower::Minus20Dbm), e(0.5, 30.0)), // on front
            (pt(TxPower::Minus10Dbm), e(0.7, 25.0)), // on front
            (pt(TxPower::ZeroDbm), e(0.6, 20.0)),    // dominated by 0.7/25
            (pt(TxPower::ZeroDbm), e(0.9, 15.0)),    // on front
            (pt(TxPower::ZeroDbm), e(0.9, 10.0)),    // dominated (equal pdr)
        ];
        let front = pareto_front(&sweep);
        let pdrs: Vec<f64> = front.iter().map(|(_, e)| e.pdr).collect();
        assert_eq!(pdrs, vec![0.9, 0.7, 0.5]);
        assert_eq!(front[0].1.nlt_days, 15.0);
    }

    #[test]
    fn pareto_front_of_empty_sweep_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn optima_respect_floor() {
        use hi_core::{MacChoice, Placement, RouteChoice};
        use hi_net::TxPower;
        let pt = |p| DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: p,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let sweep = vec![
            (
                pt(TxPower::Minus20Dbm),
                Evaluation {
                    pdr: 0.5,
                    nlt_days: 30.0,
                    power_mw: 0.9,
                    latency_ms: 4.0,
                },
            ),
            (
                pt(TxPower::ZeroDbm),
                Evaluation {
                    pdr: 0.95,
                    nlt_days: 25.0,
                    power_mw: 1.1,
                    latency_ms: 6.0,
                },
            ),
        ];
        let out = optima_per_floor(&sweep, &[0.4, 0.9, 0.99]);
        assert_eq!(out[0].1.unwrap().1.power_mw, 0.9);
        assert_eq!(out[1].1.unwrap().1.power_mw, 1.1);
        assert!(out[2].1.is_none());
    }
}
