//! `hi-exec` — deterministic parallel execution for the `hi-opt` workspace.
//!
//! Every search engine in the workspace (exhaustive sweeps, Algorithm 1's
//! candidate-pool evaluation, simulated-annealing restarts) spends almost
//! all of its time inside independent per-point simulations. This crate
//! provides the three pieces needed to run them on all cores **without
//! changing any result**:
//!
//! * [`ThreadPool`] — a work-stealing pool (per-worker deques plus a
//!   global injector, condvar-based parking) whose [`ThreadPool::par_map`]
//!   always returns results in input order and re-raises worker panics on
//!   the calling thread;
//! * [`EvalCache`] — a sharded concurrent memo cache with exactly-once
//!   compute semantics: when several workers race on the same key, one
//!   simulates and the rest wait, so the unique-evaluation count is
//!   independent of the thread count;
//! * [`CancelToken`] — cooperative cancellation, checked between tasks so
//!   a search can stop in-flight batches as soon as it knows their result
//!   can no longer matter;
//! * [`Supervisor`] — deterministic retry supervision over a transient /
//!   permanent / deadline [`ErrorKind`] taxonomy, with an optional
//!   [`ChaosPolicy`] that injects worker panics, spurious transient
//!   errors and cache-entry drops keyed by `(fingerprint, attempt)` so
//!   the recovery machinery itself is testable and reproducible.
//!
//! # Determinism contract
//!
//! `par_map` assigns task *i* the *i*-th input and stores its result in
//! slot *i*; scheduling only decides *when* a task runs, never *what* it
//! computes or *where* its result lands. Combined with per-key
//! exactly-once caching, any reduction over `par_map` output in input
//! order is bit-identical for every thread count, including 1.
//!
//! The crate is `std`-only and contains no `unsafe` code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod cancel;
mod error;
mod pool;
mod supervise;
mod sync;

#[cfg(all(test, feature = "shadow"))]
mod model_tests;

pub use cache::EvalCache;
pub use cancel::CancelToken;
pub use error::{ErrorKind, EvalError};
pub use pool::{PoolStats, ThreadPool};
pub use supervise::{backoff_delay_ms, ChaosPolicy, RetryPolicy, SupervisionReport, Supervisor};

/// The default worker-thread count: the `HI_EXEC_THREADS` environment
/// variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (falling back to 4 if even that
/// is unknown).
///
/// CI runs the whole test suite twice — `HI_EXEC_THREADS=1` and unset —
/// to prove results do not depend on this value.
pub fn default_threads() -> usize {
    match std::env::var("HI_EXEC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
