#!/bin/sh
# Full offline CI gate: formatting, lints, release build, tests.
# The test suite runs twice — pinned to one worker and at the default
# thread count — because the execution engine's contract is that results
# are bit-identical for any parallelism; a test that passes in one mode
# and fails in the other IS the divergence we're gating on.
# Benches run in quick mode so the whole script stays under a few minutes.
set -eux

cargo fmt --all --check
cargo clippy --all-targets -- -D warnings
cargo build --release
HI_EXEC_THREADS=1 cargo test -q
cargo test -q

# Cross-thread CLI divergence gate: the same exploration at 1 and 8
# workers must print byte-identical output.
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 1 > /tmp/hi_ci_t1.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 > /tmp/hi_ci_t8.txt
diff /tmp/hi_ci_t1.txt /tmp/hi_ci_t8.txt

# Robust (fault-injected) exploration must be just as thread-invariant:
# same suite, same floor, 1 vs 8 workers, byte-identical stdout.
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 1 \
    --faults scenarios/demo.suite --robust worst > /tmp/hi_ci_rob_t1.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --robust worst > /tmp/hi_ci_rob_t8.txt
diff /tmp/hi_ci_rob_t1.txt /tmp/hi_ci_rob_t8.txt

# ...and must pick a more conservative optimum than the nominal run on
# the demo suite (the whole point of Γ-robust feasibility).
! diff -q /tmp/hi_ci_t1.txt /tmp/hi_ci_rob_t1.txt > /dev/null

# Graceful-degradation gate: a run interrupted by --budget and resumed
# from its --checkpoint must print byte-identical stdout to an
# uninterrupted run of the same exploration.
rm -f /tmp/hi_ci_cp.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --budget 20 --checkpoint /tmp/hi_ci_cp.txt > /tmp/hi_ci_partial.txt
grep -q BudgetExhausted /tmp/hi_ci_partial.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --checkpoint /tmp/hi_ci_cp.txt --resume > /tmp/hi_ci_resumed.txt
diff /tmp/hi_ci_t8.txt /tmp/hi_ci_resumed.txt

HI_BENCH_QUICK=1 cargo bench
