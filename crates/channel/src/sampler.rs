//! The composite channel: average path loss plus temporal variation.

use hi_des::{rng, SimTime};

use crate::{BodyLocation, OuProcess, PathLossMatrix, PathLossParams, VariationParams};

/// Anything that can report the instantaneous path loss between two body
/// sites. Network simulators consume the channel through this trait so
/// tests can inject deterministic channels.
pub trait ChannelModel {
    /// Instantaneous path loss `PL_ij(t)` in dB.
    ///
    /// Implementations must be symmetric (`(a, b)` and `(b, a)` observe the
    /// same value at the same time) and must be queried with non-decreasing
    /// `t` per link.
    fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, t: SimTime) -> f64;
}

/// Parameters of the full stochastic channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelParams {
    /// Average path loss model parameters.
    pub path_loss: PathLossParams,
    /// Temporal variation parameters.
    pub variation: VariationParams,
}

/// The paper's time-varying probabilistic channel (eq. 1):
/// `PL_ij(t) = PL̄_ij + δPL_ij(t)`.
///
/// Each unordered link `(i, j)` owns an independent [`OuProcess`] with its
/// own RNG stream derived from the master seed, so runs are reproducible
/// and links are decorrelated.
#[derive(Debug)]
pub struct Channel {
    matrix: PathLossMatrix,
    links: Vec<(OuProcess, rng::Rng)>,
    variation: VariationParams,
}

impl Channel {
    /// Builds a channel with the synthetic average-loss matrix.
    pub fn new(params: ChannelParams, seed: u64) -> Self {
        Self::with_matrix(
            PathLossMatrix::synthetic(&params.path_loss),
            params.variation,
            seed,
        )
    }

    /// Builds a channel over an explicit average-loss matrix.
    pub fn with_matrix(matrix: PathLossMatrix, variation: VariationParams, seed: u64) -> Self {
        let n = BodyLocation::COUNT;
        let links = (0..n * (n - 1) / 2)
            .map(|k| (OuProcess::new(variation), rng::stream(seed, k as u64)))
            .collect();
        Self {
            matrix,
            links,
            variation,
        }
    }

    /// The average-loss matrix in use.
    pub fn matrix(&self) -> &PathLossMatrix {
        &self.matrix
    }

    /// The variation parameters in use.
    pub fn variation_params(&self) -> VariationParams {
        self.variation
    }

    /// Index of the unordered pair `(a, b)` into the link-state vector.
    fn link_index(a: BodyLocation, b: BodyLocation) -> usize {
        let (lo, hi) = if a.index() < b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        // Triangular indexing over pairs with lo < hi.
        let n = BodyLocation::COUNT;
        lo * (2 * n - lo - 1) / 2 + (hi - lo - 1)
    }
}

impl ChannelModel for Channel {
    fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, t: SimTime) -> f64 {
        if a == b {
            return 0.0;
        }
        let idx = Self::link_index(a, b);
        let (process, rng) = &mut self.links[idx];
        self.matrix.loss_db(a, b) + process.sample(t, rng)
    }
}

/// A channel with no temporal variation: `PL_ij(t) = PL̄_ij`.
///
/// Useful for unit tests and for isolating the effect of fading in
/// ablation experiments.
#[derive(Debug, Clone)]
pub struct StaticChannel {
    matrix: PathLossMatrix,
}

impl StaticChannel {
    /// Builds a static channel from explicit average losses.
    pub fn new(matrix: PathLossMatrix) -> Self {
        Self { matrix }
    }

    /// Builds a static channel with the synthetic default matrix.
    pub fn synthetic(params: &PathLossParams) -> Self {
        Self {
            matrix: PathLossMatrix::synthetic(params),
        }
    }

    /// A uniform channel where every link has the same loss (testing aid).
    pub fn uniform(loss_db: f64) -> Self {
        let mut values = [[loss_db; BodyLocation::COUNT]; BodyLocation::COUNT];
        for (i, row) in values.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        Self {
            matrix: PathLossMatrix::from_values(values),
        }
    }
}

impl ChannelModel for StaticChannel {
    fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, _t: SimTime) -> f64 {
        self.matrix.loss_db(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_index_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                if a == b {
                    continue;
                }
                let idx = Channel::link_index(a, b);
                assert_eq!(idx, Channel::link_index(b, a));
                if a.index() < b.index() {
                    assert!(seen.insert(idx), "duplicate index {idx}");
                }
                assert!(idx < 45);
            }
        }
        assert_eq!(seen.len(), 45);
    }

    #[test]
    fn channel_is_symmetric_at_same_time() {
        let mut ch = Channel::new(ChannelParams::default(), 11);
        let t = SimTime::from_secs(2.0);
        let ab = ch.path_loss_db(BodyLocation::Chest, BodyLocation::Back, t);
        let ba = ch.path_loss_db(BodyLocation::Back, BodyLocation::Chest, t);
        assert_eq!(ab, ba);
    }

    #[test]
    fn self_loss_is_zero() {
        let mut ch = Channel::new(ChannelParams::default(), 1);
        assert_eq!(
            ch.path_loss_db(BodyLocation::Head, BodyLocation::Head, SimTime::ZERO),
            0.0
        );
    }

    #[test]
    fn reproducible_across_instances() {
        let sample_all = |seed| {
            let mut ch = Channel::new(ChannelParams::default(), seed);
            let mut out = Vec::new();
            for k in 1..=5 {
                let t = SimTime::from_secs(k as f64 * 0.05);
                out.push(ch.path_loss_db(BodyLocation::Chest, BodyLocation::LeftWrist, t));
            }
            out
        };
        assert_eq!(sample_all(99), sample_all(99));
        assert_ne!(sample_all(99), sample_all(100));
    }

    #[test]
    fn variation_fluctuates_around_mean() {
        let params = ChannelParams::default();
        let mean = PathLossMatrix::synthetic(&params.path_loss)
            .loss_db(BodyLocation::Chest, BodyLocation::LeftHip);
        let mut ch = Channel::new(params, 5);
        let mut sum = 0.0;
        let n = 5_000;
        for k in 0..n {
            // Large gaps so samples are nearly independent.
            let t = SimTime::from_secs(10.0 * (k + 1) as f64);
            sum += ch.path_loss_db(BodyLocation::Chest, BodyLocation::LeftHip, t);
        }
        let avg = sum / n as f64;
        assert!((avg - mean).abs() < 0.5, "avg {avg} vs mean {mean}");
    }

    #[test]
    fn static_channel_is_time_invariant() {
        let mut ch = StaticChannel::uniform(70.0);
        let a = ch.path_loss_db(BodyLocation::Chest, BodyLocation::Back, SimTime::ZERO);
        let b = ch.path_loss_db(
            BodyLocation::Chest,
            BodyLocation::Back,
            SimTime::from_secs(100.0),
        );
        assert_eq!(a, 70.0);
        assert_eq!(a, b);
    }

    #[test]
    fn independent_links_have_independent_fading() {
        let mut ch = Channel::new(ChannelParams::default(), 8);
        let t = SimTime::from_secs(1.0);
        let base = PathLossMatrix::synthetic(&PathLossParams::default());
        let d1 = ch.path_loss_db(BodyLocation::Chest, BodyLocation::LeftHip, t)
            - base.loss_db(BodyLocation::Chest, BodyLocation::LeftHip);
        let d2 = ch.path_loss_db(BodyLocation::Chest, BodyLocation::RightHip, t)
            - base.loss_db(BodyLocation::Chest, BodyLocation::RightHip);
        // Not a statistical test; just checks the deltas are not the
        // literally shared value a single-stream bug would produce.
        assert_ne!(d1, d2);
    }
}
