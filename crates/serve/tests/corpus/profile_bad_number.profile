profile a
# line 2 comment
geometry tall
