//! Microbenchmark B5: the pool-backed design-space sweep.
//!
//! Runs the same exhaustive sweep (real discrete-event simulator, short
//! protocol) sequentially and on the `hi-exec` pool, and reports the
//! measured speedup. A fresh evaluator is built per iteration so every
//! iteration pays the full simulation cost rather than hitting the cache.
//! On a single-core host the ratio is expected to be ~1x (the engine's
//! value there is determinism + shared caching, not speedup); on
//! multi-core hosts it should approach the worker count for this
//! embarrassingly parallel workload.

use std::time::Instant;

use hi_bench::micro::Runner;
use hi_bench::{parallel_sweep, ExpOptions};
use hi_core::DesignSpace;
use hi_des::SimDuration;

fn main() {
    let quick = std::env::var_os("HI_BENCH_QUICK").is_some();
    let runner = Runner::new("sweep");
    let mut points = DesignSpace::paper_default().points();
    if quick {
        points.truncate(24);
    }
    let opts = |threads: usize| ExpOptions {
        t_sim: SimDuration::from_secs(2.0),
        runs: 1,
        seed: 7,
        threads,
    };
    let threads = hi_exec::default_threads();

    runner.bench("exhaustive_sequential", || {
        parallel_sweep(&points, &opts(1))
    });
    runner.bench(&format!("exhaustive_pool_{threads}threads"), || {
        parallel_sweep(&points, &opts(threads))
    });

    // One paired measurement for the headline ratio (the Runner prints
    // per-variant stats above; this line makes the comparison explicit).
    let t0 = Instant::now();
    let seq = parallel_sweep(&points, &opts(1));
    let sequential = t0.elapsed();
    let t1 = Instant::now();
    let par = parallel_sweep(&points, &opts(threads));
    let pooled = t1.elapsed();
    assert_eq!(seq, par, "pool changed the sweep's results");
    println!(
        "  sweep/speedup_{}pts_{}threads          {:.2}x (seq {:.3?} vs pool {:.3?})",
        points.len(),
        threads,
        sequential.as_secs_f64() / pooled.as_secs_f64().max(1e-9),
        sequential,
        pooled
    );
}
