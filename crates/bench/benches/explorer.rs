//! Microbenchmark B4: the search loops themselves. An instant analytic
//! oracle stands in for the simulator, so these measure the pure
//! orchestration cost of Algorithm 1 (MILP queries, pool expansion,
//! bookkeeping) and of the baselines — the overhead on top of `RunSim`.

use criterion::{criterion_group, criterion_main, Criterion};
use hi_core::power::analytic_power_mw;
use hi_core::{
    exhaustive_search, explore, simulated_annealing, DesignPoint, Evaluation, FnEvaluator,
    Problem, RouteChoice, SaParams,
};
use hi_net::{AppParams, TxPower};

fn oracle(point: &DesignPoint) -> Evaluation {
    let app = AppParams::default();
    let base = match point.tx_power {
        TxPower::Minus20Dbm => 0.45,
        TxPower::Minus10Dbm => 0.70,
        TxPower::ZeroDbm => 0.93,
    };
    let bonus: f64 = if point.routing == RouteChoice::Mesh { 0.06 } else { 0.0 };
    let power = analytic_power_mw(point, &app);
    Evaluation {
        pdr: (base + bonus).min(1.0),
        nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
        power_mw: power,
    }
}

fn bench_explorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer_oracle");
    group.bench_function("algorithm1_pdr90", |b| {
        let problem = Problem::paper_default(0.90);
        b.iter(|| {
            let mut ev = FnEvaluator::new(oracle);
            std::hint::black_box(explore(&problem, &mut ev).expect("explore").simulations)
        })
    });
    group.bench_function("exhaustive_pdr90", |b| {
        let problem = Problem::paper_default(0.90);
        b.iter(|| {
            let mut ev = FnEvaluator::new(oracle);
            std::hint::black_box(exhaustive_search(&problem, &mut ev).simulations)
        })
    });
    group.bench_function("annealing_pdr90_300steps", |b| {
        let problem = Problem::paper_default(0.90);
        b.iter(|| {
            let mut ev = FnEvaluator::new(oracle);
            let out = simulated_annealing(
                &problem,
                &mut ev,
                SaParams {
                    steps: 300,
                    ..Default::default()
                },
                7,
            );
            std::hint::black_box(out.simulations)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
