//! Engine-level contracts of the Γ-robust engines: cross-thread
//! determinism, price-of-robustness monotonicity in Γ, and the
//! restriction-and-repair heuristic tracking the exact robust MILP.
//!
//! All tests run the real discrete-event simulator behind a worst-case
//! [`RobustEvaluator`] over the demo fault suite (inlined below so the
//! crate's tests stay hermetic), with a short protocol sized for CI.

use hi_core::{
    ilp_heuristic_search, parse_fault_suite, robust_milp_search, ExecContext, ExploreOptions,
    FaultSuite, Problem, RobustEvaluator, RobustMode, RobustOutcome, RobustnessSpec, SimProtocol,
    StopReason,
};
use hi_des::SimDuration;

/// `scenarios/demo.suite`: a wrist reboot, a torso shadowing and a
/// passing wideband interferer.
const DEMO_SUITE: &str = "\
scenario wrist reboot
outage 5 1 3

scenario torso shadowing
blackout 0 3 0.5 2.5
blackout 0 4 0.5 2.5

scenario passing interferer
interfere 2 4 9
";

fn protocol() -> SimProtocol {
    SimProtocol::new(SimDuration::from_secs(2.0), 1, 20_260_808)
}

fn demo_suite() -> FaultSuite {
    let (suite, _) = parse_fault_suite(DEMO_SUITE).expect("demo suite parses");
    suite
}

fn run_engine(milp: bool, gamma: u32, threads: usize, pdr_min: f64) -> RobustOutcome {
    let suite = demo_suite();
    let spec = RobustnessSpec::from_suite(&suite, gamma);
    let problem = Problem::paper_default(pdr_min);
    let exec = ExecContext::new(threads);
    let evaluator = RobustEvaluator::new(protocol(), suite, RobustMode::WorstCase);
    let mut observer = |_: &hi_core::ExploreCheckpoint| {};
    let result = if milp {
        robust_milp_search(
            &problem,
            &spec,
            &evaluator,
            ExploreOptions::default(),
            &exec,
            None,
            &mut observer,
        )
    } else {
        ilp_heuristic_search(
            &problem,
            &spec,
            &evaluator,
            ExploreOptions::default(),
            &exec,
            None,
            &mut observer,
        )
    };
    result.expect("robust engine succeeds")
}

#[test]
fn robust_engines_are_bit_identical_across_thread_counts() {
    for milp in [true, false] {
        let baseline = run_engine(milp, 2, 1, 0.6);
        assert!(
            baseline.outcome.best.is_some(),
            "a 60% worst-case floor must be reachable (milp = {milp})"
        );
        let threaded = run_engine(milp, 2, 8, 0.6);
        assert_eq!(
            baseline, threaded,
            "8 threads changed the outcome (milp = {milp})"
        );
    }
}

#[test]
fn price_of_robustness_is_monotone_in_gamma() {
    let mut prev_robust = f64::NEG_INFINITY;
    let mut nominal_bits = None;
    for gamma in [1, 2, 3] {
        let out = run_engine(true, gamma, 1, 0.6);
        assert_eq!(out.outcome.stop_reason, StopReason::BoundProven);
        let nominal = out.nominal_power_mw.expect("nominal model is feasible");
        let robust = out.robust_power_mw.expect("a witness was accepted");
        // The baseline never depends on the budget...
        let bits = *nominal_bits.get_or_insert(nominal.to_bits());
        assert_eq!(bits, nominal.to_bits(), "nominal baseline moved with gamma");
        // ...while every design's robust cost grows with it, so the
        // accepted minimum does too (ties equal up to float summation
        // order, hence the slack).
        assert!(
            robust > nominal,
            "gamma = {gamma}: robustness must cost something ({robust} vs {nominal})"
        );
        assert!(
            robust >= prev_robust - 1e-9,
            "gamma = {gamma}: price of robustness regressed ({robust} after {prev_robust})"
        );
        prev_robust = robust;
    }
}

#[test]
fn ilp_heuristic_tracks_the_robust_milp() {
    let exact = run_engine(true, 2, 1, 0.6);
    let heuristic = run_engine(false, 2, 1, 0.6);
    let (_, exact_eval) = exact.outcome.best.expect("exact engine finds a design");
    let (_, heur_eval) = heuristic.outcome.best.expect("heuristic finds a design");
    // The restriction may land on a different design, but its measured
    // worst power must stay within 5% of the exact robust optimum's.
    assert!(
        heur_eval.power_mw <= exact_eval.power_mw * 1.05,
        "heuristic gap above 5%: {} mW vs {} mW",
        heur_eval.power_mw,
        exact_eval.power_mw
    );
    // The restricted model explores a subset of the placements, so the
    // heuristic never spends more simulations than the full model.
    assert!(
        heuristic.outcome.simulations <= exact.outcome.simulations,
        "heuristic spent more simulations ({}) than the exact engine ({})",
        heuristic.outcome.simulations,
        exact.outcome.simulations
    );
    assert_eq!(exact.repairs, 0, "the full model never repairs");
}
