//! Performance evaluation of design points (Algorithm 1's `RunSim`).

use std::collections::HashMap;

use hi_channel::ChannelParams;
use hi_des::SimDuration;
use hi_net::simulate_averaged;

use crate::point::DesignPoint;

/// The simulated performance of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Network packet delivery ratio in `[0, 1]` (eq. 7).
    pub pdr: f64,
    /// Network lifetime in days (eq. 4).
    pub nlt_days: f64,
    /// Simulated power of the lifetime-limiting node, mW (`P̄sim`).
    pub power_mw: f64,
}

/// Anything that can measure a design point. Algorithm 1 and the baseline
/// searches consume evaluations through this trait, so tests and benches
/// can substitute deterministic oracles for the (expensive) simulator.
pub trait Evaluator {
    /// Measures (or recalls) the performance of `point`.
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation;

    /// Number of *unique* expensive evaluations performed so far — the
    /// simulation-count metric behind the paper's "87% fewer simulations".
    fn unique_evaluations(&self) -> u64;
}

/// The production evaluator: runs the discrete-event simulator (averaged
/// over `runs` seeds), memoizing results per design point.
#[derive(Debug)]
pub struct SimEvaluator {
    channel: ChannelParams,
    t_sim: SimDuration,
    runs: u32,
    base_seed: u64,
    cache: HashMap<DesignPoint, Evaluation>,
    unique: u64,
}

impl SimEvaluator {
    /// Creates an evaluator with the paper's protocol: each evaluation is
    /// `runs` simulations of `t_sim` averaged together.
    pub fn new(channel: ChannelParams, t_sim: SimDuration, runs: u32, base_seed: u64) -> Self {
        Self {
            channel,
            t_sim,
            runs,
            base_seed,
            cache: HashMap::new(),
            unique: 0,
        }
    }

    /// The paper's §4 protocol: `Tsim = 600 s`, 3 runs.
    pub fn paper_protocol(channel: ChannelParams, base_seed: u64) -> Self {
        Self::new(channel, SimDuration::from_secs(600.0), 3, base_seed)
    }

    /// Number of cached evaluations.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

impl Evaluator for SimEvaluator {
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation {
        if let Some(e) = self.cache.get(point) {
            return *e;
        }
        let cfg = point.to_network_config();
        // Derive the seed from the point so evaluation order cannot change
        // results (full determinism regardless of search strategy).
        let seed = self.base_seed
            ^ hi_des::rng::derive_seed(u64::from(point.placement.mask()), point_tag(point));
        let out = simulate_averaged(&cfg, self.channel, self.t_sim, seed, self.runs)
            .expect("design points lower to valid configs");
        let eval = Evaluation {
            pdr: out.pdr,
            nlt_days: out.nlt_days,
            power_mw: out.max_power_mw,
        };
        self.cache.insert(*point, eval);
        self.unique += 1;
        eval
    }

    fn unique_evaluations(&self) -> u64 {
        self.unique
    }
}

fn point_tag(point: &DesignPoint) -> u64 {
    use crate::point::{MacChoice, RouteChoice};
    use hi_net::TxPower;
    let p = match point.tx_power {
        TxPower::Minus20Dbm => 0u64,
        TxPower::Minus10Dbm => 1,
        TxPower::ZeroDbm => 2,
    };
    let m = match point.mac {
        MacChoice::Csma => 0u64,
        MacChoice::Tdma => 1,
    };
    let r = match point.routing {
        RouteChoice::Star => 0u64,
        RouteChoice::Mesh => 1,
    };
    p | (m << 2) | (r << 3)
}

/// A deterministic test/bench oracle backed by a closure.
pub struct FnEvaluator<F: FnMut(&DesignPoint) -> Evaluation> {
    f: F,
    cache: HashMap<DesignPoint, Evaluation>,
    unique: u64,
}

impl<F: FnMut(&DesignPoint) -> Evaluation> std::fmt::Debug for FnEvaluator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnEvaluator")
            .field("unique", &self.unique)
            .finish()
    }
}

impl<F: FnMut(&DesignPoint) -> Evaluation> FnEvaluator<F> {
    /// Wraps a closure as a memoized evaluator.
    pub fn new(f: F) -> Self {
        Self {
            f,
            cache: HashMap::new(),
            unique: 0,
        }
    }
}

impl<F: FnMut(&DesignPoint) -> Evaluation> Evaluator for FnEvaluator<F> {
    fn evaluate(&mut self, point: &DesignPoint) -> Evaluation {
        if let Some(e) = self.cache.get(point) {
            return *e;
        }
        let e = (self.f)(point);
        self.cache.insert(*point, e);
        self.unique += 1;
        e
    }

    fn unique_evaluations(&self) -> u64 {
        self.unique
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;

    fn pt() -> DesignPoint {
        DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        }
    }

    #[test]
    fn fn_evaluator_memoizes() {
        let mut calls = 0;
        let mut ev = FnEvaluator::new(|_p| {
            calls += 1;
            Evaluation {
                pdr: 0.9,
                nlt_days: 10.0,
                power_mw: 1.0,
            }
        });
        let a = ev.evaluate(&pt());
        let b = ev.evaluate(&pt());
        assert_eq!(a, b);
        assert_eq!(ev.unique_evaluations(), 1);
    }

    #[test]
    fn sim_evaluator_caches_and_counts() {
        let mut ev =
            SimEvaluator::new(ChannelParams::default(), SimDuration::from_secs(5.0), 1, 42);
        let a = ev.evaluate(&pt());
        assert_eq!(ev.unique_evaluations(), 1);
        let b = ev.evaluate(&pt());
        assert_eq!(ev.unique_evaluations(), 1);
        assert_eq!(a, b);
        assert_eq!(ev.cache_len(), 1);
        assert!(a.pdr >= 0.0 && a.pdr <= 1.0);
        assert!(a.power_mw > 0.1);
    }

    #[test]
    fn sim_evaluator_is_order_independent() {
        let mk = || SimEvaluator::new(ChannelParams::default(), SimDuration::from_secs(5.0), 1, 7);
        let p1 = pt();
        let mut p2 = pt();
        p2.tx_power = TxPower::Minus10Dbm;
        let mut a = mk();
        let r1 = (a.evaluate(&p1), a.evaluate(&p2));
        let mut b = mk();
        let r2 = (b.evaluate(&p2), b.evaluate(&p1));
        assert_eq!(r1.0, r2.1);
        assert_eq!(r1.1, r2.0);
    }
}
