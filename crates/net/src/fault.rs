//! Scenario-scripted fault injection for the WBAN simulator.
//!
//! A [`FaultScenario`] is a deterministic script of disturbances applied
//! to one simulation run: node crash/recover windows, link blackout
//! intervals, battery-depletion events and wideband interference bursts.
//! Every entry references a **body site index** (the paper's `n_i`,
//! 0–9), not a node index into one configuration's placement vector, so
//! the same scenario applies uniformly across every design point the
//! exploration proposes — a fault on an unoccupied site is simply a
//! no-op. That property is what lets the robust evaluator in `hi-core`
//! score wildly different placements against one common fault suite.
//!
//! Scenarios are plain data and carry no randomness of their own; a
//! fault-injected run is exactly as reproducible as a nominal one, which
//! keeps the whole robustness layer inside the `hi-exec` bit-identical
//! determinism contract.

use hi_channel::BodyLocation;
use hi_des::{SimDuration, SimTime, Window};

/// Path-loss penalty (dB) that no link budget survives: an active
/// blackout adds this to the channel's loss, so the link never closes.
pub const BLACKOUT_LOSS_DB: f64 = 1e9;

/// A node crash/recover window: the node at `site` is down for the
/// whole window and comes back (with an empty queue and a restarted
/// application) when it closes. An open-ended window is a permanent
/// crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteOutage {
    /// Body site index (0–9) of the affected node.
    pub site: usize,
    /// When the node is down.
    pub window: Window,
}

/// A bidirectional link blackout between two body sites (e.g. a posture
/// shadowing the torso–ankle path): while active, no frame crosses the
/// link in either direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBlackout {
    /// One endpoint's body site index.
    pub site_a: usize,
    /// The other endpoint's body site index.
    pub site_b: usize,
    /// When the link is dark.
    pub window: Window,
}

/// A battery-depletion event: the node at `site` dies at `at` and never
/// recovers (unlike a crash window, there is nothing to come back to).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryDepletion {
    /// Body site index (0–9) of the depleted node.
    pub site: usize,
    /// Depletion instant, relative to simulation start.
    pub at: SimDuration,
}

/// A wideband interference burst: while active, every link in the
/// network suffers `extra_loss_db` of additional path loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceBurst {
    /// When the interferer is on.
    pub window: Window,
    /// Additional path loss applied to every link, dB.
    pub extra_loss_db: f64,
}

/// One deterministic fault script, applied to a single simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScenario {
    /// Human-readable label (shown in reports and lint findings).
    pub name: String,
    /// Node crash/recover windows.
    pub outages: Vec<SiteOutage>,
    /// Link blackout intervals.
    pub blackouts: Vec<LinkBlackout>,
    /// Battery-depletion events.
    pub depletions: Vec<BatteryDepletion>,
    /// Interference bursts.
    pub bursts: Vec<InterferenceBurst>,
}

impl FaultScenario {
    /// The empty scenario: no faults at all (the paper's setting).
    pub fn nominal() -> Self {
        Self::default()
    }

    /// A named, empty scenario to be filled in.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// True if the scenario injects nothing.
    pub fn is_nominal(&self) -> bool {
        self.outages.is_empty()
            && self.blackouts.is_empty()
            && self.depletions.is_empty()
            && self.bursts.is_empty()
    }

    /// True if any entry references `site`.
    pub fn touches_site(&self, site: usize) -> bool {
        self.outages.iter().any(|o| o.site == site)
            || self.depletions.iter().any(|d| d.site == site)
            || self
                .blackouts
                .iter()
                .any(|b| b.site_a == site || b.site_b == site)
    }

    /// The extra path loss (dB) injected on the link between body sites
    /// `a` and `b` at time `t`: [`BLACKOUT_LOSS_DB`] while a blackout of
    /// that (unordered) pair is active, plus the loss of every active
    /// interference burst.
    pub fn link_extra_loss_db(&self, a: usize, b: usize, t: SimTime) -> f64 {
        let mut loss = 0.0;
        for blackout in &self.blackouts {
            let hits = (blackout.site_a == a && blackout.site_b == b)
                || (blackout.site_a == b && blackout.site_b == a);
            if hits && blackout.window.active(t) {
                loss += BLACKOUT_LOSS_DB;
            }
        }
        for burst in &self.bursts {
            if burst.window.active(t) {
                loss += burst.extra_loss_db;
            }
        }
        loss
    }

    /// Structural validity: every referenced site exists and every
    /// injected loss is finite and non-negative. Inverted or overlapping
    /// windows are *not* errors here — they are the lint layer's
    /// business (`hi-lint` HL033+), because a malformed script should be
    /// explained, not silently rejected.
    pub(crate) fn validate(&self) -> Result<(), crate::params::ConfigError> {
        use crate::params::ConfigError;
        let bad_site = |s: usize| s >= BodyLocation::COUNT;
        for o in &self.outages {
            if bad_site(o.site) {
                return Err(ConfigError::BadScenarioSite(o.site));
            }
        }
        for d in &self.depletions {
            if bad_site(d.site) {
                return Err(ConfigError::BadScenarioSite(d.site));
            }
        }
        for b in &self.blackouts {
            if bad_site(b.site_a) {
                return Err(ConfigError::BadScenarioSite(b.site_a));
            }
            if bad_site(b.site_b) {
                return Err(ConfigError::BadScenarioSite(b.site_b));
            }
        }
        for burst in &self.bursts {
            if !burst.extra_loss_db.is_finite() || burst.extra_loss_db < 0.0 {
                return Err(ConfigError::BadScenarioLoss);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn nominal_scenario_injects_nothing() {
        let s = FaultScenario::nominal();
        assert!(s.is_nominal());
        assert_eq!(s.link_extra_loss_db(0, 3, t(1.0)), 0.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn blackout_is_bidirectional_and_windowed() {
        let mut s = FaultScenario::named("blackout");
        s.blackouts.push(LinkBlackout {
            site_a: 0,
            site_b: 3,
            window: Window::from_secs(1.0, 2.0),
        });
        assert!(s.link_extra_loss_db(0, 3, t(1.5)) >= BLACKOUT_LOSS_DB);
        assert!(s.link_extra_loss_db(3, 0, t(1.5)) >= BLACKOUT_LOSS_DB);
        assert_eq!(s.link_extra_loss_db(0, 3, t(2.5)), 0.0);
        assert_eq!(s.link_extra_loss_db(0, 5, t(1.5)), 0.0, "other links clear");
    }

    #[test]
    fn bursts_hit_every_link_and_stack() {
        let mut s = FaultScenario::named("interference");
        s.bursts.push(InterferenceBurst {
            window: Window::from_secs(0.0, 5.0),
            extra_loss_db: 20.0,
        });
        s.bursts.push(InterferenceBurst {
            window: Window::from_secs(1.0, 2.0),
            extra_loss_db: 10.0,
        });
        assert_eq!(s.link_extra_loss_db(4, 7, t(1.5)), 30.0);
        assert_eq!(s.link_extra_loss_db(4, 7, t(3.0)), 20.0);
    }

    #[test]
    fn validation_rejects_bad_sites_and_losses() {
        let mut s = FaultScenario::named("bad");
        s.outages.push(SiteOutage {
            site: 10,
            window: Window::from_secs(0.0, 1.0),
        });
        assert!(s.validate().is_err());

        let mut s = FaultScenario::named("bad-loss");
        s.bursts.push(InterferenceBurst {
            window: Window::from_secs(0.0, 1.0),
            extra_loss_db: f64::NAN,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn touches_site_sees_all_entry_kinds() {
        let mut s = FaultScenario::named("x");
        s.depletions.push(BatteryDepletion {
            site: 2,
            at: SimDuration::from_secs(1.0),
        });
        s.blackouts.push(LinkBlackout {
            site_a: 0,
            site_b: 5,
            window: Window::from_secs(0.0, 1.0),
        });
        assert!(s.touches_site(2));
        assert!(s.touches_site(5));
        assert!(!s.touches_site(3));
    }
}
