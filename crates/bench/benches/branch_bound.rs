//! Microbenchmark B2: exact MILP solves — knapsacks and the paper's
//! relaxed problem `P̃` (the model Algorithm 1 queries every iteration),
//! including the cut ladder that drives the whole exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hi_core::{MilpEncoding, TopologyConstraints};
use hi_milp::{LinExpr, Model, Sense};
use hi_net::AppParams;

fn knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..n {
        let x = m.add_binary(&format!("x{i}"));
        weight.add_term(x, ((i * 7 + 3) % 10 + 1) as f64);
        value.add_term(x, ((i * 11 + 5) % 13 + 1) as f64);
    }
    m.add_constraint(weight, Sense::Le, (2 * n) as f64);
    m.maximize(value);
    m
}

fn bench_branch_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_bound");
    for n in [10usize, 20, 30] {
        let model = knapsack(n);
        group.bench_with_input(BenchmarkId::new("knapsack", n), &model, |b, m| {
            b.iter(|| std::hint::black_box(m.solve().expect("solves").objective()))
        });
    }
    // One MILP query of Algorithm 1 (paper problem, no cuts yet).
    let enc = MilpEncoding::new(&TopologyConstraints::paper_default(), &AppParams::default());
    group.bench_function("paper_p_tilde_pool", |b| {
        b.iter(|| std::hint::black_box(enc.solve_pool().expect("solves").1))
    });
    // The full 18-level cut ladder (a complete RunMILP sequence).
    group.bench_function("paper_cut_ladder", |b| {
        b.iter(|| {
            let mut enc =
                MilpEncoding::new(&TopologyConstraints::paper_default(), &AppParams::default());
            let mut levels = 0u32;
            loop {
                let (_, p) = enc.solve_pool().expect("solves");
                match p {
                    Some(p) => {
                        levels += 1;
                        enc.add_power_cut(p);
                    }
                    None => break,
                }
            }
            std::hint::black_box(levels)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_branch_bound);
criterion_main!(benches);
