//! Lints over discrete-event schedules.
//!
//! The DES kernel's contract is a monotone clock over finite times; these
//! rules check a recorded (or about-to-be-committed) event sequence for
//! violations *before* they corrupt a simulation — the static counterpart
//! of the kernel's debug-mode assertions.

use crate::report::{Finding, Report, RuleId, Span};

/// Lints an ordered sequence of event timestamps (seconds).
///
/// Fires [`RuleId::NonFiniteTime`] on NaN/infinite entries and
/// [`RuleId::NonMonotoneSchedule`] wherever a time precedes its
/// predecessor. Equal consecutive times are fine (simultaneous events are
/// FIFO-ordered by the kernel).
///
/// # Examples
///
/// ```
/// use hi_lint::{lint_schedule, RuleId};
///
/// let report = lint_schedule(&[0.0, 1.0, 0.5]);
/// assert!(report.has_rule(RuleId::NonMonotoneSchedule));
/// assert!(lint_schedule(&[0.0, 1.0, 1.0, 2.0]).is_clean());
/// ```
pub fn lint_schedule(times: &[f64]) -> Report {
    let mut report = Report::new();
    let mut last_finite: Option<(usize, f64)> = None;
    for (i, &t) in times.iter().enumerate() {
        if !t.is_finite() {
            report.push(Finding::new(
                RuleId::NonFiniteTime,
                Span::Event { index: i },
                format!("event time {t} is not finite"),
            ));
            continue;
        }
        if let Some((j, prev)) = last_finite {
            if t < prev {
                report.push(Finding::new(
                    RuleId::NonMonotoneSchedule,
                    Span::Event { index: i },
                    format!("time {t} precedes event #{j} at {prev}"),
                ));
            }
        }
        last_finite = Some((i, t));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_schedule_is_clean() {
        assert!(lint_schedule(&[0.0, 0.5, 0.5, 2.0]).is_clean());
    }

    #[test]
    fn empty_schedule_is_clean() {
        assert!(lint_schedule(&[]).is_clean());
    }

    #[test]
    fn backwards_time_fires() {
        let r = lint_schedule(&[0.0, 2.0, 1.0]);
        assert!(r.has_rule(RuleId::NonMonotoneSchedule));
        assert!(r.has_errors());
    }

    #[test]
    fn nan_time_fires_and_does_not_poison_ordering() {
        let r = lint_schedule(&[0.0, f64::NAN, 1.0]);
        assert!(r.has_rule(RuleId::NonFiniteTime));
        assert!(!r.has_rule(RuleId::NonMonotoneSchedule), "{r}");
    }

    #[test]
    fn infinite_time_fires() {
        let r = lint_schedule(&[0.0, f64::INFINITY]);
        assert!(r.has_rule(RuleId::NonFiniteTime));
    }

    #[test]
    fn each_regression_is_reported() {
        let r = lint_schedule(&[3.0, 1.0, 2.0, 0.5]);
        assert_eq!(r.with_severity(crate::Severity::Error).count(), 2, "{r}");
    }
}
