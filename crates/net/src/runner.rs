//! Convenience entry points for running simulations.

use std::fmt;

use hi_channel::{Channel, ChannelModel, ChannelParams};
use hi_des::SimDuration;

use crate::metrics::{average_outcomes, SimOutcome};
use crate::params::{ConfigError, NetworkConfig};
use crate::sim::NetworkSim;

/// Why a (budgeted) simulation run produced no outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration is structurally invalid.
    Config(ConfigError),
    /// The run tripped its logical deadline: more DES events were
    /// dispatched than the per-replication budget allows. Deterministic —
    /// the budget counts events, never wall clock.
    DeadlineExceeded {
        /// Events dispatched when the budget was found exceeded.
        events: u64,
        /// The configured per-replication event budget.
        budget: u64,
        /// Simulated seconds reached when the trip happened.
        at_secs: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::DeadlineExceeded {
                events,
                budget,
                at_secs,
            } => write!(
                f,
                "event budget exceeded: {events} events dispatched (budget {budget}) at t={at_secs:.3}s"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// The shared replication body: every public entry point funnels here so
/// the trace counters are emitted identically whether or not a budget is
/// set (a budget that never trips changes nothing).
fn replicate<C: ChannelModel>(
    cfg: &NetworkConfig,
    channel: C,
    t_sim: SimDuration,
    seed: u64,
    max_events: Option<u64>,
) -> Result<SimOutcome, SimError> {
    use hi_trace::wellknown as wk;
    let mut span = hi_trace::span("net.replication");
    let t_begin = hi_trace::now_ns();
    let sim = NetworkSim::new(cfg.clone(), channel, t_sim, seed)?;
    let outcome = match max_events {
        None => sim.run(),
        Some(budget) => sim.run_budgeted(budget).map_err(|d| {
            if span.is_recording() {
                span.arg("seed", seed);
                span.arg("deadline_events", d.events);
            }
            SimError::DeadlineExceeded {
                events: d.events,
                budget: d.budget,
                at_secs: d.at.as_secs_f64(),
            }
        })?,
    };
    hi_trace::counter(wk::NET_REPLICATIONS, 1);
    hi_trace::counter(wk::NET_PACKETS_GENERATED, outcome.counts.generated);
    hi_trace::counter(wk::NET_PACKETS_DELIVERED, outcome.counts.deliveries);
    hi_trace::counter(wk::NET_TRANSMISSIONS, outcome.counts.transmissions);
    hi_trace::counter(wk::NET_DROPS_COLLISION, outcome.counts.collisions);
    hi_trace::counter(wk::NET_DROPS_BUFFER, outcome.counts.buffer_drops);
    hi_trace::counter(wk::NET_DROPS_MAC, outcome.counts.mac_drops);
    if let (Some(t0), Some(t1)) = (t_begin, hi_trace::now_ns()) {
        hi_trace::histogram(wk::NET_REPLICATION_NS, t1.saturating_sub(t0));
    }
    if span.is_recording() {
        span.arg("seed", seed);
        span.arg("pdr", outcome.pdr);
    }
    Ok(outcome)
}

/// Runs one simulation of `cfg` over an arbitrary channel model.
///
/// # Errors
///
/// Returns [`ConfigError`] for structurally invalid configurations.
pub fn simulate<C: ChannelModel>(
    cfg: &NetworkConfig,
    channel: C,
    t_sim: SimDuration,
    seed: u64,
) -> Result<SimOutcome, ConfigError> {
    replicate(cfg, channel, t_sim, seed, None).map_err(|e| match e {
        SimError::Config(c) => c,
        SimError::DeadlineExceeded { .. } => unreachable!("no budget was set"),
    })
}

/// Runs one simulation with the stochastic body channel built from
/// `channel_params`; the channel's fading RNG is seeded from `seed`.
///
/// # Errors
///
/// Returns [`ConfigError`] for structurally invalid configurations.
pub fn simulate_stochastic(
    cfg: &NetworkConfig,
    channel_params: ChannelParams,
    t_sim: SimDuration,
    seed: u64,
) -> Result<SimOutcome, ConfigError> {
    // Decorrelate the channel stream from the MAC/app stream.
    let channel = Channel::new(
        channel_params,
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
    );
    simulate(cfg, channel, t_sim, seed)
}

/// [`simulate_stochastic`] under a per-replication DES-event budget
/// (`None` = unbudgeted, identical to `simulate_stochastic`).
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and
/// [`SimError::DeadlineExceeded`] when the budget trips.
pub fn simulate_stochastic_budgeted(
    cfg: &NetworkConfig,
    channel_params: ChannelParams,
    t_sim: SimDuration,
    seed: u64,
    max_events: Option<u64>,
) -> Result<SimOutcome, SimError> {
    let channel = Channel::new(
        channel_params,
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
    );
    replicate(cfg, channel, t_sim, seed, max_events)
}

/// Runs `runs` independent replications (seeds `base_seed..base_seed+runs`)
/// and averages the outcomes — the paper's "averaged over 3 runs" protocol.
///
/// # Errors
///
/// Returns [`ConfigError`] for structurally invalid configurations.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn simulate_averaged(
    cfg: &NetworkConfig,
    channel_params: ChannelParams,
    t_sim: SimDuration,
    base_seed: u64,
    runs: u32,
) -> Result<SimOutcome, ConfigError> {
    simulate_averaged_budgeted(cfg, channel_params, t_sim, base_seed, runs, None).map_err(|e| {
        match e {
            SimError::Config(c) => c,
            SimError::DeadlineExceeded { .. } => unreachable!("no budget was set"),
        }
    })
}

/// [`simulate_averaged`] under a per-replication DES-event budget: the
/// evaluation fails as soon as any of its replications trips the budget
/// (a partial average would silently bias the metrics).
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and
/// [`SimError::DeadlineExceeded`] when any replication trips the budget.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn simulate_averaged_budgeted(
    cfg: &NetworkConfig,
    channel_params: ChannelParams,
    t_sim: SimDuration,
    base_seed: u64,
    runs: u32,
    max_events: Option<u64>,
) -> Result<SimOutcome, SimError> {
    assert!(runs > 0, "need at least one run");
    let outcomes: Result<Vec<_>, _> = (0..runs)
        .map(|r| {
            simulate_stochastic_budgeted(
                cfg,
                channel_params,
                t_sim,
                base_seed + u64::from(r),
                max_events,
            )
        })
        .collect();
    Ok(average_outcomes(&outcomes?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{MacKind, Routing, TxPower};
    use hi_channel::BodyLocation;

    fn star() -> NetworkConfig {
        NetworkConfig::new(
            vec![
                BodyLocation::Chest,
                BodyLocation::LeftHip,
                BodyLocation::LeftWrist,
            ],
            TxPower::ZeroDbm,
            MacKind::csma(),
            Routing::Star { coordinator: 0 },
        )
    }

    #[test]
    fn tiny_budget_trips_the_deadline_deterministically() {
        let cfg = star();
        let t = SimDuration::from_secs(10.0);
        let err = simulate_stochastic_budgeted(&cfg, ChannelParams::default(), t, 7, Some(5))
            .unwrap_err();
        let SimError::DeadlineExceeded { events, budget, .. } = &err else {
            panic!("expected a deadline trip, got {err}");
        };
        assert_eq!(*budget, 5);
        assert!(*events > 5);
        // The trip is a pure function of (config, seed, budget).
        let again = simulate_stochastic_budgeted(&cfg, ChannelParams::default(), t, 7, Some(5))
            .unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    fn generous_budget_matches_the_unbudgeted_run_bitwise() {
        let cfg = star();
        let t = SimDuration::from_secs(10.0);
        let plain = simulate_averaged(&cfg, ChannelParams::default(), t, 3, 2).unwrap();
        let budgeted =
            simulate_averaged_budgeted(&cfg, ChannelParams::default(), t, 3, 2, Some(u64::MAX))
                .unwrap();
        assert_eq!(plain.pdr.to_bits(), budgeted.pdr.to_bits());
        assert_eq!(plain.nlt_days.to_bits(), budgeted.nlt_days.to_bits());
        assert_eq!(plain.counts, budgeted.counts);
    }
}
