//! The daemon: a persistent job queue behind the wire protocol.
//!
//! One [`Server`] owns the job table (a mutex + condvar — submissions,
//! cancellations and `WAIT` streams are control-plane traffic; the data
//! plane is the `hi-exec` pool inside each job), the cross-user
//! [`FleetCache`], and a metrics-only `hi-trace` collector whose
//! registry backs `STATS`.
//!
//! **Scheduling is strictly serial in job-id order.** One job runs at a
//! time on the scheduler thread, fanning out over `threads` workers via
//! its own [`ExecContext`]; ids are assigned in submission order and
//! restarts re-enqueue in id order. Serial order is what makes the fleet
//! cache deterministic: the simulations job *n* finds warm are exactly
//! the ones jobs `1..n` ran, independent of thread count, connection
//! interleaving, or a crash between jobs.
//!
//! **Every lifecycle transition is persisted before it is observable**
//! (CRC-checked, atomically rotated [`JobRecord`]s), and Algorithm-1
//! jobs auto-checkpoint every iteration. A SIGKILLed daemon therefore
//! restarts into the same queue: terminal jobs serve their recorded
//! result bytes, the interrupted job resumes from its checkpoint, and
//! the resumed result block is byte-identical to an uninterrupted run
//! (cumulative counters are part of the checkpoint contract).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use hi_core::{
    load_recovering, parse_fault_suite, warmup_events_floor, CancelToken, ChaosPolicy, ExecContext,
    FaultSuite, RobustEvaluator, RobustMode, StopReason, SuiteParseError,
};
use hi_pareto::{ArchiveConfig, InsertOutcome, ParetoArchive};
use hi_trace::{wellknown as wk, Collector, MetricsRegistry};

use crate::fleet::{f64_hex, render_result, run_profile, FleetCache, FleetEvaluator, RunPolicy};
use crate::front::FrontStore;
use crate::persist::{checkpoint_path, record_path, scan_records, JobRecord, JobState};
use crate::profile::{lint_profiles, parse_profiles, EngineChoice, UserProfile};
use crate::proto::{err_line, ok_block, ok_line, Request};
use crate::segment::SegmentStore;

/// Everything the daemon is configured with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory job records, checkpoints and the `addr` file live in.
    pub state_dir: std::path::PathBuf,
    /// TCP listen address (`host:port`; port 0 picks a free one). The
    /// actually bound address is written to `<state_dir>/addr`.
    pub listen: Option<String>,
    /// Serve the protocol on stdin/stdout as well. When stdio is the
    /// only frontend, EOF on stdin requests shutdown.
    pub stdio: bool,
    /// Worker threads per job's `ExecContext`.
    pub threads: usize,
    /// Maximum queued-or-running jobs admitted at once (HL043 ≥ 1).
    pub queue_capacity: usize,
    /// Supervised-retry attempts per evaluation.
    pub retry_attempts: u32,
    /// Per-replication DES event budget applied to every job, if any
    /// (HL043 checks it against the warm-up floor).
    pub max_events: Option<u64>,
    /// Directory cache segments live in (`None` = `<state_dir>/cache`).
    /// HL044 refuses a collision with the job-record directory.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Segment appends per stream before the file is compacted (full
    /// atomic rewrite). HL044 refuses 0 and absurd values.
    pub compact_threshold: u32,
    /// Per-connection TCP read/write timeout in seconds (0 = none), so
    /// a stalled peer's thread is reaped instead of pinned forever.
    pub conn_timeout_secs: u64,
    /// Fault injection for the persistence layer (segment drops, torn
    /// appends) on top of the evaluator-level chaos knobs.
    pub chaos: Option<ChaosPolicy>,
}

impl ServeConfig {
    /// A config with the daemon defaults: TCP/stdio off, the machine's
    /// thread count, a 64-deep queue, 3 retry attempts, no deadline.
    pub fn new(state_dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            state_dir: state_dir.into(),
            listen: None,
            stdio: false,
            threads: hi_exec::default_threads(),
            queue_capacity: 64,
            retry_attempts: 3,
            max_events: None,
            cache_dir: None,
            compact_threshold: 256,
            conn_timeout_secs: 600,
            chaos: None,
        }
    }

    /// The effective segment directory: `cache_dir`, defaulting to
    /// `<state_dir>/cache`.
    pub fn resolved_cache_dir(&self) -> std::path::PathBuf {
        self.cache_dir
            .clone()
            .unwrap_or_else(|| self.state_dir.join("cache"))
    }

    /// Lowers this config for `hi_lint::lint_server` (HL043).
    pub fn lint_spec(&self) -> hi_lint::ServerSpec {
        hi_lint::ServerSpec {
            queue_capacity: self.queue_capacity,
            job_max_events: self.max_events,
            warmup_events_floor: warmup_events_floor(),
        }
    }

    /// Lowers this config for `hi_lint::lint_cache_persist` (HL044).
    pub fn cache_lint_spec(&self) -> hi_lint::CachePersistSpec {
        hi_lint::CachePersistSpec {
            compact_threshold: self.compact_threshold,
            cache_dir: self.resolved_cache_dir(),
            record_dir: self.state_dir.clone(),
        }
    }
}

struct JobEntry {
    record: JobRecord,
    profile: UserProfile,
    progress: Vec<String>,
    cancel: Option<CancelToken>,
    cancel_requested: bool,
    accepted: Instant,
}

struct State {
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    running: Option<u64>,
    next_id: u64,
    shutdown: bool,
    /// Idempotency tokens → the job ids they minted, in submit order.
    /// Rebuilt from records on restart, so replay works across crashes.
    tokens: BTreeMap<String, Vec<u64>>,
}

/// One evaluator stream's in-memory Pareto archive, plus the set of
/// fingerprints already offered to it. Re-offering is harmless for the
/// front itself (a fingerprint determines its evaluation), but skipping
/// re-offers keeps the insert/dominated counters counting *evaluations*,
/// not settle batches.
struct ArchiveEntry {
    archive: ParetoArchive,
    offered: BTreeSet<u64>,
}

/// The daemon. See the [module docs](self) for the contracts.
pub struct Server {
    config: ServeConfig,
    state: Mutex<State>,
    cv: Condvar,
    fleet: FleetCache,
    segments: SegmentStore,
    fronts: FrontStore,
    archives: Mutex<BTreeMap<u64, ArchiveEntry>>,
    collector: Collector,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("state_dir", &self.config.state_dir)
            .finish()
    }
}

impl Server {
    /// Builds a server over `state_dir`, restoring any persisted jobs:
    /// terminal records serve their stored results, queued/running
    /// records re-enqueue in id order (a `running` record means the
    /// previous process crashed mid-job — its checkpoint, if any, makes
    /// the rerun a resume). Fails on HL043 lint errors, an unusable
    /// state directory, or any unrecoverable job record.
    pub fn new(config: ServeConfig) -> Result<Self, String> {
        let report = hi_lint::lint_server(&config.lint_spec());
        if report.has_errors() {
            return Err(format!("server configuration rejected:\n{report}"));
        }
        let report = hi_lint::lint_cache_persist(&config.cache_lint_spec());
        if report.has_errors() {
            return Err(format!("cache persistence rejected:\n{report}"));
        }
        std::fs::create_dir_all(&config.state_dir).map_err(|e| {
            format!(
                "cannot create state dir `{}`: {e}",
                config.state_dir.display()
            )
        })?;
        let (records, errors) = scan_records(&config.state_dir);
        if !errors.is_empty() {
            return Err(format!(
                "unrecoverable job record(s) in `{}`: {}",
                config.state_dir.display(),
                errors.join("; ")
            ));
        }
        let (segments, notes) = SegmentStore::open(
            config.resolved_cache_dir(),
            config.compact_threshold,
            config.chaos,
        )
        .map_err(|e| {
            format!(
                "cannot open cache dir `{}`: {e}",
                config.resolved_cache_dir().display()
            )
        })?;
        for note in notes {
            eprintln!("note: cache segment: {note}");
        }
        let (fronts, notes) = FrontStore::open(
            config.resolved_cache_dir(),
            config.compact_threshold,
            config.chaos,
        )
        .map_err(|e| {
            format!(
                "cannot open front store in `{}`: {e}",
                config.resolved_cache_dir().display()
            )
        })?;
        for note in notes {
            eprintln!("note: front segment: {note}");
        }
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut tokens: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut next_id = 1;
        for (record, fallback) in records {
            if fallback {
                eprintln!(
                    "note: job {} recovered from its .prev record rotation",
                    record.id
                );
            }
            let profile = match parse_profiles(&record.profile_text) {
                Ok(mut fleet) if fleet.len() == 1 => fleet.remove(0),
                _ => {
                    return Err(format!(
                        "job {} record holds a non-canonical profile block",
                        record.id
                    ));
                }
            };
            next_id = next_id.max(record.id + 1);
            if !record.state.is_terminal() {
                queue.push_back(record.id);
            }
            if let Some(token) = &record.token {
                // Records scan in id order, so replayed id lists match
                // the original submission order.
                tokens.entry(token.clone()).or_default().push(record.id);
            }
            jobs.insert(
                record.id,
                JobEntry {
                    record,
                    profile,
                    progress: Vec::new(),
                    cancel: None,
                    cancel_requested: false,
                    accepted: Instant::now(),
                },
            );
        }
        let collector = Collector::metrics_only();
        let registry = collector.registry().expect("metrics-only has a registry");
        hi_trace::wellknown::register_all(registry);
        registry.set_gauge(wk::SERVE_QUEUE_DEPTH, queue.len() as i64);
        Ok(Server {
            config,
            state: Mutex::new(State {
                jobs,
                queue,
                running: None,
                next_id,
                shutdown: false,
                tokens,
            }),
            cv: Condvar::new(),
            fleet: FleetCache::new(),
            segments,
            fronts,
            archives: Mutex::new(BTreeMap::new()),
            collector,
        })
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The metrics registry backing `STATS` (and any trace sink).
    pub fn registry(&self) -> &MetricsRegistry {
        self.collector
            .registry()
            .expect("metrics-only has a registry")
    }

    fn sync_depth(&self, state: &State) {
        let depth = state.queue.len() + usize::from(state.running.is_some());
        self.registry()
            .set_gauge(wk::SERVE_QUEUE_DEPTH, depth as i64);
    }

    /// Accepts a submission: parses the profile text, lints it (HL042 —
    /// errors bounce the whole submission), validates fault-suite
    /// references, persists one queued record per profile and wakes the
    /// scheduler. Returns the new job ids in profile order.
    pub fn submit(&self, profile_text: &str) -> Result<Vec<u64>, String> {
        self.submit_with_token(profile_text, None)
    }

    /// [`submit`](Self::submit) with an idempotency token. A token seen
    /// before with a byte-identical canonical payload replays the
    /// existing job ids (same `OK job ...` bytes, nothing scheduled) —
    /// that is what makes a client-side retry after a dropped connection
    /// safe. The same token with a *different* payload is a client bug
    /// and is refused with a typed `token-reuse` error.
    pub fn submit_with_token(
        &self,
        profile_text: &str,
        token: Option<&str>,
    ) -> Result<Vec<u64>, String> {
        let profiles = parse_profiles(profile_text).map_err(|e| e.to_string())?;
        let report = lint_profiles(&profiles);
        if report.has_errors() {
            return Err(format!("submission rejected:\n{report}"));
        }
        // Validate suites at the door: a bad path or torn suite file
        // should bounce the submission, not fail the job an hour later.
        for profile in &profiles {
            if profile.faults.is_some() {
                load_suite(profile)?;
            }
        }
        let canonical: String = profiles.iter().map(UserProfile::to_text).collect();
        let mut state = self.state.lock().expect("server state poisoned");
        if let Some(token) = token {
            if let Some(ids) = state.tokens.get(token) {
                let existing: String = ids
                    .iter()
                    .filter_map(|id| state.jobs.get(id))
                    .map(|entry| entry.record.profile_text.clone())
                    .collect();
                if existing == canonical {
                    // Retried submit: answer exactly as the first did.
                    return Ok(ids.clone());
                }
                return Err(format!(
                    "token-reuse {token}: already bound to job(s) {} with a different payload",
                    ids.iter()
                        .map(|id| id.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        if state.shutdown {
            return Err("daemon is shutting down".into());
        }
        let admitted = state.queue.len() + usize::from(state.running.is_some());
        if admitted + profiles.len() > self.config.queue_capacity {
            return Err(format!(
                "busy: {admitted} admitted + {} submitted exceeds capacity {} (retry later)",
                profiles.len(),
                self.config.queue_capacity
            ));
        }
        let mut ids = Vec::with_capacity(profiles.len());
        for profile in profiles {
            let id = state.next_id;
            state.next_id += 1;
            let record = JobRecord {
                id,
                state: JobState::Queued,
                token: token.map(str::to_string),
                profile_text: profile.to_text(),
                result: None,
            };
            record
                .write_atomic(&record_path(&self.config.state_dir, id))
                .map_err(|e| format!("cannot persist job {id}: {e}"))?;
            state.jobs.insert(
                id,
                JobEntry {
                    record,
                    profile,
                    progress: Vec::new(),
                    cancel: None,
                    cancel_requested: false,
                    accepted: Instant::now(),
                },
            );
            state.queue.push_back(id);
            ids.push(id);
        }
        if let Some(token) = token {
            state.tokens.insert(token.to_string(), ids.clone());
        }
        self.registry()
            .add(wk::SERVE_JOBS_ACCEPTED, ids.len() as u64);
        self.sync_depth(&state);
        drop(state);
        self.cv.notify_all();
        Ok(ids)
    }

    /// A job's lifecycle state.
    pub fn status(&self, id: u64) -> Option<JobState> {
        let state = self.state.lock().expect("server state poisoned");
        state.jobs.get(&id).map(|e| e.record.state)
    }

    /// A terminal job's result block (the exact persisted bytes).
    pub fn result(&self, id: u64) -> Result<String, String> {
        let state = self.state.lock().expect("server state poisoned");
        let entry = state.jobs.get(&id).ok_or(format!("unknown job {id}"))?;
        if !entry.record.state.is_terminal() {
            return Err(format!("job {id} is {}", entry.record.state));
        }
        entry
            .record
            .result
            .clone()
            .ok_or(format!("job {id} has no result block"))
    }

    /// Cancels a job: a queued job goes terminal immediately; a running
    /// job has its `CancelToken` fired and goes terminal when the
    /// engine yields (between evaluations). Returns the state observed
    /// after the request — idempotent on terminal jobs.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let mut state = self.state.lock().expect("server state poisoned");
        let state_dir = self.config.state_dir.clone();
        let entry = match state.jobs.get_mut(&id) {
            Some(entry) => entry,
            None => return Err(format!("unknown job {id}")),
        };
        match entry.record.state {
            JobState::Queued => {
                entry.record.state = JobState::Cancelled;
                entry.record.result = Some(format!(
                    "profile {}\nengine {}\nstatus cancelled\n",
                    entry.profile.id, entry.profile.engine
                ));
                let record = entry.record.clone();
                state.queue.retain(|&queued| queued != id);
                self.registry().add(wk::SERVE_JOBS_CANCELLED, 1);
                self.sync_depth(&state);
                drop(state);
                record
                    .write_atomic(&record_path(&state_dir, id))
                    .map_err(|e| format!("cannot persist job {id}: {e}"))?;
                self.cv.notify_all();
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                entry.cancel_requested = true;
                if let Some(token) = &entry.cancel {
                    token.cancel();
                }
                Ok(JobState::Running)
            }
            terminal => Ok(terminal),
        }
    }

    /// Streams a job's progress events through `emit` (return `false`
    /// to stop early, e.g. on a broken pipe) until the job is terminal;
    /// returns the terminal state. Events already emitted before the
    /// call replay first, so a late `WAIT` sees the full history.
    pub fn wait(&self, id: u64, emit: &mut dyn FnMut(&str) -> bool) -> Result<JobState, String> {
        let mut guard = self.state.lock().expect("server state poisoned");
        let mut cursor = 0;
        loop {
            let entry = guard.jobs.get(&id).ok_or(format!("unknown job {id}"))?;
            let job_state = entry.record.state;
            let fresh: Vec<String> = entry.progress[cursor..].to_vec();
            cursor += fresh.len();
            if !fresh.is_empty() || job_state.is_terminal() {
                drop(guard);
                for line in &fresh {
                    if !emit(line) {
                        return Ok(job_state);
                    }
                }
                if job_state.is_terminal() {
                    return Ok(job_state);
                }
                guard = self.state.lock().expect("server state poisoned");
            } else {
                guard = self.cv.wait(guard).expect("server state poisoned");
            }
        }
    }

    /// Runs `f` over a stream's Pareto archive, creating it on first
    /// touch this lifetime and hydrating it from the front store — so a
    /// restarted daemon answers `FRONT` warm, before (and without) any
    /// job running on the stream. Hydrated fingerprints are marked
    /// offered; the archive's own dominance filter drops any point a
    /// later, better one had displaced after it was logged.
    fn with_archive<R>(&self, key: u64, f: impl FnOnce(&mut ArchiveEntry) -> R) -> R {
        let mut archives = self.archives.lock().expect("archive table poisoned");
        let entry = archives.entry(key).or_insert_with(|| {
            let mut entry = ArchiveEntry {
                archive: ParetoArchive::new(ArchiveConfig::default()),
                offered: BTreeSet::new(),
            };
            for point in self.fronts.hydrate(key) {
                entry.offered.insert(point.fingerprint);
                entry.archive.insert(point);
            }
            entry
        });
        f(entry)
    }

    /// Offers a stream's cached evaluations to its Pareto archive and
    /// settles the accepted points durably. Called exactly where the
    /// evaluation segment settles (every checkpoint, and again before a
    /// result becomes observable), so archive durability rides the same
    /// crash-consistency discipline as the cache itself.
    fn settle_front(&self, key: u64, evaluator: &FleetEvaluator) {
        let front = self.with_archive(key, |entry| {
            let mut inserts = 0u64;
            let mut dominated = 0u64;
            for point in evaluator.export_front_points() {
                if !entry.offered.insert(point.fingerprint) {
                    continue;
                }
                match entry.archive.insert(point) {
                    InsertOutcome::Added { .. } => inserts += 1,
                    InsertOutcome::Dominated => dominated += 1,
                }
            }
            let registry = self.registry();
            registry.add(wk::SERVE_PARETO_INSERTS, inserts);
            registry.add(wk::SERVE_PARETO_DOMINATED, dominated);
            entry.archive.front()
        });
        if let Err(e) = self.fronts.settle(key, &front) {
            eprintln!("warning: cannot settle stream {key:016x} front: {e}");
        }
    }

    /// The `FRONT` block for a job's evaluator stream: the stream key,
    /// the fresh simulations this process has spent on the stream (a
    /// warm restart answering purely from hydrated segments reports 0),
    /// then one `point` row per non-dominated design — floats as exact
    /// bits next to a rounded decimal, like result blocks, so the block
    /// is byte-stable across restarts and thread counts. An empty front
    /// on a daemon that has completed no job earns the HL047 advisory.
    pub fn front_block(&self, id: u64) -> Result<String, String> {
        let profile = {
            let state = self.state.lock().expect("server state poisoned");
            state
                .jobs
                .get(&id)
                .map(|entry| entry.profile.clone())
                .ok_or(format!("unknown job {id}"))?
        };
        let suite_text = match profile.faults.as_ref() {
            Some(_) => Some(load_suite(&profile)?.0),
            None => None,
        };
        let key = profile.eval_fingerprint(suite_text.as_deref());
        self.registry().add(wk::SERVE_PARETO_QUERIES, 1);
        let simulations = self
            .fleet
            .streams()
            .into_iter()
            .find(|(stream, _)| *stream == key)
            .map_or(0, |(_, evaluator)| evaluator.cache_misses());
        let front = self.with_archive(key, |entry| entry.archive.front());
        let mut out = String::new();
        out.push_str(&format!("key {key:016x}\n"));
        out.push_str(&format!("simulations {simulations}\n"));
        for point in &front {
            out.push_str(&format!(
                "point {:016x} pdr {} {:.4} power_mw {} {:.3} latency_ms {} {:.3} nlt_days {} {:.2}\n",
                point.fingerprint,
                f64_hex(point.pdr),
                point.pdr,
                f64_hex(point.power_mw),
                point.power_mw,
                f64_hex(point.latency_ms),
                point.latency_ms,
                f64_hex(point.nlt_days),
                point.nlt_days,
            ));
        }
        if front.is_empty() {
            let report = hi_lint::lint_front_query(&hi_lint::FrontQuerySpec {
                completed_jobs: self.registry().counter_value(wk::SERVE_JOBS_COMPLETED),
                archived_points: 0,
            });
            for finding in report.findings() {
                out.push_str(&format!(
                    "note {} {}\n",
                    finding.rule.code(),
                    finding.message
                ));
            }
        }
        Ok(out)
    }

    /// The `STATS` block: a deterministic, fixed-order metric snapshot.
    pub fn stats_block(&self) -> String {
        let registry = self.registry();
        let fleet = self.fleet.stats();
        let depth = {
            let state = self.state.lock().expect("server state poisoned");
            state.queue.len() + usize::from(state.running.is_some())
        };
        let mut out = String::new();
        for name in [
            wk::SERVE_JOBS_ACCEPTED,
            wk::SERVE_JOBS_COMPLETED,
            wk::SERVE_JOBS_FAILED,
            wk::SERVE_JOBS_CANCELLED,
        ] {
            out.push_str(&format!("{name} {}\n", registry.counter_value(name)));
        }
        out.push_str(&format!("{} {depth}\n", wk::SERVE_QUEUE_DEPTH));
        out.push_str(&format!("serve.fleet.evaluators {}\n", fleet.evaluators));
        out.push_str(&format!("{} {}\n", wk::SERVE_FLEET_HITS, fleet.hits));
        out.push_str(&format!("{} {}\n", wk::SERVE_FLEET_MISSES, fleet.misses));
        let segs = self.segments.stats();
        out.push_str(&format!("{} {}\n", wk::SERVE_CACHE_LOADED, segs.loaded));
        out.push_str(&format!(
            "{} {}\n",
            wk::SERVE_CACHE_PERSISTED,
            segs.persisted
        ));
        out.push_str(&format!(
            "{} {}\n",
            wk::SERVE_CACHE_COMPACTIONS,
            segs.compactions
        ));
        out.push_str(&format!(
            "{} {}\n",
            wk::SERVE_CACHE_QUARANTINED,
            segs.quarantined
        ));
        for name in [
            wk::SERVE_PARETO_INSERTS,
            wk::SERVE_PARETO_DOMINATED,
            wk::SERVE_PARETO_QUERIES,
        ] {
            out.push_str(&format!("{name} {}\n", registry.counter_value(name)));
        }
        let fronts = self.fronts.stats();
        out.push_str(&format!("{} {}\n", wk::SERVE_PARETO_LOADED, fronts.loaded));
        out.push_str(&format!(
            "{} {}\n",
            wk::SERVE_PARETO_PERSISTED,
            fronts.persisted
        ));
        out.push_str(&format!(
            "{} {}\n",
            wk::NET_REPLICATIONS,
            registry.counter_value(wk::NET_REPLICATIONS)
        ));
        out
    }

    /// Asks the scheduler to exit after the in-flight job (if any)
    /// finishes. Queued jobs stay persisted for the next start.
    pub fn request_shutdown(&self) {
        let mut state = self.state.lock().expect("server state poisoned");
        state.shutdown = true;
        drop(state);
        self.cv.notify_all();
    }

    fn next_job(&self) -> Option<(u64, UserProfile)> {
        let mut guard = self.state.lock().expect("server state poisoned");
        loop {
            if guard.shutdown {
                return None;
            }
            if let Some(id) = guard.queue.pop_front() {
                let entry = guard.jobs.get_mut(&id).expect("queued job has an entry");
                entry.record.state = JobState::Running;
                let record = entry.record.clone();
                let profile = entry.profile.clone();
                guard.running = Some(id);
                self.sync_depth(&guard);
                drop(guard);
                if let Err(e) = record.write_atomic(&record_path(&self.config.state_dir, id)) {
                    eprintln!("warning: cannot persist job {id} running state: {e}");
                }
                return Some((id, profile));
            }
            guard = self.cv.wait(guard).expect("server state poisoned");
        }
    }

    fn finalize(&self, id: u64, final_state: JobState, result: String) {
        let path = record_path(&self.config.state_dir, id);
        let ck = checkpoint_path(&self.config.state_dir, id);
        let mut state = self.state.lock().expect("server state poisoned");
        let latency_ns;
        {
            let entry = state.jobs.get_mut(&id).expect("finalized job has an entry");
            entry.record.state = final_state;
            entry.record.result = Some(result);
            entry.cancel = None;
            latency_ns = entry.accepted.elapsed().as_nanos() as u64;
            if let Err(e) = entry.record.write_atomic(&path) {
                eprintln!("warning: cannot persist job {id} terminal state: {e}");
            }
        }
        state.running = None;
        let registry = self.registry();
        registry.record(wk::SERVE_JOB_LATENCY_NS, latency_ns);
        match final_state {
            JobState::Done => registry.add(wk::SERVE_JOBS_COMPLETED, 1),
            JobState::Failed => registry.add(wk::SERVE_JOBS_FAILED, 1),
            JobState::Cancelled => registry.add(wk::SERVE_JOBS_CANCELLED, 1),
            other => unreachable!("finalize with non-terminal state {other}"),
        }
        self.sync_depth(&state);
        drop(state);
        // The checkpoint has served its purpose; keep the directory to
        // exactly one file per live concern.
        for suffix in ["", ".prev", ".tmp"] {
            let mut p = ck.clone().into_os_string();
            p.push(suffix);
            let _ = std::fs::remove_file(std::path::PathBuf::from(p));
        }
        self.cv.notify_all();
    }

    fn run_job(&self, id: u64, profile: UserProfile) {
        let suite = match profile.faults.as_ref() {
            Some(_) => match load_suite(&profile) {
                Ok(loaded) => Some(loaded),
                Err(e) => {
                    let result = format!(
                        "profile {}\nengine {}\nstatus failed\nerror {}\n",
                        profile.id,
                        profile.engine,
                        e.replace('\n', "; ")
                    );
                    self.finalize(id, JobState::Failed, result);
                    return;
                }
            },
            None => None,
        };
        let protocol = profile.protocol().with_max_events(self.config.max_events);
        let key = profile.eval_fingerprint(suite.as_ref().map(|(text, _, _)| text.as_str()));
        let evaluator = self.fleet.evaluator(key, || {
            let built = match suite {
                None => FleetEvaluator::Nominal(protocol.shared_evaluator()),
                Some((_, parsed, mode)) => {
                    FleetEvaluator::Robust(RobustEvaluator::new(protocol, parsed, mode))
                }
            };
            // First touch of this stream this lifetime: seed everything
            // a previous process already simulated, *before* any job
            // runs on it — that is what turns a restart into a warm
            // start (`simulations 0` on already-settled points).
            let recovered = self.segments.hydrate(key);
            if !recovered.is_empty() {
                let total = recovered.len();
                let seeded = recovered
                    .into_iter()
                    .filter(|outcome| built.import_entry(outcome.clone()))
                    .count();
                eprintln!(
                    "note: stream {key:016x} warmed with {seeded}/{total} persisted evaluations"
                );
            }
            built
        });
        let exec = ExecContext::new(self.config.threads).with_collector(self.collector.clone());
        {
            let mut state = self.state.lock().expect("server state poisoned");
            let entry = state.jobs.get_mut(&id).expect("running job has an entry");
            entry.cancel = Some(exec.cancel_token());
            if entry.cancel_requested {
                exec.cancel_token().cancel();
            }
        }
        let ck_path = checkpoint_path(&self.config.state_dir, id);
        // Every checkpoint-capable engine resumes; the checkpoint header
        // records which engine wrote it, and the engines refuse a
        // mismatched file instead of silently continuing.
        let resumes = profile.engine != EngineChoice::Exhaustive;
        let resume = if resumes && ck_path.exists() {
            match load_recovering(&ck_path) {
                Ok(recovery) => {
                    if let Some(note) = &recovery.fallback {
                        eprintln!("note: job {id} checkpoint recovery: {note}");
                    }
                    eprintln!(
                        "note: job {id} resuming at iteration {}",
                        recovery.checkpoint.iterations
                    );
                    Some(recovery.checkpoint)
                }
                Err(e) => {
                    eprintln!("warning: job {id} checkpoint unusable ({e}); starting over");
                    None
                }
            }
        } else {
            None
        };
        let policy = RunPolicy {
            max_events: self.config.max_events,
            retry_attempts: self.config.retry_attempts,
            checkpoint_every: Some(1),
        };
        let mut observer = |cp: &hi_core::ExploreCheckpoint| {
            if let Err(e) = cp.write_atomic(&ck_path) {
                eprintln!("warning: job {id} checkpoint write failed: {e}");
            }
            // Settle alongside every checkpoint: the checkpoint makes the
            // iteration's simulations logically spent (a resumed engine
            // will not redo them), so they must be durable too — or a
            // SIGKILL between checkpoint and job end would strand them
            // in neither the segment nor the resumed evaluator.
            if let Err(e) = self.segments.settle(key, &evaluator.export_entries()) {
                eprintln!("warning: cannot settle stream {key:016x} segment: {e}");
            }
            self.settle_front(key, &evaluator);
            let mut state = self.state.lock().expect("server state poisoned");
            if let Some(entry) = state.jobs.get_mut(&id) {
                entry.progress.push(format!(
                    "iteration {} simulations {}",
                    cp.iterations, cp.simulations
                ));
            }
            drop(state);
            self.cv.notify_all();
        };
        let outcome = run_profile(
            &profile,
            &evaluator,
            &exec,
            policy,
            resume.as_ref(),
            &mut observer,
        );
        // Settle the stream's new simulations to its segment *before*
        // the result becomes observable: once a client can read `done`,
        // a crash no longer costs the simulations behind it.
        match self.segments.settle(key, &evaluator.export_entries()) {
            Ok(settled) => {
                if settled.chaos_dropped || settled.chaos_torn {
                    eprintln!(
                        "note: chaos injected into stream {key:016x} segment (dropped {}, torn {})",
                        settled.chaos_dropped, settled.chaos_torn
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot settle stream {key:016x} segment: {e}"),
        }
        self.settle_front(key, &evaluator);
        match outcome {
            Ok(outcome) => {
                let registry = self.registry();
                registry.add(wk::SERVE_FLEET_HITS, outcome.cache_hits);
                registry.add(wk::SERVE_FLEET_MISSES, outcome.cache_misses);
                let cancelled = outcome.stop_reason == Some(StopReason::Cancelled) || {
                    let state = self.state.lock().expect("server state poisoned");
                    state
                        .jobs
                        .get(&id)
                        .is_some_and(|entry| entry.cancel_requested)
                };
                let final_state = if cancelled {
                    JobState::Cancelled
                } else {
                    JobState::Done
                };
                self.finalize(id, final_state, render_result(&profile, &outcome));
            }
            Err(e) => {
                let result = format!(
                    "profile {}\nengine {}\nstatus failed\nerror {}\n",
                    profile.id,
                    profile.engine,
                    e.replace('\n', "; ")
                );
                self.finalize(id, JobState::Failed, result);
            }
        }
    }

    /// Runs jobs serially in id order until shutdown is requested (the
    /// in-flight job always completes and persists first), then flushes
    /// every evaluator stream to its segment — SHUTDOWN drains, settles
    /// and leaves one clean file per stream for the next process. Call
    /// on a dedicated thread — typically the process's main thread.
    pub fn scheduler_loop(&self) {
        let _guard = self.collector.install(0, 0);
        while let Some((id, profile)) = self.next_job() {
            let mut span = hi_trace::span("serve.job");
            if span.is_recording() {
                span.arg("job", id);
            }
            self.run_job(id, profile);
        }
        for (key, evaluator) in self.fleet.streams() {
            if let Err(e) = self.segments.flush(key, &evaluator.export_entries()) {
                eprintln!("warning: cannot flush stream {key:016x} segment: {e}");
            }
        }
        let archives = self.archives.lock().expect("archive table poisoned");
        for (key, entry) in archives.iter() {
            if let Err(e) = self.fronts.flush(*key, &entry.archive.front()) {
                eprintln!("warning: cannot flush stream {key:016x} front: {e}");
            }
        }
    }
}

type LoadedSuite = (String, FaultSuite, RobustMode);

/// Reads, parses and lints a profile's fault suite; returns the raw
/// text (for fingerprinting), the parsed suite and the robust mode.
fn load_suite(profile: &UserProfile) -> Result<LoadedSuite, String> {
    let faults = profile.faults.as_ref().expect("caller checked faults");
    let text = std::fs::read_to_string(&faults.path)
        .map_err(|e| format!("cannot read fault suite `{}`: {e}", faults.path))?;
    let (suite, windows) = parse_fault_suite(&text).map_err(|e| match e {
        SuiteParseError::Line { line, message } => format!("{}:{line}: {message}", faults.path),
        SuiteParseError::NoScenario => {
            format!("fault suite `{}` declares no scenario", faults.path)
        }
    })?;
    let report = hi_lint::lint_faults(&windows, profile.t_sim_secs, Some(0));
    if report.has_errors() {
        return Err(format!(
            "fault suite `{}` has {} error-severity lint finding(s)",
            faults.path,
            report.error_count()
        ));
    }
    Ok((text, suite, faults.mode))
}

/// Serves one protocol connection: reads request lines from `reader`,
/// writes responses to `writer`, until EOF or `SHUTDOWN`. Generic over
/// the transport — the TCP accept loop and the stdio frontend both land
/// here, as do in-memory tests.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: &mut R,
    writer: &mut W,
) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                writer.write_all(err_line(&e).as_bytes())?;
                writer.flush()?;
                continue;
            }
        };
        match request {
            Request::Submit { lines, token } => {
                let mut payload = String::new();
                let mut truncated = false;
                for _ in 0..lines {
                    let mut payload_line = String::new();
                    if reader.read_line(&mut payload_line)? == 0 {
                        truncated = true;
                        break;
                    }
                    payload.push_str(&payload_line);
                }
                let response = if truncated {
                    err_line("connection closed inside SUBMIT payload")
                } else {
                    match server.submit_with_token(&payload, token.as_deref()) {
                        Ok(ids) => {
                            let ids: Vec<String> = ids.iter().map(|id| id.to_string()).collect();
                            ok_line(&format!("job {}", ids.join(" ")))
                        }
                        Err(e) => err_line(&e),
                    }
                };
                writer.write_all(response.as_bytes())?;
                if truncated {
                    writer.flush()?;
                    return Ok(());
                }
            }
            Request::Status { id } => {
                let response = match server.status(id) {
                    Some(state) => ok_line(&format!("status {id} {state}")),
                    None => err_line(&format!("unknown job {id}")),
                };
                writer.write_all(response.as_bytes())?;
            }
            Request::Result { id } => {
                let response = match server.result(id) {
                    Ok(block) => ok_block(&format!("result {id}"), &block),
                    Err(e) => err_line(&e),
                };
                writer.write_all(response.as_bytes())?;
            }
            Request::Wait { id } => {
                let mut io_err = None;
                let outcome = server.wait(id, &mut |event| {
                    let frame = format!("EVENT {id} {event}\n");
                    match writer
                        .write_all(frame.as_bytes())
                        .and_then(|()| writer.flush())
                    {
                        Ok(()) => true,
                        Err(e) => {
                            io_err = Some(e);
                            false
                        }
                    }
                });
                if let Some(e) = io_err {
                    return Err(e);
                }
                let response = match outcome {
                    Ok(state) => ok_line(&format!("status {id} {state}")),
                    Err(e) => err_line(&e),
                };
                writer.write_all(response.as_bytes())?;
            }
            Request::Cancel { id } => {
                let response = match server.cancel(id) {
                    Ok(state) => ok_line(&format!("cancel {id} {state}")),
                    Err(e) => err_line(&e),
                };
                writer.write_all(response.as_bytes())?;
            }
            Request::Front { id } => {
                let response = match server.front_block(id) {
                    Ok(block) => ok_block(&format!("front {id}"), &block),
                    Err(e) => err_line(&e),
                };
                writer.write_all(response.as_bytes())?;
            }
            Request::Stats => {
                writer.write_all(ok_block("stats", &server.stats_block()).as_bytes())?;
            }
            Request::Shutdown => {
                writer.write_all(ok_line("shutdown").as_bytes())?;
                writer.flush()?;
                server.request_shutdown();
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Runs the daemon to completion: binds the TCP listener (writing the
/// actual address to `<state_dir>/addr`), starts the stdio frontend if
/// configured, and drives the scheduler on the calling thread until a
/// `SHUTDOWN` request (or, in stdio-only mode, EOF) drains it.
pub fn run(config: ServeConfig) -> Result<(), String> {
    let has_listener = config.listen.is_some();
    if !has_listener && !config.stdio {
        return Err("nothing to serve on: enable --listen and/or --stdio".into());
    }
    let server = Arc::new(Server::new(config)?);
    if let Some(spec) = server.config.listen.clone() {
        let listener =
            std::net::TcpListener::bind(&spec).map_err(|e| format!("cannot bind `{spec}`: {e}"))?;
        let actual = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        let addr_path = server.config.state_dir.join("addr");
        std::fs::write(&addr_path, format!("{actual}\n"))
            .map_err(|e| format!("cannot write `{}`: {e}", addr_path.display()))?;
        eprintln!("hi-serve: listening on {actual}");
        let accept_server = Arc::clone(&server);
        let conn_timeout = match server.config.conn_timeout_secs {
            0 => None,
            secs => Some(std::time::Duration::from_secs(secs)),
        };
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // A peer that stalls mid-request (or vanishes without a
                // FIN) trips the timeout and the connection thread is
                // reaped, instead of holding its WAIT stream forever.
                let _ = stream.set_read_timeout(conn_timeout);
                let _ = stream.set_write_timeout(conn_timeout);
                let conn_server = Arc::clone(&accept_server);
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let mut reader = std::io::BufReader::new(read_half);
                    let mut writer = stream;
                    let _ = serve_connection(&conn_server, &mut reader, &mut writer);
                });
            }
        });
    }
    if server.config.stdio {
        let stdio_server = Arc::clone(&server);
        let shutdown_on_eof = !has_listener;
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = stdin.lock();
            let mut writer = stdout.lock();
            let _ = serve_connection(&stdio_server, &mut reader, &mut writer);
            if shutdown_on_eof {
                stdio_server.request_shutdown();
            }
        });
    }
    server.scheduler_loop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hi-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_config(tag: &str) -> ServeConfig {
        let mut config = ServeConfig::new(test_dir(tag));
        config.threads = 1;
        config
    }

    const QUICK_PROFILE: &str = "profile alice\ntsim 2\nruns 1\npdrmin 0.9\n";

    fn drive(server: &Server, script: &str) -> String {
        let mut reader = Cursor::new(script.as_bytes().to_vec());
        let mut out = Vec::new();
        serve_connection(server, &mut reader, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn queued_jobs_survive_a_restart() {
        let config = quick_config("restart");
        let server = Server::new(config.clone()).unwrap();
        let ids = server.submit(QUICK_PROFILE).unwrap();
        assert_eq!(ids, vec![1]);
        assert_eq!(server.status(1), Some(JobState::Queued));
        assert!(server.result(1).is_err(), "no result before the job runs");
        server.request_shutdown();
        server.scheduler_loop(); // exits immediately: shutdown already set
        drop(server);
        // Restart: the queued record was persisted, so the job is back
        // in the queue with the same id and runs to completion.
        let server = Server::new(config.clone()).unwrap();
        assert_eq!(server.status(1), Some(JobState::Queued));
        let ids = server.submit(QUICK_PROFILE).unwrap();
        assert_eq!(ids, vec![2], "id allocation resumes past restored jobs");
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn protocol_end_to_end_over_in_memory_transport() {
        let config = quick_config("e2e");
        let server = Arc::new(Server::new(config.clone()).unwrap());
        let scheduler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.scheduler_loop())
        };
        let submit = format!("SUBMIT 4\n{QUICK_PROFILE}");
        let out = drive(&server, &submit);
        assert_eq!(out, "OK job 1\n");
        // WAIT streams at least one progress event, then the terminal
        // status; RESULT returns the counted block.
        let out = drive(&server, "WAIT 1\n");
        assert!(out.contains("EVENT 1 iteration 1 simulations"), "{out}");
        assert!(out.ends_with("OK status 1 done\n"), "{out}");
        let out = drive(&server, "RESULT 1\nSTATS\nSHUTDOWN\n");
        assert!(out.starts_with("OK result 1 "), "{out}");
        assert!(out.contains("\nprofile alice\n"), "{out}");
        assert!(out.contains("\nstatus feasible\n"), "{out}");
        assert!(out.contains("serve.jobs.completed 1\n"), "{out}");
        assert!(out.ends_with("OK shutdown\n"), "{out}");
        scheduler.join().unwrap();
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn duplicate_submission_is_served_from_the_fleet_cache() {
        let config = quick_config("dedup");
        let server = Arc::new(Server::new(config.clone()).unwrap());
        let scheduler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.scheduler_loop())
        };
        let submit = format!("SUBMIT 4\n{QUICK_PROFILE}SUBMIT 4\n{QUICK_PROFILE}WAIT 2\n");
        let out = drive(&server, &submit);
        assert!(out.ends_with("OK status 2 done\n"), "{out}");
        let first = server.result(1).unwrap();
        let second = server.result(2).unwrap();
        assert!(first.contains("status feasible"), "{first}");
        let sims: Vec<&str> = second
            .lines()
            .filter(|l| l.starts_with("simulations "))
            .collect();
        assert_eq!(sims, vec!["simulations 0"], "{second}");
        assert!(server.fleet.stats().hits > 0);
        assert!(server.stats_block().contains("serve.fleet.cache_hits"),);
        drive(&server, "SHUTDOWN\n");
        scheduler.join().unwrap();
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn malformed_and_invalid_submissions_bounce_with_diagnostics() {
        let config = quick_config("bounce");
        let server = Server::new(config.clone()).unwrap();
        let out = drive(&server, "SUBMIT 1\nprofile a junk here\nNOPE\nSTATUS 9\n");
        // `profile a junk here` is a legal id (rest of line) — but the
        // lone payload line leaves defaults, which lint accepts; so use
        // the response shape only for the malformed request coverage.
        assert!(out.contains("ERR unknown request `NOPE`"), "{out}");
        assert!(out.contains("ERR unknown job 9"), "{out}");
        let err = server.submit("profile a\ngeometry zero\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = server.submit("profile a\npdrmin 2\n").unwrap_err();
        assert!(err.contains("HL042"), "{err}");
        let err = server
            .submit("profile a\nfaults /no/such/file.suite worst\n")
            .unwrap_err();
        assert!(err.contains("cannot read fault suite"), "{err}");
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn cancel_takes_a_queued_job_terminal() {
        let config = quick_config("cancel");
        let server = Server::new(config.clone()).unwrap();
        let ids = server.submit(QUICK_PROFILE).unwrap();
        assert_eq!(server.cancel(ids[0]), Ok(JobState::Cancelled));
        assert_eq!(server.cancel(ids[0]), Ok(JobState::Cancelled), "idempotent");
        let block = server.result(ids[0]).unwrap();
        assert!(block.contains("status cancelled"), "{block}");
        assert!(server.cancel(99).is_err());
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn hl043_rejects_a_broken_daemon_config() {
        let mut config = quick_config("hl043");
        config.queue_capacity = 0;
        let err = Server::new(config).unwrap_err();
        assert!(err.contains("HL043"), "{err}");
        let mut config = quick_config("hl043b");
        config.max_events = Some(1);
        let err = Server::new(config).unwrap_err();
        assert!(err.contains("warm-up floor"), "{err}");
    }

    #[test]
    fn hl044_rejects_broken_cache_persistence() {
        let mut config = quick_config("hl044");
        config.compact_threshold = 0;
        let err = Server::new(config).unwrap_err();
        assert!(err.contains("HL044"), "{err}");
        let mut config = quick_config("hl044b");
        config.cache_dir = Some(config.state_dir.clone());
        let err = Server::new(config).unwrap_err();
        assert!(err.contains("collides"), "{err}");
    }

    #[test]
    fn a_restarted_daemon_serves_persisted_evaluations_warm() {
        let config = quick_config("warm");
        {
            let server = Arc::new(Server::new(config.clone()).unwrap());
            let scheduler = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.scheduler_loop())
            };
            let submit = format!("SUBMIT 4\n{QUICK_PROFILE}WAIT 1\nSHUTDOWN\n");
            let out = drive(&server, &submit);
            assert!(out.contains("OK status 1 done"), "{out}");
            scheduler.join().unwrap();
            let first = server.result(1).unwrap();
            assert!(first.contains("status feasible"), "{first}");
            let stats = server.segments.stats();
            assert!(stats.persisted > 0, "settle must persist evaluations");
        }
        // Cold process, warm disk: a twin submission replays entirely
        // from the hydrated segment — zero fresh simulations.
        let server = Arc::new(Server::new(config.clone()).unwrap());
        assert!(server.segments.stats().loaded > 0, "segments must reload");
        let scheduler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.scheduler_loop())
        };
        let submit = format!("SUBMIT 4\n{QUICK_PROFILE}WAIT 2\nSHUTDOWN\n");
        let out = drive(&server, &submit);
        assert!(out.contains("OK status 2 done"), "{out}");
        scheduler.join().unwrap();
        let warm = server.result(2).unwrap();
        let sims: Vec<&str> = warm
            .lines()
            .filter(|l| l.starts_with("simulations "))
            .collect();
        assert_eq!(sims, vec!["simulations 0"], "{warm}");
        // And the answer is identical to the cold run's, modulo the
        // job id and the simulation count (32 cold, 0 warm) — exactly
        // the two lines that are *supposed* to differ.
        let cold_body = server.result(1).unwrap();
        let strip = |block: &str| {
            block
                .lines()
                .filter(|l| !l.starts_with("job ") && !l.starts_with("simulations "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold_body), strip(&warm));
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn idempotency_tokens_replay_instead_of_duplicating() {
        let config = quick_config("token");
        let server = Server::new(config.clone()).unwrap();
        let ids = server
            .submit_with_token(QUICK_PROFILE, Some("retry-1"))
            .unwrap();
        assert_eq!(ids, vec![1]);
        // The retried submit returns the same id without queueing again.
        let replay = server
            .submit_with_token(QUICK_PROFILE, Some("retry-1"))
            .unwrap();
        assert_eq!(replay, vec![1]);
        assert_eq!(server.submit(QUICK_PROFILE).unwrap(), vec![2]);
        // Same token, different payload: a typed refusal, not a job.
        let twin = QUICK_PROFILE.replace("alice", "mallory");
        let err = server
            .submit_with_token(&twin, Some("retry-1"))
            .unwrap_err();
        assert!(err.starts_with("token-reuse retry-1"), "{err}");
        // Tokens survive a restart via the job records.
        drop(server);
        let server = Server::new(config.clone()).unwrap();
        let replay = server
            .submit_with_token(QUICK_PROFILE, Some("retry-1"))
            .unwrap();
        assert_eq!(replay, vec![1], "token bindings rebuild from records");
        // Wire-level: the same SUBMIT line twice yields the same id.
        let submit = format!("SUBMIT 4 tok-A\n{QUICK_PROFILE}SUBMIT 4 tok-A\n{QUICK_PROFILE}");
        let out = drive(&server, &submit);
        assert_eq!(out, "OK job 3\nOK job 3\n");
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn overload_is_a_typed_busy_refusal() {
        let mut config = quick_config("busy");
        config.queue_capacity = 1;
        let server = Server::new(config.clone()).unwrap();
        assert_eq!(server.submit(QUICK_PROFILE).unwrap(), vec![1]);
        let err = server.submit(QUICK_PROFILE).unwrap_err();
        assert!(err.starts_with("busy: "), "{err}");
        assert!(err.contains("retry later"), "{err}");
        // Wire level: the refusal surfaces as `ERR busy ...`.
        let submit = format!("SUBMIT 4\n{QUICK_PROFILE}");
        let out = drive(&server, &submit);
        assert!(out.starts_with("ERR busy: "), "{out}");
        // A token replay still resolves while the queue is full.
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn stats_block_reports_cache_persistence_counters() {
        let config = quick_config("stats18");
        let server = Server::new(config.clone()).unwrap();
        let block = server.stats_block();
        assert_eq!(block.lines().count(), 18, "{block}");
        for counter in [
            "serve.cache.entries_persisted ",
            "serve.cache.entries_loaded ",
            "serve.cache.compactions ",
            "serve.cache.segments_quarantined ",
            "serve.pareto.inserts ",
            "serve.pareto.dominated ",
            "serve.pareto.queries ",
            "serve.pareto.points_loaded ",
            "serve.pareto.points_persisted ",
        ] {
            assert!(block.contains(counter), "{block}");
        }
        let out = drive(&server, "STATS\n");
        assert!(out.starts_with("OK stats 18\n"), "{out}");
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn front_streams_the_archive_and_warns_before_any_job() {
        let config = quick_config("front");
        let server = Arc::new(Server::new(config.clone()).unwrap());
        let ids = server.submit(QUICK_PROFILE).unwrap();
        // Queued but never run: the archive is empty and HL047 advises.
        let early = server.front_block(ids[0]).unwrap();
        assert!(early.contains("simulations 0\n"), "{early}");
        assert!(early.contains("note HL047 "), "{early}");
        assert!(server.front_block(99).is_err(), "unknown job refused");
        let scheduler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.scheduler_loop())
        };
        let out = drive(&server, "WAIT 1\nFRONT 1\nFRONT 99\nSHUTDOWN\n");
        assert!(out.contains("OK status 1 done"), "{out}");
        assert!(out.contains("OK front 1 "), "{out}");
        assert!(out.contains("\npoint "), "{out}");
        assert!(!out.contains("HL047"), "a populated front is not premature");
        assert!(out.contains("ERR unknown job 99"), "{out}");
        scheduler.join().unwrap();
        // The job ran: its evaluations were simulated fresh this process.
        let block = server.front_block(1).unwrap();
        let sims: Vec<&str> = block
            .lines()
            .filter(|l| l.starts_with("simulations "))
            .collect();
        assert_ne!(sims, vec!["simulations 0"], "{block}");
        assert!(server.fronts.stats().persisted > 0, "front must settle");
        // Three queries counted: the two on job 1 before and after the
        // run, plus the wire-level FRONT 1. Unknown jobs do not count.
        assert!(server.stats_block().contains("serve.pareto.queries 3"));
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn a_restarted_daemon_answers_front_warm_with_zero_simulations() {
        let config = quick_config("front-warm");
        let cold = {
            let server = Arc::new(Server::new(config.clone()).unwrap());
            let scheduler = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.scheduler_loop())
            };
            let submit = format!("SUBMIT 4\n{QUICK_PROFILE}WAIT 1\nSHUTDOWN\n");
            drive(&server, &submit);
            scheduler.join().unwrap();
            server.front_block(1).unwrap()
        };
        assert!(cold.contains("\npoint "), "{cold}");
        // Cold process, warm disk: job 1's record restores, the archive
        // hydrates from its front segment, and the whole block matches
        // byte for byte except the simulation count — which must be 0.
        let server = Server::new(config.clone()).unwrap();
        let warm = server.front_block(1).unwrap();
        assert!(warm.contains("\nsimulations 0\n"), "{warm}");
        let strip = |block: &str| {
            block
                .lines()
                .filter(|l| !l.starts_with("simulations "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));
        assert!(server.fronts.stats().loaded > 0, "front segments reload");
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }

    #[test]
    fn the_front_is_identical_across_worker_thread_counts() {
        let mut blocks = Vec::new();
        for threads in [1, 8] {
            let mut config = quick_config(&format!("front-t{threads}"));
            config.threads = threads;
            let server = Arc::new(Server::new(config.clone()).unwrap());
            let scheduler = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.scheduler_loop())
            };
            let submit = format!("SUBMIT 4\n{QUICK_PROFILE}WAIT 1\nSHUTDOWN\n");
            drive(&server, &submit);
            scheduler.join().unwrap();
            blocks.push(server.front_block(1).unwrap());
            let _ = std::fs::remove_dir_all(&config.state_dir);
        }
        assert_eq!(blocks[0], blocks[1], "front depends on thread count");
    }
}
