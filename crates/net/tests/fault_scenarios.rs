//! Scenario-scripted fault injection: crash/recover windows, link
//! blackouts, battery depletions and interference bursts, all addressed
//! by body *site* so one scenario applies across every placement.

use hi_channel::StaticChannel;
use hi_des::{SimDuration, SimTime};
use hi_net::{
    simulate, simulate_stochastic, BatteryDepletion, FaultScenario, InterferenceBurst,
    LinkBlackout, MacKind, NetworkConfig, Routing, SiteOutage, TxPower, Window,
};

fn t_sim() -> SimDuration {
    SimDuration::from_secs(60.0)
}

fn base() -> NetworkConfig {
    NetworkConfig::new(
        vec![
            hi_channel::BodyLocation::Chest,     // site 0
            hi_channel::BodyLocation::LeftHip,   // site 1
            hi_channel::BodyLocation::LeftAnkle, // site 3
            hi_channel::BodyLocation::LeftWrist, // site 5
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    )
}

fn run(cfg: &NetworkConfig) -> hi_net::SimOutcome {
    simulate(cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap()
}

#[test]
fn crash_recover_window_sits_between_nominal_and_permanent() {
    let nominal = run(&base());
    assert_eq!(nominal.pdr, 1.0);

    let mut windowed = base();
    windowed.scenario = FaultScenario::named("mid-run reboot");
    windowed.scenario.outages.push(SiteOutage {
        site: 5,
        window: Window::from_secs(20.0, 40.0),
    });
    let windowed = run(&windowed);

    let mut permanent = base();
    permanent.scenario = FaultScenario::named("never comes back");
    permanent.scenario.outages.push(SiteOutage {
        site: 5,
        window: Window::open_ended(SimTime::ZERO),
    });
    let permanent = run(&permanent);

    assert!(
        windowed.pdr < nominal.pdr,
        "a 20 s outage must cost PDR ({} vs {})",
        windowed.pdr,
        nominal.pdr
    );
    assert!(
        windowed.pdr > permanent.pdr,
        "recovering must beat staying down ({} vs {})",
        windowed.pdr,
        permanent.pdr
    );
}

#[test]
fn blackout_suppresses_the_link_but_only_while_active() {
    let nominal = run(&base());

    let mut dark = base();
    dark.scenario = FaultScenario::named("chest-wrist dark");
    dark.scenario.blackouts.push(LinkBlackout {
        site_a: 0,
        site_b: 5,
        window: Window::open_ended(SimTime::ZERO),
    });
    let dark = run(&dark);
    assert!(
        dark.pdr < nominal.pdr,
        "an always-dark hub link must cost PDR ({} vs {})",
        dark.pdr,
        nominal.pdr
    );

    let mut brief = base();
    brief.scenario = FaultScenario::named("brief shadowing");
    brief.scenario.blackouts.push(LinkBlackout {
        site_a: 0,
        site_b: 5,
        window: Window::from_secs(10.0, 20.0),
    });
    let brief = run(&brief);
    assert!(
        brief.pdr > dark.pdr,
        "a 10 s blackout must beat a permanent one ({} vs {})",
        brief.pdr,
        dark.pdr
    );
}

#[test]
fn interference_burst_degrades_every_link() {
    let nominal = run(&base());
    let mut jammed = base();
    jammed.scenario = FaultScenario::named("wideband jammer");
    jammed.scenario.bursts.push(InterferenceBurst {
        window: Window::from_secs(10.0, 50.0),
        extra_loss_db: 100.0, // 50 dB channel + 100 dB: no budget closes
    });
    let jammed = run(&jammed);
    assert!(
        jammed.pdr < nominal.pdr,
        "a 40 s jammer must cost PDR ({} vs {})",
        jammed.pdr,
        nominal.pdr
    );
}

#[test]
fn battery_depletion_is_permanent() {
    let nominal = run(&base());
    let mut depleted = base();
    depleted.scenario = FaultScenario::named("wrist battery dies");
    depleted.scenario.depletions.push(BatteryDepletion {
        site: 5,
        at: SimDuration::from_secs(30.0),
    });
    let depleted = run(&depleted);
    assert!(
        depleted.pdr < nominal.pdr,
        "a dead node must cost PDR ({} vs {})",
        depleted.pdr,
        nominal.pdr
    );
    assert!(
        depleted.counts.generated < nominal.counts.generated,
        "a dead source stops generating"
    );
}

#[test]
fn faults_on_unoccupied_sites_are_no_ops() {
    let mut cfg = base();
    cfg.scenario = FaultScenario::named("elsewhere");
    // Sites 8 (head) and 9 (back) are not in this placement.
    cfg.scenario.outages.push(SiteOutage {
        site: 8,
        window: Window::open_ended(SimTime::ZERO),
    });
    cfg.scenario.depletions.push(BatteryDepletion {
        site: 9,
        at: SimDuration::from_secs(1.0),
    });
    cfg.scenario.blackouts.push(LinkBlackout {
        site_a: 8,
        site_b: 9,
        window: Window::open_ended(SimTime::ZERO),
    });
    assert_eq!(run(&cfg), run(&base()), "unoccupied sites must not matter");
}

#[test]
fn fault_injected_runs_are_deterministic() {
    let mut cfg = base();
    cfg.scenario = FaultScenario::named("everything at once");
    cfg.scenario.outages.push(SiteOutage {
        site: 3,
        window: Window::from_secs(5.0, 25.0),
    });
    cfg.scenario.bursts.push(InterferenceBurst {
        window: Window::from_secs(30.0, 45.0),
        extra_loss_db: 30.0,
    });
    let channel = hi_channel::ChannelParams::default();
    let a = simulate_stochastic(&cfg, channel, t_sim(), 77).unwrap();
    let b = simulate_stochastic(&cfg, channel, t_sim(), 77).unwrap();
    assert_eq!(a, b, "same seed, same scenario, same bits");
    let nominal = simulate_stochastic(&base(), channel, t_sim(), 77).unwrap();
    assert_ne!(a, nominal, "the scenario must actually bite");
}
