//! Checkpoint/resume for Algorithm 1.
//!
//! An [`ExploreCheckpoint`] captures the full exploration state after any
//! completed iteration: the power-cut ladder (which determines the MILP's
//! remaining admissible region), the incumbent, and the effort counters.
//! Replaying the ladder into a fresh encoding visits exactly the levels a
//! straight-through run would have visited next, so checkpoint-and-resume
//! is bit-identical to never stopping (`resume_is_bit_identical` in
//! `tests/determinism.rs` certifies this; CI byte-diffs the CLI
//! transcripts).
//!
//! The on-disk format is a line-oriented text file. Every `f64` is
//! round-tripped through [`f64::to_bits`] as 16 hex digits — decimal
//! formatting would lose bits and silently break the bit-identity
//! contract. The design point travels as its
//! [`fingerprint`](DesignPoint::fingerprint). No external serialization
//! crate is involved.
//!
//! # Crash safety (format v2)
//!
//! Version 2 arms the format against the failure this file exists for —
//! the process dying mid-write:
//!
//! * [`to_text`](ExploreCheckpoint::to_text) ends the file with a
//!   `crc32 <8 hex digits>` trailer over every byte through the `end`
//!   line, so truncation and bit rot are *detected*, never resumed from;
//! * [`write_atomic`](ExploreCheckpoint::write_atomic) stages the bytes
//!   in a `.tmp` sibling, fsyncs, rotates any previous checkpoint to
//!   `.prev`, then renames into place — a reader observes either the old
//!   intact file or the new intact file, never a torn one;
//! * [`load_recovering`] falls back to the `.prev` rotation when the
//!   primary file is unusable, reporting exactly what was wrong with the
//!   primary ([`CheckpointRecovery::fallback`]); when both are unusable
//!   the error keeps the primary's line-precise diagnostic and is typed
//!   ([`CheckpointLoadError`]) so the CLI can tell an unreadable file
//!   (exit 3) from a corrupt one (exit 4).
//!
//! Version 1 files (no trailer) still parse, so pre-v2 checkpoints
//! remain resumable.

use std::path::{Path, PathBuf};

use crate::crc32::crc32_ieee;
use crate::evaluator::Evaluation;
use crate::point::DesignPoint;

/// Engine label recorded in checkpoints by the paper's Algorithm 1 (the
/// default: a checkpoint with no `engine` line belongs to it).
pub const ENGINE_ALGORITHM1: &str = "algorithm1";
/// Engine label recorded in checkpoints by the Γ-robust MILP engine.
pub const ENGINE_ROBUST_MILP: &str = "robust-milp";
/// Engine label recorded in checkpoints by the ILP restriction-and-repair
/// heuristic.
pub const ENGINE_ILP_HEURISTIC: &str = "ilp-heuristic";

/// The resumable state of an exploration (Algorithm 1 or one of the
/// robust engines).
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreCheckpoint {
    /// The engine that recorded the checkpoint
    /// ([`ENGINE_ALGORITHM1`] when the file carries no `engine` line);
    /// resume exits with a diagnostic when it does not match the engine
    /// asked to continue, because each engine's cut ladder replays into a
    /// different encoding.
    pub engine: String,
    /// The reliability floor the exploration ran at (resume validates it).
    pub pdr_min: f64,
    /// Whether the α-corrected bound was active (resume validates it).
    pub alpha_correction: bool,
    /// The power-cut ladder, in application order.
    pub cuts: Vec<f64>,
    /// MILP iterations completed.
    pub iterations: u32,
    /// Candidates proposed so far.
    pub candidates_proposed: u64,
    /// Unique simulations spent so far.
    pub simulations: u64,
    /// The incumbent, if any.
    pub best: Option<(DesignPoint, Evaluation)>,
}

const HEADER_V1: &str = "hi-opt explore checkpoint v1";
const HEADER_V2: &str = "hi-opt explore checkpoint v2";

fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits, got {s:?}"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad float bits {s:?}"))
}

/// `<path><suffix>` in the same directory (`x.ck` → `x.ck.prev`).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(suffix);
    PathBuf::from(os)
}

/// Splits a v2 file into the CRC-covered body and the recorded CRC.
/// Returns `(body, recorded_crc, trailer_line_number)`.
fn split_crc_trailer(text: &str) -> Result<(&str, u32, usize), String> {
    // The trailer is the last non-empty line; everything before its first
    // byte (including the newline that ends the `end` line) is covered.
    let mut trailer: Option<(usize, usize, &str)> = None;
    let mut offset = 0;
    for (index, line) in text.split_inclusive('\n').enumerate() {
        if !line.trim().is_empty() {
            trailer = Some((index + 1, offset, line.trim()));
        }
        offset += line.len();
    }
    let Some((lineno, start, line)) = trailer else {
        return Err("truncated checkpoint: missing crc32 trailer".into());
    };
    let Some(rest) = line.strip_prefix("crc32 ") else {
        return Err("truncated checkpoint: missing crc32 trailer".into());
    };
    let rest = rest.trim();
    if rest.len() != 8 {
        return Err(format!("line {lineno}: bad crc32 trailer {rest:?}"));
    }
    let recorded = u32::from_str_radix(rest, 16)
        .map_err(|_| format!("line {lineno}: bad crc32 trailer {rest:?}"))?;
    Ok((&text[..start], recorded, lineno))
}

impl ExploreCheckpoint {
    /// Captures the state of a finished (or budget-stopped) exploration.
    pub fn from_outcome(
        pdr_min: f64,
        alpha_correction: bool,
        outcome: &crate::ExplorationOutcome,
    ) -> Self {
        Self {
            engine: ENGINE_ALGORITHM1.to_string(),
            pdr_min,
            alpha_correction,
            cuts: outcome.cuts.clone(),
            iterations: outcome.iterations,
            candidates_proposed: outcome.candidates_proposed,
            simulations: outcome.simulations,
            best: outcome.best,
        }
    }

    /// The same checkpoint relabeled as belonging to `engine` — the
    /// robust engines stamp their label on the snapshots they record.
    #[must_use]
    pub fn with_engine(mut self, engine: &str) -> Self {
        self.engine = engine.to_string();
        self
    }

    /// Renders the checkpoint as its text format (v2: body + CRC-32
    /// trailer).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER_V2);
        out.push('\n');
        out.push_str(&format!("pdr_min {}\n", f64_to_hex(self.pdr_min)));
        out.push_str(&format!(
            "alpha_correction {}\n",
            u8::from(self.alpha_correction)
        ));
        out.push_str(&format!("iterations {}\n", self.iterations));
        out.push_str(&format!("candidates {}\n", self.candidates_proposed));
        out.push_str(&format!("simulations {}\n", self.simulations));
        // Only non-default engines write the line: Algorithm 1 checkpoints
        // stay byte-identical to every pre-engine file (and resumable by
        // pre-engine readers, which reject unknown keys).
        if self.engine != ENGINE_ALGORITHM1 {
            out.push_str(&format!("engine {}\n", self.engine));
        }
        for cut in &self.cuts {
            out.push_str(&format!("cut {}\n", f64_to_hex(*cut)));
        }
        match &self.best {
            None => out.push_str("best none\n"),
            Some((point, eval)) => out.push_str(&format!(
                "best {:x} {} {} {} {}\n",
                point.fingerprint(),
                f64_to_hex(eval.pdr),
                f64_to_hex(eval.nlt_days),
                f64_to_hex(eval.power_mw),
                f64_to_hex(eval.latency_ms),
            )),
        }
        out.push_str("end\n");
        out.push_str(&format!("crc32 {:08x}\n", crc32_ieee(out.as_bytes())));
        out
    }

    /// Parses the text format written by [`to_text`](Self::to_text), or
    /// the legacy v1 format (no CRC trailer).
    ///
    /// # Errors
    ///
    /// Returns a line-attributed message on any malformed content; for v2
    /// files the CRC trailer is verified before any field is trusted, so
    /// a torn or bit-rotted file is named as corrupt rather than parsed
    /// partially.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let header = text.lines().next().ok_or("empty checkpoint file")?.trim();
        if header == HEADER_V1 {
            return Self::parse_body(text, HEADER_V1);
        }
        if header != HEADER_V2 {
            return Err(format!(
                "line 1: expected {HEADER_V2:?} (or legacy {HEADER_V1:?}), got {header:?}"
            ));
        }
        let (body, recorded, lineno) = split_crc_trailer(text)?;
        let computed = crc32_ieee(body.as_bytes());
        if computed != recorded {
            return Err(format!(
                "line {lineno}: crc32 mismatch (recorded {recorded:08x}, computed \
                 {computed:08x}) — the checkpoint is corrupt or truncated"
            ));
        }
        Self::parse_body(body, HEADER_V2)
    }

    /// Parses the line-oriented body shared by both format versions.
    fn parse_body(text: &str, expected_header: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty checkpoint file")?;
        if header.trim() != expected_header {
            return Err(format!(
                "line 1: expected {expected_header:?}, got {header:?}"
            ));
        }
        let mut engine: Option<String> = None;
        let mut pdr_min = None;
        let mut alpha_correction = None;
        let mut iterations = None;
        let mut candidates = None;
        let mut simulations = None;
        let mut cuts = Vec::new();
        let mut best: Option<Option<(DesignPoint, Evaluation)>> = None;
        let mut ended = false;
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(format!("line {lineno}: content after \"end\""));
            }
            let bad = |what: &str| format!("line {lineno}: {what}");
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "engine" => {
                    if rest.is_empty() {
                        return Err(bad("empty engine name"));
                    }
                    engine = Some(rest.to_string());
                }
                "pdr_min" => pdr_min = Some(f64_from_hex(rest).map_err(|e| bad(&e))?),
                "alpha_correction" => {
                    alpha_correction = Some(match rest {
                        "0" => false,
                        "1" => true,
                        other => return Err(bad(&format!("bad alpha flag {other:?}"))),
                    })
                }
                "iterations" => {
                    iterations = Some(
                        rest.parse::<u32>()
                            .map_err(|_| bad("bad iteration count"))?,
                    )
                }
                "candidates" => {
                    candidates = Some(
                        rest.parse::<u64>()
                            .map_err(|_| bad("bad candidate count"))?,
                    )
                }
                "simulations" => {
                    simulations = Some(
                        rest.parse::<u64>()
                            .map_err(|_| bad("bad simulation count"))?,
                    )
                }
                "cut" => cuts.push(f64_from_hex(rest).map_err(|e| bad(&e))?),
                "best" if rest == "none" => best = Some(None),
                "best" => {
                    let fields: Vec<&str> = rest.split_whitespace().collect();
                    // Four fields is the pre-latency format; those
                    // checkpoints stay resumable with latency zeroed.
                    if fields.len() != 4 && fields.len() != 5 {
                        return Err(bad(
                            "best needs <fingerprint> <pdr> <nlt> <power> [<latency>]",
                        ));
                    }
                    let fp =
                        u64::from_str_radix(fields[0], 16).map_err(|_| bad("bad fingerprint"))?;
                    let point = DesignPoint::from_fingerprint(fp)
                        .ok_or_else(|| bad("fingerprint decodes to no design point"))?;
                    let eval = Evaluation {
                        pdr: f64_from_hex(fields[1]).map_err(|e| bad(&e))?,
                        nlt_days: f64_from_hex(fields[2]).map_err(|e| bad(&e))?,
                        power_mw: f64_from_hex(fields[3]).map_err(|e| bad(&e))?,
                        latency_ms: match fields.get(4) {
                            Some(raw) => f64_from_hex(raw).map_err(|e| bad(&e))?,
                            None => 0.0,
                        },
                    };
                    best = Some(Some((point, eval)));
                }
                "end" => ended = true,
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        if !ended {
            return Err("truncated checkpoint: missing \"end\" line".into());
        }
        Ok(Self {
            engine: engine.unwrap_or_else(|| ENGINE_ALGORITHM1.to_string()),
            pdr_min: pdr_min.ok_or("missing pdr_min")?,
            alpha_correction: alpha_correction.ok_or("missing alpha_correction")?,
            cuts,
            iterations: iterations.ok_or("missing iterations")?,
            candidates_proposed: candidates.ok_or("missing candidates")?,
            simulations: simulations.ok_or("missing simulations")?,
            best: best.ok_or("missing best")?,
        })
    }

    /// Writes the checkpoint to `path` crash-safely: the bytes are staged
    /// in `<path>.tmp` and fsynced, any existing checkpoint rotates to
    /// `<path>.prev`, and the stage renames into place. A crash at any
    /// point leaves either the previous intact file, the new intact file,
    /// or an intact `.prev` that [`load_recovering`] falls back to —
    /// never a torn checkpoint under the primary name.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let tmp = sibling(path, ".tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_text().as_bytes())?;
            file.sync_all()?;
        }
        if path.exists() {
            // A failed rotation only costs the fallback copy; the rename
            // below still lands the new checkpoint atomically.
            let _ = std::fs::rename(path, sibling(path, ".prev"));
        }
        std::fs::rename(&tmp, path)
    }
}

/// Why a checkpoint could not be loaded, typed by whose fault it is so
/// the CLI can exit 3 (the OS refused the file) or 4 (the file is
/// malformed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointLoadError {
    /// The file (and any `.prev` rotation) could not be read at all.
    Io(String),
    /// The file was read but is corrupt, truncated or malformed — the
    /// message carries the offending line.
    Spec(String),
}

impl std::fmt::Display for CheckpointLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(msg) | Self::Spec(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CheckpointLoadError {}

/// A successfully loaded checkpoint, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecovery {
    /// The loaded state.
    pub checkpoint: ExploreCheckpoint,
    /// `Some(diagnostic)` when the primary file was unusable and the
    /// `.prev` rotation was loaded instead; the diagnostic says exactly
    /// what was wrong with the primary. `None` for a clean load.
    pub fallback: Option<String>,
}

/// Reads and parses the checkpoint at `path` (either format version).
pub fn load_checkpoint_file(path: &Path) -> Result<ExploreCheckpoint, CheckpointLoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        CheckpointLoadError::Io(format!("cannot read checkpoint `{}`: {e}", path.display()))
    })?;
    ExploreCheckpoint::from_text(&text)
        .map_err(|e| CheckpointLoadError::Spec(format!("{}: {e}", path.display())))
}

/// Loads `path`, falling back to the `<path>.prev` rotation
/// [`write_atomic`](ExploreCheckpoint::write_atomic) maintains when the
/// primary is unreadable or corrupt.
///
/// # Errors
///
/// When both files are unusable, the primary's diagnostic wins (it is the
/// file the user named, and its message is line-precise); the error kind
/// is the primary's too, so a corrupt checkpoint stays a spec error even
/// if no rotation exists.
pub fn load_recovering(path: &Path) -> Result<CheckpointRecovery, CheckpointLoadError> {
    let primary_err = match load_checkpoint_file(path) {
        Ok(checkpoint) => {
            return Ok(CheckpointRecovery {
                checkpoint,
                fallback: None,
            })
        }
        Err(e) => e,
    };
    let prev = sibling(path, ".prev");
    match load_checkpoint_file(&prev) {
        Ok(checkpoint) => Ok(CheckpointRecovery {
            checkpoint,
            fallback: Some(format!(
                "{primary_err}; recovered from the previous auto-checkpoint `{}`",
                prev.display()
            )),
        }),
        Err(_) => Err(primary_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;

    fn sample() -> ExploreCheckpoint {
        ExploreCheckpoint {
            engine: ENGINE_ALGORITHM1.to_string(),
            pdr_min: 0.9,
            alpha_correction: true,
            cuts: vec![1.25, 1.5000000000000002, f64::MIN_POSITIVE],
            iterations: 3,
            candidates_proposed: 71,
            simulations: 68,
            best: Some((
                DesignPoint {
                    placement: Placement::from_indices([0, 2, 4, 7]),
                    tx_power: TxPower::Minus10Dbm,
                    mac: MacChoice::Csma,
                    routing: RouteChoice::Mesh,
                },
                Evaluation {
                    pdr: 0.9375,
                    nlt_days: 181.2345678901234,
                    power_mw: 1.0000000000000004,
                    latency_ms: 7.891011121314152,
                },
            )),
        }
    }

    /// Re-signs a (possibly tampered) v2 body so parse errors in the body
    /// itself are reachable past the CRC gate.
    fn resign(body_and_old_trailer: &str) -> String {
        let end = body_and_old_trailer
            .rfind("crc32 ")
            .expect("v2 text has a trailer");
        let body = &body_and_old_trailer[..end];
        format!("{body}crc32 {:08x}\n", crc32_ieee(body.as_bytes()))
    }

    #[test]
    fn text_roundtrip_is_bit_exact() {
        let cp = sample();
        let parsed = ExploreCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(parsed, cp);
        // PartialEq on f64 misses the -0.0/0.0 and NaN subtleties; check
        // the actual bits of every float too.
        let (_, e1) = cp.best.unwrap();
        let (_, e2) = parsed.best.unwrap();
        assert_eq!(e1.power_mw.to_bits(), e2.power_mw.to_bits());
        for (a, b) in cp.cuts.iter().zip(&parsed.cuts) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn engine_line_roundtrips_and_defaults_to_algorithm1() {
        // The default engine writes no line at all: pre-engine readers
        // (which reject unknown keys) keep resuming Algorithm 1 files.
        let default = sample();
        assert!(!default.to_text().contains("engine "));
        // Non-default engines stamp their label and it round-trips.
        let robust = sample().with_engine(ENGINE_ROBUST_MILP);
        let text = robust.to_text();
        assert!(text.contains("engine robust-milp\n"), "{text}");
        let parsed = ExploreCheckpoint::from_text(&text).unwrap();
        assert_eq!(parsed.engine, ENGINE_ROBUST_MILP);
        assert_eq!(parsed, robust);
        // A file with no engine line parses as Algorithm 1's.
        assert_eq!(
            ExploreCheckpoint::from_text(&default.to_text())
                .unwrap()
                .engine,
            ENGINE_ALGORITHM1
        );
    }

    #[test]
    fn infeasible_checkpoint_roundtrips() {
        let cp = ExploreCheckpoint {
            best: None,
            cuts: vec![],
            ..sample()
        };
        assert_eq!(ExploreCheckpoint::from_text(&cp.to_text()).unwrap(), cp);
    }

    #[test]
    fn legacy_v1_files_still_parse() {
        let cp = sample();
        let v1 = cp
            .to_text()
            .replace("checkpoint v2", "checkpoint v1")
            .lines()
            .filter(|l| !l.starts_with("crc32 "))
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        assert_eq!(ExploreCheckpoint::from_text(&v1).unwrap(), cp);
    }

    #[test]
    fn pre_latency_best_lines_parse_with_latency_zeroed() {
        // Checkpoints written before latency joined the evaluation carry
        // four fields after "best"; they must stay resumable.
        let text = sample().to_text();
        let old_best = text
            .lines()
            .find(|l| l.starts_with("best "))
            .map(|l| l.rsplit_once(' ').unwrap().0.to_string())
            .unwrap();
        let four_field = resign(&text.replace(
            text.lines().find(|l| l.starts_with("best ")).unwrap(),
            &old_best,
        ));
        let parsed = ExploreCheckpoint::from_text(&four_field).unwrap();
        let (_, eval) = parsed.best.unwrap();
        assert_eq!(eval.latency_ms.to_bits(), 0.0f64.to_bits());
        assert_eq!(eval.pdr, sample().best.unwrap().1.pdr);
    }

    #[test]
    fn malformed_files_are_rejected_with_line_numbers() {
        assert!(ExploreCheckpoint::from_text("").is_err());
        assert!(ExploreCheckpoint::from_text("not a checkpoint\n")
            .unwrap_err()
            .contains("line 1"));
        let truncated = sample().to_text().replace("end\n", "");
        assert!(ExploreCheckpoint::from_text(&truncated)
            .unwrap_err()
            .contains("truncated"));
        let garbled = sample().to_text().replace("cut ", "cut zz");
        assert!(ExploreCheckpoint::from_text(&garbled).is_err());
        // Past the CRC gate, body errors stay line-attributed (the first
        // cut line is line 7: header + five counters precede it).
        let garbled = resign(&garbled);
        assert!(ExploreCheckpoint::from_text(&garbled)
            .unwrap_err()
            .contains("line 7"));
        let bad_fp = resign(
            &sample()
                .to_text()
                .replace("best ", "best ffffffffffffffff "),
        );
        // Six fields after "best" — rejected before fingerprint decode.
        assert!(ExploreCheckpoint::from_text(&bad_fp).is_err());
    }

    #[test]
    fn bit_rot_is_named_corrupt_not_parsed() {
        let text = sample().to_text();
        // Flip one content bit without touching the trailer.
        let mut bytes = text.clone().into_bytes();
        let flip_at = text.find("pdr_min ").unwrap() + 9;
        bytes[flip_at] ^= 0x01;
        let tampered = String::from_utf8(bytes).unwrap();
        let err = ExploreCheckpoint::from_text(&tampered).unwrap_err();
        assert!(err.contains("crc32 mismatch"), "{err}");
        assert!(err.contains("corrupt or truncated"), "{err}");
        // Truncating just before the trailer is caught as a missing one.
        let cut = &text[..text.rfind("crc32").unwrap() - 1];
        assert!(ExploreCheckpoint::from_text(cut)
            .unwrap_err()
            .contains("missing crc32 trailer"));
    }

    #[test]
    fn atomic_writes_rotate_and_recovery_prefers_the_primary() {
        let dir = std::env::temp_dir().join(format!("hi-opt-ck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ck");

        let first = ExploreCheckpoint {
            iterations: 1,
            ..sample()
        };
        let second = ExploreCheckpoint {
            iterations: 2,
            ..sample()
        };
        first.write_atomic(&path).unwrap();
        let clean = load_recovering(&path).unwrap();
        assert_eq!(clean.checkpoint, first);
        assert!(clean.fallback.is_none());

        second.write_atomic(&path).unwrap();
        assert_eq!(load_recovering(&path).unwrap().checkpoint, second);
        // The rotation holds the previous state...
        assert_eq!(
            load_checkpoint_file(&sibling(&path, ".prev")).unwrap(),
            first
        );

        // ...and a torn primary falls back to it with a diagnostic.
        let torn = &second.to_text()[..40];
        std::fs::write(&path, torn).unwrap();
        let recovered = load_recovering(&path).unwrap();
        assert_eq!(recovered.checkpoint, first);
        let note = recovered.fallback.unwrap();
        assert!(note.contains("state.ck"), "{note}");
        assert!(note.contains("recovered from"), "{note}");

        // Both gone bad: the primary's line-precise spec error survives.
        std::fs::write(sibling(&path, ".prev"), "not a checkpoint\n").unwrap();
        match load_recovering(&path).unwrap_err() {
            CheckpointLoadError::Spec(msg) => {
                assert!(msg.contains("state.ck"), "{msg}")
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Primary missing entirely, rotation bad: an I/O error.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load_recovering(&path).unwrap_err(),
            CheckpointLoadError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
