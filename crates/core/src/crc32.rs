//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) for the
//! checkpoint trailer.
//!
//! The checkpoint format needs a detector, not a cryptographic digest: a
//! torn write, a truncated file or a flipped bit must be *noticed*, and
//! the workspace builds offline with no hashing crates. This is the
//! standard byte-at-a-time table implementation (init and final XOR
//! `0xFFFF_FFFF`), bit-compatible with `cksum -o3`, zlib and
//! `zip`: `crc32_ieee(b"123456789") == 0xCBF4_3926`.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut crc = n as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The IEEE CRC-32 of `bytes`.
pub fn crc32_ieee(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        assert_eq!(crc32_ieee(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_ieee(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"hi-opt explore checkpoint v2\nend\n".to_vec();
        let crc = crc32_ieee(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32_ieee(&flipped), crc, "flip at {byte}:{bit}");
            }
        }
    }
}
