//! Tests for the beyond-the-paper extensions: heterogeneous traffic
//! rates and energy harvesting.

use hi_channel::{BodyLocation, StaticChannel};
use hi_des::SimDuration;
use hi_net::{simulate, ConfigError, MacKind, NetworkConfig, Routing, TxPower};

fn t_sim() -> SimDuration {
    SimDuration::from_secs(60.0)
}

fn base() -> NetworkConfig {
    NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftAnkle,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    )
}

#[test]
fn rate_overrides_validated() {
    let mut cfg = base();
    cfg.per_node_rates = Some(vec![10.0, 10.0]); // wrong length
    assert_eq!(cfg.validate(), Err(ConfigError::BadRateOverrides));
    cfg.per_node_rates = Some(vec![10.0, 10.0, 0.0, 10.0]); // zero rate
    assert_eq!(cfg.validate(), Err(ConfigError::BadRateOverrides));
    cfg.per_node_rates = Some(vec![10.0, 5.0, 1.0, 50.0]);
    assert_eq!(cfg.validate(), Ok(()));
}

#[test]
fn per_node_rates_shape_generated_counts() {
    let mut cfg = base();
    cfg.per_node_rates = Some(vec![10.0, 5.0, 1.0, 20.0]);
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    // Roughly rate * 60 packets per node; everything delivered (lossless).
    assert_eq!(out.pdr, 1.0);
    let g = out.counts.generated as f64;
    assert!((g - 36.0 * 60.0).abs() < 8.0, "total generated {g}");
    // The chatty node dominates its neighbours' receive energy; the
    // quiet node still receives everything, so power ordering holds:
    // the node transmitting 20 pkt/s burns more than the 1 pkt/s one.
    assert!(out.node_power_mw[3] > out.node_power_mw[2]);
}

#[test]
fn uniform_rates_match_default_behavior() {
    let mut overridden = base();
    overridden.per_node_rates = Some(vec![10.0; 4]);
    let a = simulate(&overridden, StaticChannel::uniform(50.0), t_sim(), 9).unwrap();
    let b = simulate(&base(), StaticChannel::uniform(50.0), t_sim(), 9).unwrap();
    assert_eq!(a, b, "uniform overrides must reproduce the default");
}

#[test]
fn harvesting_extends_lifetime() {
    let plain = simulate(&base(), StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    let mut cfg = base();
    cfg.harvest_power_w = 0.5e-3; // 0.5 mW of harvest
    let harvested = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    assert!(
        harvested.nlt_days > 1.5 * plain.nlt_days,
        "0.5 mW harvest should stretch lifetime: {} vs {}",
        harvested.nlt_days,
        plain.nlt_days
    );
    // Gross power reporting is unchanged (harvest offsets drain, it does
    // not reduce consumption).
    assert_eq!(plain.max_power_mw, harvested.max_power_mw);
}

#[test]
fn net_zero_harvest_means_infinite_lifetime() {
    let mut cfg = base();
    cfg.harvest_power_w = 50e-3; // far above any node's drain
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    assert!(out.nlt_days.is_infinite());
}

mod hybrid_mac {
    use super::*;
    use hi_net::HybridParams;

    fn hybrid_cfg(params: HybridParams, rate: f64) -> NetworkConfig {
        let mut cfg = NetworkConfig::new(
            vec![
                BodyLocation::Chest,
                BodyLocation::LeftHip,
                BodyLocation::LeftAnkle,
                BodyLocation::LeftWrist,
            ],
            TxPower::ZeroDbm,
            MacKind::Hybrid(params),
            Routing::Star { coordinator: 0 },
        );
        cfg.app.packets_per_second = rate;
        cfg.mac_buffer = 64;
        cfg
    }

    #[test]
    fn lossless_hybrid_delivers_everything_at_nominal_load() {
        let cfg = hybrid_cfg(HybridParams::default(), 10.0);
        let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
        assert_eq!(out.pdr, 1.0, "guaranteed slots cover nominal traffic");
    }

    #[test]
    fn contention_phase_collides_scheduled_phase_does_not() {
        // Saturate so the contention tail is exercised every frame.
        let cfg = hybrid_cfg(HybridParams::default(), 300.0);
        let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 2).unwrap();
        assert!(out.counts.collisions > 0, "contention phase must collide");
        // Still better than nothing: the guaranteed slots keep a floor.
        assert!(out.pdr > 0.2, "pdr {}", out.pdr);
    }

    #[test]
    fn zero_contention_slots_degenerate_to_tdma() {
        let params = HybridParams {
            contention_slots: 0,
            ..Default::default()
        };
        let hybrid = simulate(
            &hybrid_cfg(params, 10.0),
            StaticChannel::uniform(50.0),
            t_sim(),
            4,
        )
        .unwrap();
        assert_eq!(hybrid.counts.collisions, 0, "no contention, no collisions");
        assert_eq!(hybrid.pdr, 1.0);
    }

    #[test]
    fn contention_tail_absorbs_asymmetric_bursts_better_than_tdma() {
        // Under *symmetric* saturation round-robin TDMA is optimal (every
        // slot carries a packet). The hybrid's contention tail pays off
        // when ONE node bursts while the others idle: TDMA caps the
        // bursty node at 1/(N * slot) = 250 pkt/s, while the hybrid lets
        // it win most of the (uncontended) random-access slots on top of
        // its guaranteed one.
        let mk = |mac| {
            let mut cfg = hybrid_cfg(
                HybridParams {
                    contention_slots: 8,
                    p: 0.5,
                    ..Default::default()
                },
                10.0,
            );
            cfg.mac = mac;
            // The chest coordinator bursts (its packets reach everyone
            // directly, so no relay backlog muddies the comparison).
            cfg.per_node_rates = Some(vec![320.0, 2.0, 2.0, 2.0]);
            cfg
        };
        let hybrid = simulate(
            &mk(MacKind::Hybrid(HybridParams {
                contention_slots: 8,
                p: 0.5,
                ..Default::default()
            })),
            StaticChannel::uniform(50.0),
            t_sim(),
            4,
        )
        .unwrap();
        let tdma = simulate(
            &mk(MacKind::tdma()),
            StaticChannel::uniform(50.0),
            t_sim(),
            4,
        )
        .unwrap();
        assert!(
            hybrid.pdr > tdma.pdr,
            "hybrid ({}) should out-deliver TDMA ({}) under asymmetric bursts",
            hybrid.pdr,
            tdma.pdr
        );
        // TDMA visibly drops the bursty node's overflow.
        assert!(tdma.counts.buffer_drops > 0);
    }

    #[test]
    fn hybrid_validates_probability_and_slot() {
        let mut cfg = hybrid_cfg(
            HybridParams {
                p: -0.1,
                ..Default::default()
            },
            10.0,
        );
        assert_eq!(
            cfg.validate(),
            Err(hi_net::ConfigError::BadAlohaProbability)
        );
        cfg.mac = MacKind::Hybrid(HybridParams::default());
        cfg.app.packet_len_bytes = 200; // 1.56 ms > 1 ms mini-slot
        assert_eq!(cfg.validate(), Err(hi_net::ConfigError::PacketExceedsSlot));
    }
}
