//! Metrics registry: monotonic counters, gauges and log-scale histograms.
//!
//! The registry is deliberately simple: one mutex around a set of
//! `BTreeMap`s. Instrumentation sites are expected to *batch* locally (e.g.
//! the simplex counts pivots in a stack variable and adds once per solve),
//! so the lock is taken a handful of times per engine call, not per inner
//! loop iteration.
//!
//! Registration keeps a duplicate-preserving definition log, exposed via
//! [`MetricsRegistry::specs`], so static analysis (hi-lint rule HL037) can
//! flag metrics registered twice — usually a copy/paste error that silently
//! merges two unrelated series. In debug builds the registry itself warns on
//! stderr when it sees a duplicate explicit registration.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter (`add`).
    Counter,
    /// Last-write-wins signed level (`set_gauge`).
    Gauge,
    /// Log₂-bucketed value distribution (`record`).
    Histogram,
}

impl MetricKind {
    /// Stable lower-case label, used by sinks and the lint bridge.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One entry in the registry's definition log.
///
/// The log retains duplicates by design: it is the introspection surface
/// that `hi_lint::lint_metrics` (HL037) inspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSpec {
    /// Registered metric name.
    pub name: String,
    /// Registered kind.
    pub kind: MetricKind,
}

/// Fixed log₂-scale histogram over `u64` values.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`, so 65 buckets cover the full `u64` range
/// (`u64::MAX` lands in bucket 64). The mapping is branch-light:
/// `64 - v.leading_zeros()` for nonzero `v`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; 65]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; 65]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The inclusive `[lo, hi]` value range of bucket `index`.
    ///
    /// # Panics
    /// Panics if `index > 64`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index <= 64, "histogram has 65 buckets (0..=64)");
        if index == 0 {
            (0, 0)
        } else if index == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (index - 1), (1 << index) - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (u128 so `u64::MAX` samples cannot overflow).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket observation counts (65 entries).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }
}

#[derive(Default)]
struct RegistryState {
    defs: Vec<MetricSpec>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A point-in-time copy of every metric, sorted by name within each kind.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → cumulative value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → full histogram.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// True when no metric holds any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Registry of named counters, gauges and histograms.
///
/// All methods take `&self`; interior mutability is a single `Mutex`.
/// Updates auto-register the metric on first use, so instrumentation sites
/// never have to pre-declare — but pre-declaring through
/// [`MetricsRegistry::register`] (see [`crate::wellknown::register_all`])
/// feeds the HL037 duplicate-name check and pins the kind.
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<RegistryState>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicitly registers `name` with the given kind.
    ///
    /// The definition log retains duplicates so they stay visible to
    /// introspection ([`MetricsRegistry::specs`]) and to hi-lint's HL037
    /// rule. In debug builds a duplicate registration additionally warns on
    /// stderr — it is a warning, not a panic, because a duplicate merges
    /// series rather than corrupting them.
    pub fn register(&self, name: &str, kind: MetricKind) {
        let mut st = self.state.lock().unwrap();
        #[cfg(debug_assertions)]
        if st.defs.iter().any(|d| d.name == name) {
            eprintln!("hi-trace: metric `{name}` registered more than once (HL037)");
        }
        st.defs.push(MetricSpec {
            name: name.to_string(),
            kind,
        });
        match kind {
            MetricKind::Counter => {
                st.counters.entry(name.to_string()).or_insert(0);
            }
            MetricKind::Gauge => {
                st.gauges.entry(name.to_string()).or_insert(0);
            }
            MetricKind::Histogram => {
                st.histograms.entry(name.to_string()).or_default();
            }
        }
    }

    /// Adds `delta` to the counter `name`, creating it if needed.
    pub fn add(&self, name: &str, delta: u64) {
        let mut st = self.state.lock().unwrap();
        match st.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the gauge `name` to `value`, creating it if needed.
    pub fn set_gauge(&self, name: &str, value: i64) {
        let mut st = self.state.lock().unwrap();
        st.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the histogram `name`, creating it if needed.
    pub fn record(&self, name: &str, value: u64) {
        let mut st = self.state.lock().unwrap();
        st.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        let st = self.state.lock().unwrap();
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// The duplicate-preserving definition log, in registration order.
    ///
    /// This is the introspection iterator consumed by the HL037 lint bridge.
    pub fn specs(&self) -> Vec<MetricSpec> {
        self.state.lock().unwrap().defs.clone()
    }

    /// A sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock().unwrap();
        MetricsSnapshot {
            counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: st
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_zero_one_max() {
        // The three boundary values the bucket map must get exactly right.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Powers of two open a new bucket; one less stays in the previous.
        for i in 1..64 {
            let p = 1u64 << i;
            assert_eq!(Histogram::bucket_index(p), i as usize + 1, "2^{i}");
            assert_eq!(Histogram::bucket_index(p - 1), i as usize, "2^{i}-1");
        }
    }

    #[test]
    fn bucket_ranges_partition_u64() {
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
        // Ranges tile the axis with no gaps or overlaps.
        for i in 1..=64 {
            let (lo, hi) = Histogram::bucket_range(i);
            let (_, prev_hi) = Histogram::bucket_range(i - 1);
            assert_eq!(
                lo,
                prev_hi + 1,
                "bucket {i} must start after bucket {}",
                i - 1
            );
            assert!(lo <= hi);
            // Every value in the range maps back to this bucket.
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
        }
    }

    #[test]
    fn histogram_records_extremes_without_overflow() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.sum(), 1 + 2 * u128::from(u64::MAX));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[64], 2);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn registry_roundtrip_and_duplicate_log() {
        let reg = MetricsRegistry::new();
        reg.register("a.count", MetricKind::Counter);
        reg.register("a.count", MetricKind::Counter); // duplicate retained
        reg.register("b.level", MetricKind::Gauge);
        reg.add("a.count", 2);
        reg.add("a.count", 3);
        reg.add("implicit", 1);
        reg.set_gauge("b.level", -7);
        reg.record("c.hist", 5);

        assert_eq!(reg.counter_value("a.count"), 5);
        assert_eq!(reg.counter_value("absent"), 0);
        let specs = reg.specs();
        assert_eq!(specs.len(), 3, "definition log retains the duplicate");
        assert_eq!(specs[0], specs[1]);

        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.count".into(), 5), ("implicit".into(), 1)]
        );
        assert_eq!(snap.gauges, vec![("b.level".into(), -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }
}
