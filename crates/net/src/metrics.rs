//! Performance metrics: packet delivery ratio, network lifetime and
//! end-to-end delivery latency.

/// End-to-end delivery latency statistics (generation to first clean
/// application-layer arrival, per `(packet, receiver)` pair).
///
/// The paper's §2.1.2 remark contrasts CSMA's non-deterministic delay
/// with TDMA's deterministic slotting; these statistics quantify it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples observed (delivered `(packet, receiver)` pairs).
    pub samples: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Standard deviation, milliseconds — the "jitter" CSMA introduces.
    pub std_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
}

/// Aggregate traffic counters of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounts {
    /// Application packets generated (no retransmissions counted).
    pub generated: u64,
    /// Physical-layer transmissions (originals + relays).
    pub transmissions: u64,
    /// Clean packet receptions delivered to a stack.
    pub deliveries: u64,
    /// Receptions corrupted by collisions.
    pub collisions: u64,
    /// Packets dropped on a full MAC buffer.
    pub buffer_drops: u64,
    /// Packets abandoned after exhausting CSMA attempts.
    pub mac_drops: u64,
}

/// The measured outcome of one simulation run.
///
/// `pdr` is the paper's eq. (7) network PDR (mean of per-node eq. (6)
/// values); `nlt_days` is eq. (4) with the star coordinator excluded, as
/// the paper assumes it has a larger energy store.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Network packet delivery ratio in `[0, 1]` (eq. 7).
    pub pdr: f64,
    /// Per-node PDR (eq. 6), indexed like the configuration's placements.
    pub node_pdr: Vec<f64>,
    /// Network lifetime in days (eq. 4), `Ebat / max_i P_i` over the
    /// lifetime-relevant nodes.
    pub nlt_days: f64,
    /// Per-node average power, mW (baseline + radio).
    pub node_power_mw: Vec<f64>,
    /// Average power of the worst (lifetime-limiting) node, mW — the
    /// paper's simulated `P̄sim`.
    pub max_power_mw: f64,
    /// End-to-end delivery latency statistics.
    pub latency: LatencyStats,
    /// Aggregate traffic counters.
    pub counts: TrafficCounts,
    /// Simulated duration in seconds.
    pub sim_seconds: f64,
}

impl SimOutcome {
    /// PDR as a percentage (0–100), as plotted in the paper's Fig. 3.
    pub fn pdr_percent(&self) -> f64 {
        self.pdr * 100.0
    }
}

/// Averages outcomes over repeated runs (the paper uses 3 runs of 600 s
/// to push the metric error below 0.5%).
///
/// # Panics
///
/// Panics if `outcomes` is empty or the runs have different node counts.
pub fn average_outcomes(outcomes: &[SimOutcome]) -> SimOutcome {
    assert!(!outcomes.is_empty(), "cannot average zero outcomes");
    let n = outcomes[0].node_pdr.len();
    assert!(
        outcomes.iter().all(|o| o.node_pdr.len() == n),
        "outcomes have inconsistent node counts"
    );
    let k = outcomes.len() as f64;
    let mean = |f: &dyn Fn(&SimOutcome) -> f64| outcomes.iter().map(f).sum::<f64>() / k;
    let mean_vec = |f: &dyn Fn(&SimOutcome) -> &Vec<f64>| {
        (0..n)
            .map(|i| outcomes.iter().map(|o| f(o)[i]).sum::<f64>() / k)
            .collect::<Vec<f64>>()
    };
    let sum_counts =
        |f: &dyn Fn(&TrafficCounts) -> u64| outcomes.iter().map(|o| f(&o.counts)).sum::<u64>();
    // Latency: weight means by sample counts; std/max pooled conservatively.
    let total_samples: u64 = outcomes.iter().map(|o| o.latency.samples).sum();
    let latency = if total_samples == 0 {
        LatencyStats::default()
    } else {
        LatencyStats {
            samples: total_samples,
            mean_ms: outcomes
                .iter()
                .map(|o| o.latency.mean_ms * o.latency.samples as f64)
                .sum::<f64>()
                / total_samples as f64,
            std_ms: mean(&|o| o.latency.std_ms),
            max_ms: outcomes
                .iter()
                .map(|o| o.latency.max_ms)
                .fold(0.0, f64::max),
        }
    };
    SimOutcome {
        pdr: mean(&|o| o.pdr),
        node_pdr: mean_vec(&|o| &o.node_pdr),
        nlt_days: mean(&|o| o.nlt_days),
        node_power_mw: mean_vec(&|o| &o.node_power_mw),
        max_power_mw: mean(&|o| o.max_power_mw),
        latency,
        counts: TrafficCounts {
            generated: sum_counts(&|c| c.generated),
            transmissions: sum_counts(&|c| c.transmissions),
            deliveries: sum_counts(&|c| c.deliveries),
            collisions: sum_counts(&|c| c.collisions),
            buffer_drops: sum_counts(&|c| c.buffer_drops),
            mac_drops: sum_counts(&|c| c.mac_drops),
        },
        sim_seconds: outcomes.iter().map(|o| o.sim_seconds).sum(),
    }
}

/// Converts per-node power (mW) and a battery (J) into lifetime days of
/// the worst node among `considered`.
///
/// Returns `f64::INFINITY` if `considered` selects no nodes or all
/// selected nodes draw zero power.
pub fn network_lifetime_days(
    node_power_mw: &[f64],
    battery_j: f64,
    considered: impl Iterator<Item = usize>,
) -> f64 {
    let mut worst: f64 = f64::INFINITY;
    for i in considered {
        let p_w = node_power_mw[i] * 1e-3;
        if p_w > 0.0 {
            worst = worst.min(battery_j / p_w);
        }
    }
    worst / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(pdr: f64, nlt: f64) -> SimOutcome {
        SimOutcome {
            pdr,
            node_pdr: vec![pdr; 3],
            nlt_days: nlt,
            node_power_mw: vec![1.0, 2.0, 3.0],
            max_power_mw: 3.0,
            latency: LatencyStats {
                samples: 10,
                mean_ms: 2.0,
                std_ms: 1.0,
                max_ms: 9.0,
            },
            counts: TrafficCounts {
                generated: 10,
                ..Default::default()
            },
            sim_seconds: 600.0,
        }
    }

    #[test]
    fn averaging_means_metrics_and_sums_counts() {
        let avg = average_outcomes(&[outcome(0.8, 10.0), outcome(0.6, 20.0)]);
        assert!((avg.pdr - 0.7).abs() < 1e-12);
        assert!((avg.nlt_days - 15.0).abs() < 1e-12);
        assert_eq!(avg.counts.generated, 20);
        assert_eq!(avg.sim_seconds, 1200.0);
        assert_eq!(avg.node_pdr.len(), 3);
        assert_eq!(avg.latency.samples, 20);
        assert!((avg.latency.mean_ms - 2.0).abs() < 1e-12);
        assert_eq!(avg.latency.max_ms, 9.0);
    }

    #[test]
    fn averaging_latency_weights_by_samples() {
        let mut a = outcome(0.5, 1.0);
        a.latency = LatencyStats {
            samples: 30,
            mean_ms: 1.0,
            std_ms: 0.0,
            max_ms: 1.0,
        };
        let mut b = outcome(0.5, 1.0);
        b.latency = LatencyStats {
            samples: 10,
            mean_ms: 5.0,
            std_ms: 0.0,
            max_ms: 7.0,
        };
        let avg = average_outcomes(&[a, b]);
        // (30*1 + 10*5) / 40 = 2.0
        assert!((avg.latency.mean_ms - 2.0).abs() < 1e-12);
        assert_eq!(avg.latency.max_ms, 7.0);
    }

    #[test]
    fn averaging_zero_latency_samples_is_safe() {
        let mut a = outcome(0.5, 1.0);
        a.latency = LatencyStats::default();
        let avg = average_outcomes(&[a.clone(), a]);
        assert_eq!(avg.latency, LatencyStats::default());
    }

    #[test]
    #[should_panic(expected = "zero outcomes")]
    fn averaging_empty_panics() {
        average_outcomes(&[]);
    }

    #[test]
    fn lifetime_takes_worst_node() {
        // 2430 J battery; 1 mW -> 2.43e6 s =~ 28.1 days; 3 mW -> 9.375 days
        let days = network_lifetime_days(&[1.0, 3.0], 2430.0, 0..2);
        assert!((days - 2430.0 / 3e-3 / 86_400.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_excludes_unconsidered_nodes() {
        let days = network_lifetime_days(&[100.0, 1.0], 2430.0, 1..2);
        assert!((days - 2430.0 / 1e-3 / 86_400.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_of_idle_network_is_infinite() {
        assert!(network_lifetime_days(&[0.0], 2430.0, 0..1).is_infinite());
    }

    #[test]
    fn pdr_percent() {
        assert_eq!(outcome(0.856, 1.0).pdr_percent(), 85.6);
    }
}
