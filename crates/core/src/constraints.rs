//! Topological constraints (`r_T(ν, χ) ≤ 0`) and design-space enumeration.

use hi_net::TxPower;

use crate::point::{DesignPoint, MacChoice, Placement, RouteChoice};

/// Application-driven placement rules — mixed-integer-linear by
/// construction, checked here in closed form and emitted as rows by the
/// MILP encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyConstraints {
    /// Sites that must be occupied (`n_i = 1`).
    pub required: Vec<usize>,
    /// Site groups of which at least one member must be occupied
    /// (`Σ n_i ≥ 1`).
    pub at_least_one: Vec<Vec<usize>>,
    /// Pairs `(i, j)` meaning "if `j` is used then `i` must be used"
    /// (`n_j − n_i ≤ 0`, the paper's §2.1 example).
    pub implications: Vec<(usize, usize)>,
    /// Minimum node count `N`.
    pub min_nodes: usize,
    /// Maximum node count `N`.
    pub max_nodes: usize,
}

impl TopologyConstraints {
    /// The paper's §4.1 experiment rules: chest required (`n0 = 1`), at
    /// least one hip (`n1 + n2 ≥ 1`), one foot (`n3 + n4 ≥ 1`), one wrist
    /// (`n5 + n6 ≥ 1`), and up to two extra nodes anywhere (so
    /// `4 ≤ N ≤ 6`).
    pub fn paper_default() -> Self {
        Self {
            required: vec![0],
            at_least_one: vec![vec![1, 2], vec![3, 4], vec![5, 6]],
            implications: Vec::new(),
            min_nodes: 4,
            max_nodes: 6,
        }
    }

    /// Whether `placement` satisfies every rule.
    pub fn is_satisfied(&self, placement: Placement) -> bool {
        let n = placement.len();
        if n < self.min_nodes || n > self.max_nodes {
            return false;
        }
        if !self.required.iter().all(|&i| placement.contains_index(i)) {
            return false;
        }
        if !self
            .at_least_one
            .iter()
            .all(|g| g.iter().any(|&i| placement.contains_index(i)))
        {
            return false;
        }
        self.implications
            .iter()
            .all(|&(i, j)| !placement.contains_index(j) || placement.contains_index(i))
    }

    /// All placements satisfying the rules, in ascending bitmask order.
    pub fn feasible_placements(&self) -> Vec<Placement> {
        (0u16..(1 << 10))
            .map(Placement::from_mask)
            .filter(|p| self.is_satisfied(*p))
            .collect()
    }
}

/// The complete discrete design space: feasible placements × 3 transmit
/// powers × 2 MACs × 2 routings.
///
/// ```
/// use hi_core::{DesignSpace, TopologyConstraints};
///
/// let space = DesignSpace::new(TopologyConstraints::paper_default());
/// // The paper's feasible region: 110 placements x 12 stack configs.
/// assert_eq!(space.points().len(), 1320);
/// ```
#[derive(Debug, Clone)]
pub struct DesignSpace {
    constraints: TopologyConstraints,
}

impl DesignSpace {
    /// A design space under the given topological constraints.
    pub fn new(constraints: TopologyConstraints) -> Self {
        Self { constraints }
    }

    /// The paper's §4.1 space.
    pub fn paper_default() -> Self {
        Self::new(TopologyConstraints::paper_default())
    }

    /// The constraint set.
    pub fn constraints(&self) -> &TopologyConstraints {
        &self.constraints
    }

    /// Enumerates every feasible design point, deterministically ordered.
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for placement in self.constraints.feasible_placements() {
            for tx_power in TxPower::ALL {
                for mac in MacChoice::ALL {
                    for routing in RouteChoice::ALL {
                        out.push(DesignPoint {
                            placement,
                            tx_power,
                            mac,
                            routing,
                        });
                    }
                }
            }
        }
        out
    }

    /// Whether a point lies in this space.
    pub fn contains(&self, point: &DesignPoint) -> bool {
        self.constraints.is_satisfied(point.placement)
    }

    /// The total size of the *unconstrained* configuration space the paper
    /// quotes (2^10 placements × 3 powers × 2 MAC × 2 routing = 12,288).
    pub fn unconstrained_size() -> usize {
        (1 << 10) * 3 * 2 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constraints_accept_canonical_minimum() {
        let c = TopologyConstraints::paper_default();
        assert!(c.is_satisfied(Placement::from_indices([0, 1, 3, 5])));
        assert!(c.is_satisfied(Placement::from_indices([0, 2, 4, 6])));
    }

    #[test]
    fn paper_constraints_reject_missing_groups() {
        let c = TopologyConstraints::paper_default();
        // No wrist.
        assert!(!c.is_satisfied(Placement::from_indices([0, 1, 3, 7])));
        // No chest.
        assert!(!c.is_satisfied(Placement::from_indices([1, 3, 5, 7])));
        // Too many nodes (7).
        assert!(!c.is_satisfied(Placement::from_indices([0, 1, 2, 3, 4, 5, 6])));
        // Too few (3).
        assert!(!c.is_satisfied(Placement::from_indices([0, 1, 3])));
    }

    #[test]
    fn paper_space_has_110_placements() {
        // Derived by direct enumeration; documented in DESIGN.md.
        let c = TopologyConstraints::paper_default();
        assert_eq!(c.feasible_placements().len(), 110);
    }

    #[test]
    fn paper_space_has_1320_points() {
        assert_eq!(DesignSpace::paper_default().points().len(), 1320);
    }

    #[test]
    fn unconstrained_size_matches_paper() {
        assert_eq!(DesignSpace::unconstrained_size(), 12_288);
    }

    #[test]
    fn implication_constraint_enforced() {
        let mut c = TopologyConstraints::paper_default();
        c.implications.push((7, 8)); // head (8) requires upper arm (7)
        assert!(!c.is_satisfied(Placement::from_indices([0, 1, 3, 5, 8])));
        assert!(c.is_satisfied(Placement::from_indices([0, 1, 3, 5, 7])));
        assert!(c.is_satisfied(Placement::from_indices([0, 1, 3, 5, 7, 8])));
    }

    #[test]
    fn all_enumerated_points_are_contained() {
        let space = DesignSpace::paper_default();
        for p in space.points() {
            assert!(space.contains(&p));
        }
    }

    #[test]
    fn every_placement_has_between_4_and_6_nodes() {
        for p in TopologyConstraints::paper_default().feasible_placements() {
            assert!(p.len() >= 4 && p.len() <= 6);
            assert!(p.contains_index(0));
        }
    }
}
