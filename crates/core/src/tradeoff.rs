//! Reliability/lifetime trade-off sweeps — the paper's Fig. 3 arrows as
//! an API.
//!
//! Running [`explore`] once answers "what is the best design for *this*
//! `PDRmin`?". Designers usually want the whole frontier: how the
//! architecture migrates (weak star → strong star → mesh → bigger mesh)
//! as the floor rises, and what each step costs in lifetime.
//! [`explore_tradeoff`] runs Algorithm 1 per floor against a *shared*
//! memoizing evaluator, so the sweep costs barely more than its most
//! demanding floor.

use crate::algorithm1::{explore, explore_par, ExploreError, ExploreOptions, Problem, StopReason};
use crate::evaluator::{Evaluation, Evaluator, PointEvaluator};
use crate::parallel::ExecContext;
use crate::point::DesignPoint;

/// One floor of a trade-off sweep.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// The reliability floor explored.
    pub pdr_min: f64,
    /// The optimal design and its measured performance (`None` if the
    /// floor is infeasible).
    pub best: Option<(DesignPoint, Evaluation)>,
    /// Unique simulations newly run for this floor (cache hits excluded).
    pub new_simulations: u64,
    /// Why Algorithm 1 stopped at this floor.
    pub stop_reason: StopReason,
}

/// Runs Algorithm 1 for every floor in `floors` (any order), sharing
/// `evaluator`'s cache across floors. Results are returned in the given
/// floor order.
///
/// # Errors
///
/// Propagates the first [`ExploreError`].
///
/// # Panics
///
/// Panics if a floor lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use hi_core::{explore_tradeoff, power, DesignPoint, Evaluation,
///               FnEvaluator, Problem};
/// use hi_net::AppParams;
///
/// # fn main() -> Result<(), hi_core::ExploreError> {
/// let app = AppParams::default();
/// let mut oracle = FnEvaluator::new(move |p: &DesignPoint| {
///     let power = power::analytic_power_mw(p, &app);
///     Evaluation { pdr: 0.9, nlt_days: 2430.0 / power / 86.4, power_mw: power,
///                  latency_ms: 4.0 }
/// });
/// let problem = Problem::paper_default(0.5);
/// let sweep = explore_tradeoff(&problem, &[0.5, 0.8], &mut oracle)?;
/// assert_eq!(sweep.len(), 2);
/// assert!(sweep.iter().all(|t| t.best.is_some()));
/// # Ok(())
/// # }
/// ```
pub fn explore_tradeoff(
    template: &Problem,
    floors: &[f64],
    evaluator: &mut dyn Evaluator,
) -> Result<Vec<TradeoffPoint>, ExploreError> {
    let mut out: Vec<TradeoffPoint> = Vec::with_capacity(floors.len());
    for &floor in floors {
        assert!((0.0..=1.0).contains(&floor), "floor {floor} outside [0, 1]");
        if let Some(echo) = echo_duplicate_floor(&out, floor) {
            out.push(echo);
            continue;
        }
        let problem = Problem {
            space: template.space.clone(),
            pdr_min: floor,
            app: template.app,
        };
        let before = evaluator.unique_evaluations();
        let outcome = explore(&problem, evaluator)?;
        out.push(TradeoffPoint {
            pdr_min: floor,
            best: outcome.best,
            new_simulations: evaluator.unique_evaluations() - before,
            stop_reason: outcome.stop_reason,
        });
    }
    Ok(out)
}

/// The answer for `floor` when it bit-equals the floor just swept:
/// Algorithm 1 is deterministic, so a repeated adjacent floor would
/// redo the whole MILP ladder only to rediscover the same optimum from
/// cache. The duplicate echoes the previous point (zero new work)
/// instead of dispatching a sweep.
fn echo_duplicate_floor(swept: &[TradeoffPoint], floor: f64) -> Option<TradeoffPoint> {
    let last = swept.last()?;
    (last.pdr_min.to_bits() == floor.to_bits()).then(|| TradeoffPoint {
        new_simulations: 0,
        ..last.clone()
    })
}

/// [`explore_tradeoff`] on the execution engine: floors run in the given
/// order (each floor's candidate levels fan out over `exec`'s pool) and
/// all floors share `evaluator`'s cache, exactly like the sequential
/// sweep shares its memoized evaluator. Results are bit-identical for
/// every thread count.
///
/// If `exec` is cancelled, the remaining floors are skipped and the sweep
/// returns the floors finished so far (the cancelled floor reports
/// [`StopReason::Cancelled`]).
///
/// # Errors
///
/// Propagates the first [`ExploreError`].
///
/// # Panics
///
/// Panics if a floor lies outside `[0, 1]`.
pub fn explore_tradeoff_par<P: PointEvaluator>(
    template: &Problem,
    floors: &[f64],
    evaluator: &P,
    exec: &ExecContext,
) -> Result<Vec<TradeoffPoint>, ExploreError> {
    let mut out: Vec<TradeoffPoint> = Vec::with_capacity(floors.len());
    for &floor in floors {
        assert!((0.0..=1.0).contains(&floor), "floor {floor} outside [0, 1]");
        if exec.is_cancelled() {
            break;
        }
        if let Some(echo) = echo_duplicate_floor(&out, floor) {
            out.push(echo);
            continue;
        }
        let problem = Problem {
            space: template.space.clone(),
            pdr_min: floor,
            app: template.app,
        };
        let before = evaluator.unique_evaluations();
        let outcome = explore_par(&problem, evaluator, ExploreOptions::default(), exec)?;
        out.push(TradeoffPoint {
            pdr_min: floor,
            best: outcome.best,
            new_simulations: evaluator.unique_evaluations() - before,
            stop_reason: outcome.stop_reason,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::point::RouteChoice;
    use crate::power::analytic_power_mw;
    use hi_net::{AppParams, TxPower};

    fn ladder_oracle(point: &DesignPoint) -> Evaluation {
        let app = AppParams::default();
        let base = match point.tx_power {
            TxPower::Minus20Dbm => 0.45,
            TxPower::Minus10Dbm => 0.70,
            TxPower::ZeroDbm => 0.93,
        };
        let bonus: f64 = if point.routing == RouteChoice::Mesh {
            0.06
        } else {
            0.0
        };
        let power = analytic_power_mw(point, &app);
        Evaluation {
            pdr: (base + bonus).min(1.0),
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
            power_mw: power,
            latency_ms: 2.0 + power,
        }
    }

    #[test]
    fn lifetime_is_monotone_in_the_floor() {
        let template = Problem::paper_default(0.5);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let sweep = explore_tradeoff(&template, &[0.4, 0.6, 0.9, 0.98], &mut ev).unwrap();
        let nlts: Vec<f64> = sweep
            .iter()
            .map(|t| t.best.as_ref().expect("feasible").1.nlt_days)
            .collect();
        assert!(
            nlts.windows(2).all(|w| w[0] >= w[1]),
            "lifetime must not rise with the floor: {nlts:?}"
        );
    }

    #[test]
    fn shared_cache_makes_later_floors_cheap() {
        let template = Problem::paper_default(0.5);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let sweep = explore_tradeoff(&template, &[0.9, 0.9], &mut ev).unwrap();
        assert!(sweep[0].new_simulations > 0);
        assert_eq!(sweep[1].new_simulations, 0, "second pass fully cached");
    }

    #[test]
    fn duplicate_adjacent_floors_echo_without_dispatching() {
        // Counts *every* evaluator query, cache hits included: a deduped
        // duplicate floor must not even re-walk the MILP ladder.
        struct Counting {
            inner: FnEvaluator<fn(&DesignPoint) -> Evaluation>,
            queries: u64,
        }
        impl Evaluator for Counting {
            fn evaluate(&mut self, point: &DesignPoint) -> Evaluation {
                self.queries += 1;
                self.inner.evaluate(point)
            }
            fn unique_evaluations(&self) -> u64 {
                self.inner.unique_evaluations()
            }
        }
        let template = Problem::paper_default(0.5);
        let mut ev = Counting {
            inner: FnEvaluator::new(ladder_oracle as fn(&DesignPoint) -> Evaluation),
            queries: 0,
        };
        let lone = explore_tradeoff(&template, &[0.9], &mut ev).unwrap();
        let queries_for_one = ev.queries;
        let mut ev = Counting {
            inner: FnEvaluator::new(ladder_oracle as fn(&DesignPoint) -> Evaluation),
            queries: 0,
        };
        let sweep = explore_tradeoff(&template, &[0.9, 0.9, 0.9], &mut ev).unwrap();
        assert_eq!(ev.queries, queries_for_one, "duplicates dispatched work");
        assert_eq!(sweep.len(), 3);
        for point in &sweep[1..] {
            assert_eq!(point.new_simulations, 0);
            assert_eq!(point.best, lone[0].best);
            assert_eq!(point.stop_reason, lone[0].stop_reason);
        }
        // Non-adjacent repeats still re-sweep (cheaply, via the cache):
        // only *adjacent* duplicates are textual duplicates of intent.
        let mut ev = FnEvaluator::new(ladder_oracle);
        let sweep = explore_tradeoff(&template, &[0.9, 0.6, 0.9], &mut ev).unwrap();
        assert_eq!(sweep[2].new_simulations, 0, "cache still covers repeats");
        assert_eq!(sweep[2].best, sweep[0].best);
    }

    #[test]
    fn infeasible_floor_reported() {
        let template = Problem::paper_default(0.5);
        let mut ev = FnEvaluator::new(|p: &DesignPoint| {
            let mut e = ladder_oracle(p);
            e.pdr = e.pdr.min(0.98);
            e
        });
        let sweep = explore_tradeoff(&template, &[0.99], &mut ev).unwrap();
        assert!(sweep[0].best.is_none());
        assert_eq!(sweep[0].stop_reason, StopReason::MilpExhausted);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn floors_validated() {
        let template = Problem::paper_default(0.5);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let _ = explore_tradeoff(&template, &[1.5], &mut ev);
    }
}
