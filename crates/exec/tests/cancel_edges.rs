//! Cancellation edge cases under real threads: the moments where a
//! `CancelToken` changes state exactly as the pool or cache is making a
//! decision based on it. The same protocols run under the model checker
//! in `src/model_tests.rs`; these tests pin the behavioral contract on
//! the real primitives.

#![cfg(not(feature = "shadow"))]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use hi_exec::{CancelToken, EvalCache, ThreadPool};

/// Cancelling before the pool has started anything skips every task:
/// all slots come back `None` and no user code runs.
#[test]
fn cancel_before_first_task_skips_everything() {
    let pool = ThreadPool::new(4);
    let token = CancelToken::new();
    token.cancel();
    let ran = Arc::new(AtomicU64::new(0));
    let out = {
        let ran = Arc::clone(&ran);
        pool.par_map_cancellable((0..64u64).collect::<Vec<_>>(), token, move |x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        })
    };
    assert_eq!(out.len(), 64, "every slot must still be accounted for");
    assert!(out.iter().all(Option::is_none));
    assert_eq!(ran.load(Ordering::Relaxed), 0, "no task may have started");
}

/// `cancel` is idempotent: a second (or concurrent) cancel is a no-op,
/// not a toggle, and every clone observes the final state.
#[test]
fn double_cancel_is_idempotent() {
    let token = CancelToken::new();
    token.cancel();
    token.cancel();
    assert!(token.is_cancelled());

    // Concurrent cancels from many clones race benignly.
    let token = CancelToken::new();
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let token = token.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                token.cancel();
                assert!(token.is_cancelled());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("canceller panicked");
    }
    assert!(token.is_cancelled());
}

/// Cancellation racing the final task of a batch: whatever side wins,
/// the batch settles, started tasks produce their real results, and a
/// slot is never half-written. The cancel fires while the last task is
/// provably in flight, so this exercises the exact boundary.
#[test]
fn cancel_raced_against_final_task_completing() {
    let pool = ThreadPool::new(2);
    for _ in 0..50 {
        let token = CancelToken::new();
        let last_started = Arc::new(Barrier::new(2));
        let out = {
            let token_inner = token.clone();
            let last_started = Arc::clone(&last_started);
            let canceller = {
                let last_started = Arc::clone(&last_started);
                let token = token.clone();
                std::thread::spawn(move || {
                    last_started.wait();
                    token.cancel();
                })
            };
            let out =
                pool.par_map_cancellable((0..4u64).collect::<Vec<_>>(), token_inner, move |x| {
                    if x == 3 {
                        // Signal the canceller only once the final task is
                        // running, then give it a moment to land mid-task.
                        last_started.wait();
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    x * 2
                });
            canceller.join().expect("canceller panicked");
            out
        };
        assert_eq!(out.len(), 4);
        // The final task started, so it must have completed with its
        // real value — cancellation never interrupts a running task.
        assert_eq!(out[3], Some(6));
        for (i, slot) in out.iter().enumerate() {
            assert!(
                slot.is_none() || *slot == Some(i as u64 * 2),
                "slot {i} corrupted: {slot:?}"
            );
        }
    }
}

/// A thread parked in the cache's settled-wait observes cancellation
/// only *after* the wait hands it the value: cancellation decides what
/// the caller does next, never whether an in-flight compute publishes.
#[test]
fn cancellation_observed_inside_cache_waiter() {
    for _ in 0..50 {
        let cache: Arc<EvalCache<u64, u64>> = Arc::new(EvalCache::with_shards(1));
        let token = CancelToken::new();
        let compute_entered = Arc::new(Barrier::new(2));

        let computer = {
            let cache = Arc::clone(&cache);
            let compute_entered = Arc::clone(&compute_entered);
            std::thread::spawn(move || {
                cache.get_or_compute(1, || {
                    compute_entered.wait();
                    // Hold the compute open so the waiter below actually
                    // parks on the shard condvar.
                    std::thread::sleep(Duration::from_micros(100));
                    77
                })
            })
        };

        compute_entered.wait();
        let waiter = {
            let cache = Arc::clone(&cache);
            let token = token.clone();
            std::thread::spawn(move || {
                let value = cache.get_or_compute(1, || unreachable!("key is in flight"));
                (value, token.is_cancelled())
            })
        };
        // Cancel while the waiter is (very likely) parked.
        token.cancel();

        assert_eq!(computer.join().expect("computer panicked"), 77);
        let (value, _saw_cancel) = waiter.join().expect("waiter panicked");
        assert_eq!(value, 77, "waiter must receive the settled value");
        assert_eq!(cache.misses(), 1, "exactly one compute despite cancel");
    }
}
