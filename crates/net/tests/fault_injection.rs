//! Failure-injection tests (extension beyond the paper): a node dying
//! mid-mission degrades the network in topology-dependent ways.

use hi_channel::{BodyLocation, ChannelModel, StaticChannel};
use hi_des::{SimDuration, SimTime};
use hi_net::{simulate, MacKind, NetworkConfig, NodeFault, Routing, TxPower};

fn t_sim() -> SimDuration {
    SimDuration::from_secs(60.0)
}

fn base() -> NetworkConfig {
    NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftAnkle,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    )
}

#[test]
fn fault_config_validated() {
    let mut cfg = base();
    cfg.faults.push(NodeFault {
        node: 9,
        at: SimDuration::from_secs(1.0),
    });
    assert!(matches!(
        cfg.validate(),
        Err(hi_net::ConfigError::BadFaultNode(9))
    ));
}

#[test]
fn member_death_halves_its_traffic() {
    let mut cfg = base();
    cfg.faults.push(NodeFault {
        node: 3, // the wrist node dies at half time
        at: SimDuration::from_secs(30.0),
    });
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    let healthy = simulate(&base(), StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    assert_eq!(healthy.pdr, 1.0);
    // Pairs into the dead node lose everything after t/2; pairs out of it
    // stop being generated (which does NOT hurt PDR); so network PDR sits
    // clearly between 50% and 100%.
    assert!(
        out.pdr > 0.6 && out.pdr < 0.95,
        "pdr with half-time death = {}",
        out.pdr
    );
    assert!(out.counts.generated < healthy.counts.generated);
}

#[test]
fn coordinator_death_is_catastrophic_for_star_hidden_pairs() {
    // Hidden-pair topology: only the chest coordinator links hip & wrist.
    struct Bridge;
    impl ChannelModel for Bridge {
        fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, _t: SimTime) -> f64 {
            let bridge = |x: BodyLocation, y: BodyLocation| {
                (x == BodyLocation::Chest && y != BodyLocation::Chest)
                    || (y == BodyLocation::Chest && x != BodyLocation::Chest)
            };
            if a == b {
                0.0
            } else if bridge(a, b) {
                50.0
            } else {
                150.0
            }
        }
    }
    let mut cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    cfg.faults.push(NodeFault {
        node: 0,
        at: SimDuration::from_secs(30.0),
    });
    let out = simulate(&cfg, Bridge, t_sim(), 1).unwrap();
    // After the hub dies nothing flows between hip and wrist at all.
    assert!(
        out.pdr < 0.8,
        "hub death should gut a hidden-pair star, pdr = {}",
        out.pdr
    );
}

#[test]
fn mesh_degrades_more_gracefully_than_star_on_relay_death() {
    // Chain chest - hip - ankle - wrist; the hip is the critical relay for
    // chest<->ankle. In the mesh, ankle<->wrist still work after the hip
    // dies; compare against hub death in the star.
    struct Chain;
    impl ChannelModel for Chain {
        fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, _t: SimTime) -> f64 {
            use BodyLocation::*;
            let adj = |x: BodyLocation, y: BodyLocation| {
                matches!(
                    (x, y),
                    (Chest, LeftHip)
                        | (LeftHip, Chest)
                        | (LeftHip, LeftAnkle)
                        | (LeftAnkle, LeftHip)
                        | (LeftAnkle, LeftWrist)
                        | (LeftWrist, LeftAnkle)
                )
            };
            if a == b {
                0.0
            } else if adj(a, b) {
                50.0
            } else {
                150.0
            }
        }
    }
    let mk = |routing| {
        let mut cfg = NetworkConfig::new(
            vec![
                BodyLocation::Chest,
                BodyLocation::LeftHip,
                BodyLocation::LeftAnkle,
                BodyLocation::LeftWrist,
            ],
            TxPower::ZeroDbm,
            MacKind::tdma(),
            routing,
        );
        cfg.mac_buffer = 64;
        cfg.faults.push(NodeFault {
            node: 1, // hip relay dies at half time
            at: SimDuration::from_secs(30.0),
        });
        cfg
    };
    let mesh = simulate(&mk(Routing::mesh()), Chain, t_sim(), 1).unwrap();
    let star = simulate(&mk(Routing::Star { coordinator: 0 }), Chain, t_sim(), 1).unwrap();
    assert!(
        mesh.pdr > star.pdr,
        "mesh ({}) should degrade more gracefully than star ({})",
        mesh.pdr,
        star.pdr
    );
}

#[test]
fn dead_node_excluded_from_lifetime() {
    let mut cfg = base();
    cfg.faults.push(NodeFault {
        node: 3,
        at: SimDuration::from_secs(1.0),
    });
    let faulty = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    let healthy = simulate(&base(), StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    // The survivors hear less traffic (fewer receptions), so the
    // lifetime-limiting survivor draws no more than in the healthy net.
    assert!(faulty.nlt_days >= healthy.nlt_days);
}

#[test]
fn fault_after_horizon_changes_nothing() {
    let mut cfg = base();
    cfg.faults.push(NodeFault {
        node: 2,
        at: SimDuration::from_secs(1e4),
    });
    let a = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 7).unwrap();
    let b = simulate(&base(), StaticChannel::uniform(50.0), t_sim(), 7).unwrap();
    assert_eq!(a, b);
}
