//! Fault windows: half-open intervals of simulated time during which
//! some injected disturbance (a node outage, a link blackout, an
//! interference burst) is active.
//!
//! This is the kernel half of the workspace's fault-injection layer: a
//! [`Window`] knows nothing about networks, only about time, so the same
//! primitive scripts node crashes in `hi-net` and could script sensor
//! dropouts in any other model built on this crate. Windows are plain
//! data — scenario scripts are deterministic by construction, which is
//! what keeps fault-injected runs inside the `hi-exec` bit-identical
//! determinism contract.

use crate::time::{SimDuration, SimTime};

/// A half-open interval `[from, until)` of simulated time.
///
/// `until == SimTime::MAX` means the window never closes (a permanent
/// fault). An *inverted* window (`until < from`) is representable so
/// that loaded scenario files can be linted rather than rejected at
/// parse time; [`is_inverted`](Window::is_inverted) flags it and an
/// inverted window is never [`active`](Window::active).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Window {
    /// First instant the window is active.
    pub from: SimTime,
    /// First instant after the window (exclusive end).
    pub until: SimTime,
}

impl Window {
    /// The window `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        Self { from, until }
    }

    /// A window opening at `from` and never closing.
    pub fn open_ended(from: SimTime) -> Self {
        Self {
            from,
            until: SimTime::MAX,
        }
    }

    /// The window `[from, from + length)` measured from the origin.
    pub fn from_secs(from_s: f64, until_s: f64) -> Self {
        let from = SimTime::ZERO + SimDuration::from_secs(from_s);
        let until = if until_s.is_infinite() {
            SimTime::MAX
        } else {
            SimTime::ZERO + SimDuration::from_secs(until_s)
        };
        Self { from, until }
    }

    /// True if `t` lies inside the window.
    pub fn active(&self, t: SimTime) -> bool {
        !self.is_inverted() && self.from <= t && t < self.until
    }

    /// True if the end precedes the start — a malformed script entry.
    pub fn is_inverted(&self) -> bool {
        self.until < self.from
    }

    /// True if the window never closes.
    pub fn is_open_ended(&self) -> bool {
        self.until == SimTime::MAX
    }

    /// True if the two windows share at least one instant.
    pub fn overlaps(&self, other: &Window) -> bool {
        !self.is_inverted()
            && !other.is_inverted()
            && self.from < other.until
            && other.from < self.until
    }

    /// True if the window opens at or after `horizon` — it can never
    /// fire in a simulation of that length.
    pub fn past_horizon(&self, horizon: SimTime) -> bool {
        self.from >= horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: f64, b: f64) -> Window {
        Window::from_secs(a, b)
    }

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn activity_is_half_open() {
        let win = w(1.0, 2.0);
        assert!(!win.active(t(0.999_999)));
        assert!(win.active(t(1.0)));
        assert!(win.active(t(1.999_999)));
        assert!(!win.active(t(2.0)));
    }

    #[test]
    fn open_ended_never_closes() {
        let win = Window::open_ended(t(3.0));
        assert!(win.is_open_ended());
        // The exclusive end is SimTime::MAX, an instant no run reaches:
        // any representable event time is inside the window.
        assert!(win.active(t(1e9)));
        assert!(!win.active(t(2.9)));
        assert!(Window::from_secs(3.0, f64::INFINITY).is_open_ended());
    }

    #[test]
    fn inverted_windows_are_flagged_and_inert() {
        let win = w(5.0, 1.0);
        assert!(win.is_inverted());
        assert!(!win.active(t(3.0)));
        assert!(!win.overlaps(&w(0.0, 10.0)));
    }

    #[test]
    fn overlap_is_symmetric_and_half_open() {
        assert!(w(0.0, 2.0).overlaps(&w(1.0, 3.0)));
        assert!(w(1.0, 3.0).overlaps(&w(0.0, 2.0)));
        assert!(
            !w(0.0, 1.0).overlaps(&w(1.0, 2.0)),
            "touching is not overlap"
        );
        assert!(w(0.0, 10.0).overlaps(&w(2.0, 3.0)), "containment overlaps");
    }

    #[test]
    fn past_horizon_detection() {
        assert!(w(10.0, 20.0).past_horizon(t(10.0)));
        assert!(!w(9.9, 20.0).past_horizon(t(10.0)));
    }
}
