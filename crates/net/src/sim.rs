//! The event-driven WBAN simulation: application, routing, MAC and radio
//! state machines over the [`hi_des`] kernel.

use std::collections::{HashSet, VecDeque};

use hi_channel::{BodyLocation, ChannelModel};
use hi_des::{rng, Engine, SimDuration, SimTime};

use hi_des::stats::Tally;

use crate::medium::Medium;
use crate::metrics::{network_lifetime_days, LatencyStats, SimOutcome, TrafficCounts};
use crate::packet::Packet;
use crate::params::{ConfigError, FloodMode, MacKind, NetworkConfig, Routing};
use crate::trace::TraceEvent;

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Node's application layer emits its next periodic packet. `epoch`
    /// ties the event to one generation chain: a crash/recover cycle
    /// bumps the node's epoch, so a stale chain scheduled before the
    /// crash dies instead of double-scheduling alongside the restarted
    /// one.
    Generate { node: usize, epoch: u32 },
    /// CSMA: node wakes up to sense the channel and maybe transmit.
    MacAttempt { node: usize },
    /// Node's in-flight transmission completes.
    TxEnd { node: usize },
    /// CSMA: the Rx→Tx turnaround elapsed; the committed transmission
    /// starts regardless of current channel state.
    TxCommit { node: usize },
    /// TDMA: slot boundary; the owner may transmit.
    TdmaSlot { index: u64 },
    /// Slotted ALOHA: slot boundary; every backlogged node may transmit.
    AlohaSlot { index: u64 },
    /// Hybrid superframe: mini-slot boundary (scheduled or contention).
    HybridSlot { index: u64 },
    /// A scheduled node failure fires. `permanent` failures (legacy
    /// [`NodeFault`](crate::NodeFault) entries, battery depletions) can
    /// never be undone by a later `NodeUp`.
    NodeDown { node: usize, permanent: bool },
    /// A crash/recover window closes: the node reboots with an empty
    /// queue and a restarted application chain.
    NodeUp { node: usize },
}

/// Per-node protocol state.
#[derive(Debug)]
struct NodeState {
    loc: BodyLocation,
    queue: VecDeque<Packet>,
    transmitting: bool,
    /// CSMA: a `MacAttempt` is already scheduled.
    mac_pending: bool,
    /// CSMA: busy-channel backoffs taken for the head-of-queue packet.
    attempts: u32,
    next_seq: u32,
    generated: u64,
    /// `received[origin]` = set of unique sequence numbers seen.
    received: Vec<HashSet<u32>>,
    /// Packets this node has already relayed, for duplicate suppression.
    relayed: HashSet<(usize, u32)>,
    tx_energy_j: f64,
    rx_energy_j: f64,
    /// Cleared by a scheduled [`NodeFault`](crate::NodeFault) or an
    /// active [`SiteOutage`](crate::SiteOutage) window.
    alive: bool,
    /// Set by a permanent failure; a `NodeUp` cannot revive the node.
    retired: bool,
    /// Generation-chain epoch; bumped on every recovery so stale
    /// `Generate` events are ignored.
    epoch: u32,
}

impl NodeState {
    fn new(loc: BodyLocation, num_nodes: usize) -> Self {
        Self {
            loc,
            queue: VecDeque::new(),
            transmitting: false,
            mac_pending: false,
            attempts: 0,
            next_seq: 0,
            generated: 0,
            received: vec![HashSet::new(); num_nodes],
            relayed: HashSet::new(),
            tx_energy_j: 0.0,
            rx_energy_j: 0.0,
            alive: true,
            retired: false,
            epoch: 0,
        }
    }
}

/// A *logical* deadline trip: the simulation dispatched more DES events
/// than its budget allows.
///
/// Budgets count dispatched events — never wall clock — so whether a
/// given configuration trips is a pure function of the configuration and
/// seed, identical on every host and at every thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineExceeded {
    /// Events dispatched when the budget was found exceeded.
    pub events: u64,
    /// The configured event budget.
    pub budget: u64,
    /// Simulated time reached when the trip happened.
    pub at: SimTime,
}

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event budget exceeded: {} events dispatched (budget {}) at t={:.3}s",
            self.events,
            self.budget,
            self.at.as_secs_f64()
        )
    }
}

impl std::error::Error for DeadlineExceeded {}

/// One full network simulation.
///
/// Construct with [`NetworkSim::new`], drive to completion with
/// [`run`](NetworkSim::run). Most users want the crate-level convenience
/// functions ([`crate::simulate`], [`crate::simulate_averaged`]) instead.
pub struct NetworkSim<C: ChannelModel> {
    cfg: NetworkConfig,
    channel: C,
    engine: Engine<Event>,
    nodes: Vec<NodeState>,
    medium: Medium,
    rngs: Vec<rng::Rng>,
    t_sim: SimDuration,
    tpkt: SimDuration,
    transmissions: u64,
    deliveries: u64,
    buffer_drops: u64,
    mac_drops: u64,
    /// Generation instant per live packet identity, for latency samples.
    gen_times: std::collections::HashMap<(usize, u32), SimTime>,
    latency: Tally,
    /// Event trace, populated only by [`run_traced`](NetworkSim::run_traced).
    trace: Option<Vec<TraceEvent>>,
    /// Logical deadline: maximum DES events this run may dispatch.
    event_budget: Option<u64>,
}

impl<C: ChannelModel> std::fmt::Debug for NetworkSim<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkSim")
            .field("nodes", &self.nodes.len())
            .field("engine", &self.engine)
            .finish()
    }
}

impl<C: ChannelModel> NetworkSim<C> {
    /// Prepares a simulation of `cfg` over `channel` for `t_sim` simulated
    /// time. `seed` drives MAC backoffs and application phases (channel
    /// randomness is owned by the `channel` value itself).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is structurally
    /// invalid (see [`NetworkConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if `t_sim` is zero — metrics are rates over the simulated
    /// duration and would be undefined.
    pub fn new(
        cfg: NetworkConfig,
        channel: C,
        t_sim: SimDuration,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        assert!(!t_sim.is_zero(), "simulation duration must be positive");
        cfg.validate()?;
        let n = cfg.num_nodes();
        let nodes = cfg
            .placements
            .iter()
            .map(|&loc| NodeState::new(loc, n))
            .collect();
        // Stream 0 is reserved; nodes use streams 1..=n.
        let rngs = (0..n).map(|i| rng::stream(seed, 1 + i as u64)).collect();
        let tpkt = cfg.packet_duration();
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::ZERO + t_sim);
        Ok(Self {
            cfg,
            channel,
            engine,
            nodes,
            medium: Medium::new(),
            rngs,
            t_sim,
            tpkt,
            transmissions: 0,
            deliveries: 0,
            buffer_drops: 0,
            mac_drops: 0,
            gen_times: std::collections::HashMap::new(),
            latency: Tally::new(),
            trace: None,
            event_budget: None,
        })
    }

    /// Runs the simulation with packet-journey tracing enabled, returning
    /// the outcome together with the ordered [`TraceEvent`] log.
    ///
    /// Tracing allocates per event; prefer [`run`](NetworkSim::run) for
    /// sweeps and use this for debugging and demonstrations.
    pub fn run_traced(mut self) -> (SimOutcome, Vec<TraceEvent>) {
        self.trace = Some(Vec::new());
        let mut trace_out = Vec::new();
        let outcome = self.run_inner(&mut trace_out);
        (outcome, trace_out)
    }

    /// Runs the simulation to the horizon and computes the outcome.
    pub fn run(self) -> SimOutcome {
        let mut ignored = Vec::new();
        self.run_inner(&mut ignored)
    }

    /// Runs the simulation under a logical deadline of `budget` dispatched
    /// DES events.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] if the run dispatches more than
    /// `budget` events before reaching the horizon; the partial outcome is
    /// discarded (a truncated run would bias every rate metric).
    pub fn run_budgeted(mut self, budget: u64) -> Result<SimOutcome, DeadlineExceeded> {
        self.event_budget = Some(budget);
        let mut ignored = Vec::new();
        self.run_checked(&mut ignored)
    }

    fn run_inner(self, trace_out: &mut Vec<TraceEvent>) -> SimOutcome {
        debug_assert!(self.event_budget.is_none());
        self.run_checked(trace_out)
            .expect("unbudgeted runs cannot trip a deadline")
    }

    fn run_checked(
        mut self,
        trace_out: &mut Vec<TraceEvent>,
    ) -> Result<SimOutcome, DeadlineExceeded> {
        // Application phases: uniform random offset within one period so
        // nodes do not generate in lock-step.
        for i in 0..self.nodes.len() {
            let phase =
                SimDuration::from_secs(self.rngs[i].gen_f64() * self.node_period(i).as_secs_f64());
            self.engine
                .schedule_at(SimTime::ZERO + phase, Event::Generate { node: i, epoch: 0 });
        }
        match self.cfg.mac {
            MacKind::Tdma(_) => {
                self.engine
                    .schedule_at(SimTime::ZERO, Event::TdmaSlot { index: 0 });
            }
            MacKind::SlottedAloha(_) => {
                self.engine
                    .schedule_at(SimTime::ZERO, Event::AlohaSlot { index: 0 });
            }
            MacKind::Hybrid(_) => {
                self.engine
                    .schedule_at(SimTime::ZERO, Event::HybridSlot { index: 0 });
            }
            MacKind::Csma(_) => {}
        }
        for fault in self.cfg.faults.clone() {
            self.engine.schedule_at(
                SimTime::ZERO + fault.at,
                Event::NodeDown {
                    node: fault.node,
                    permanent: true,
                },
            );
        }
        self.schedule_scenario();

        while let Some((now, event)) = self.engine.pop() {
            if let Some(budget) = self.event_budget {
                // `pop` just counted this event as dispatched.
                let events = self.engine.delivered();
                if events > budget {
                    hi_trace::counter(hi_trace::wellknown::DES_EVENTS_DISPATCHED, events);
                    return Err(DeadlineExceeded {
                        events,
                        budget,
                        at: now,
                    });
                }
            }
            match event {
                Event::Generate { node, epoch } => self.on_generate(now, node, epoch),
                Event::MacAttempt { node } => self.on_mac_attempt(now, node),
                Event::TxCommit { node } => self.on_tx_commit(now, node),
                Event::TxEnd { node } => self.on_tx_end(now, node),
                Event::TdmaSlot { index } => self.on_tdma_slot(now, index),
                Event::AlohaSlot { index } => self.on_aloha_slot(now, index),
                Event::HybridSlot { index } => self.on_hybrid_slot(now, index),
                Event::NodeDown { node, permanent } => self.on_node_down(now, node, permanent),
                Event::NodeUp { node } => self.on_node_up(now, node),
            }
        }
        if let Some(tr) = self.trace.take() {
            *trace_out = tr;
        }
        hi_trace::counter(
            hi_trace::wellknown::DES_EVENTS_DISPATCHED,
            self.engine.delivered(),
        );
        Ok(self.finish())
    }

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if let Some(tr) = &mut self.trace {
            tr.push(event);
        }
    }

    // --- fault injection -----------------------------------------------------

    /// Schedules the scripted fault scenario. Entries reference body
    /// *sites*; a site not occupied by this configuration is a no-op, so
    /// one scenario value applies uniformly across every design point.
    fn schedule_scenario(&mut self) {
        let scenario = self.cfg.scenario.clone();
        let node_at = |site: usize| self.nodes.iter().position(|n| n.loc.index() == site);
        for outage in &scenario.outages {
            let Some(node) = node_at(outage.site) else {
                continue;
            };
            if outage.window.is_inverted() {
                continue; // lint flags these; the sim treats them as inert
            }
            self.engine.schedule_at(
                outage.window.from,
                Event::NodeDown {
                    node,
                    permanent: false,
                },
            );
            if !outage.window.is_open_ended() {
                self.engine
                    .schedule_at(outage.window.until, Event::NodeUp { node });
            }
        }
        for depletion in &scenario.depletions {
            let Some(node) = node_at(depletion.site) else {
                continue;
            };
            self.engine.schedule_at(
                SimTime::ZERO + depletion.at,
                Event::NodeDown {
                    node,
                    permanent: true,
                },
            );
        }
        // Blackouts and interference bursts need no events: they are
        // evaluated lazily inside `link_loss_db` at every channel query.
    }

    fn on_node_down(&mut self, now: SimTime, node: usize, permanent: bool) {
        let st = &mut self.nodes[node];
        st.retired |= permanent;
        if !st.alive {
            return;
        }
        st.alive = false;
        // A crash loses volatile state: the MAC queue empties. Any
        // transmission already on the air completes (the radio front-end
        // drains), matching the legacy `NodeFault` semantics.
        st.queue.clear();
        st.attempts = 0;
        self.record(TraceEvent::NodeFailed { t: now, node });
    }

    fn on_node_up(&mut self, now: SimTime, node: usize) {
        let st = &mut self.nodes[node];
        if st.retired || st.alive {
            // A permanently failed node never reboots; overlapping
            // outage windows can also produce an `Up` for a node that a
            // later window already revived.
            return;
        }
        st.alive = true;
        st.epoch += 1;
        let epoch = st.epoch;
        self.record(TraceEvent::NodeRecovered { t: now, node });
        // Restart the application with a fresh random phase, exactly as
        // at boot.
        let phase = SimDuration::from_secs(
            self.rngs[node].gen_f64() * self.node_period(node).as_secs_f64(),
        );
        self.engine
            .schedule_at(now + phase, Event::Generate { node, epoch });
    }

    /// The effective path loss between two sites right now: the channel
    /// model's loss plus whatever the fault scenario injects (an active
    /// link blackout, interference bursts).
    fn link_loss_db(&mut self, from: BodyLocation, to: BodyLocation, now: SimTime) -> f64 {
        self.channel.path_loss_db(from, to, now)
            + self
                .cfg
                .scenario
                .link_extra_loss_db(from.index(), to.index(), now)
    }

    /// The generation period of `node` (honours per-node rate overrides).
    fn node_period(&self, node: usize) -> SimDuration {
        match &self.cfg.per_node_rates {
            Some(rates) => SimDuration::from_secs(1.0 / rates[node]),
            None => self.cfg.app.period(),
        }
    }

    // --- application layer -------------------------------------------------

    fn on_generate(&mut self, now: SimTime, node: usize, epoch: u32) {
        if !self.nodes[node].alive || epoch != self.nodes[node].epoch {
            // Dead nodes stop generating; a stale epoch is a chain the
            // node's last crash already severed.
            return;
        }
        let seq = self.nodes[node].next_seq;
        self.nodes[node].next_seq += 1;
        self.nodes[node].generated += 1;
        let pkt = Packet::new(node, seq);
        self.gen_times.insert(pkt.key(), now);
        self.record(TraceEvent::Generated { t: now, node, seq });
        self.enqueue(now, node, pkt);
        let period = self.node_period(node);
        // Horizon cuts generation off automatically.
        self.engine
            .schedule_at(now + period, Event::Generate { node, epoch });
    }

    // --- MAC layer ----------------------------------------------------------

    fn enqueue(&mut self, now: SimTime, node: usize, pkt: Packet) {
        if self.nodes[node].queue.len() >= self.cfg.mac_buffer {
            self.buffer_drops += 1;
            self.record(TraceEvent::BufferDrop { t: now, node });
            return;
        }
        self.nodes[node].queue.push_back(pkt);
        self.mac_kick(now, node);
    }

    /// CSMA: ensure a sensing attempt is scheduled when there is traffic.
    fn mac_kick(&mut self, _now: SimTime, node: usize) {
        let MacKind::Csma(csma) = self.cfg.mac else {
            return; // TDMA/ALOHA transmissions are driven by slot events
        };
        let st = &mut self.nodes[node];
        if st.transmitting || st.mac_pending || st.queue.is_empty() {
            return;
        }
        st.mac_pending = true;
        let delay =
            SimDuration::from_secs(self.rngs[node].gen_f64() * csma.initial_backoff.as_secs_f64());
        self.engine.schedule_in(delay, Event::MacAttempt { node });
    }

    fn on_mac_attempt(&mut self, now: SimTime, node: usize) {
        let MacKind::Csma(csma) = self.cfg.mac else {
            unreachable!("MacAttempt event under TDMA");
        };
        self.nodes[node].mac_pending = false;
        if !self.nodes[node].alive
            || self.nodes[node].transmitting
            || self.nodes[node].queue.is_empty()
        {
            return;
        }
        let busy = self.channel_busy_at(now, node);
        match csma.access_mode {
            crate::params::CsmaAccessMode::NonPersistent => {
                if busy {
                    self.nodes[node].attempts += 1;
                    if self.nodes[node].attempts >= csma.max_attempts {
                        // Non-persistent CSMA gives up: drop the head packet.
                        self.nodes[node].queue.pop_front();
                        self.nodes[node].attempts = 0;
                        self.mac_drops += 1;
                        self.record(TraceEvent::MacDrop { t: now, node });
                        self.mac_kick(now, node);
                    } else {
                        self.nodes[node].mac_pending = true;
                        let delay = SimDuration::from_secs(
                            self.rngs[node].gen_f64() * csma.backoff.as_secs_f64(),
                        );
                        self.engine.schedule_in(delay, Event::MacAttempt { node });
                    }
                    return;
                }
            }
            crate::params::CsmaAccessMode::PPersistent { p, sense_period } => {
                // Persistent access never abandons the packet: it waits
                // for the channel to free (transmissions always end, so
                // this cannot livelock) and re-senses at that instant —
                // which is exactly why 1-persistent CSMA collides when
                // several nodes wait out the same transmission. On an
                // idle sense it defers one period with probability 1 - p.
                if busy {
                    // Re-attempt when the last audible transmission ends.
                    let busy_until = self.audible_busy_until(now, node);
                    self.nodes[node].mac_pending = true;
                    self.engine
                        .schedule_at(busy_until.max(now), Event::MacAttempt { node });
                    return;
                }
                if self.rngs[node].gen_f64() >= p {
                    self.nodes[node].mac_pending = true;
                    self.engine
                        .schedule_in(sense_period, Event::MacAttempt { node });
                    return;
                }
            }
        }
        self.nodes[node].attempts = 0;
        // Clear channel: commit. The radio turns around from receive to
        // transmit; during this blind window other nodes still sense an
        // idle channel, which is where CSMA collisions come from.
        self.nodes[node].mac_pending = true; // suppress further attempts
        self.engine
            .schedule_in(csma.turnaround, Event::TxCommit { node });
    }

    fn on_tx_commit(&mut self, now: SimTime, node: usize) {
        self.nodes[node].mac_pending = false;
        if !self.nodes[node].alive
            || self.nodes[node].transmitting
            || self.nodes[node].queue.is_empty()
        {
            return;
        }
        self.start_transmission(now, node);
    }

    fn on_aloha_slot(&mut self, now: SimTime, index: u64) {
        let MacKind::SlottedAloha(aloha) = self.cfg.mac else {
            unreachable!("AlohaSlot event under a different MAC");
        };
        for node in 0..self.nodes.len() {
            if self.nodes[node].alive
                && !self.nodes[node].transmitting
                && !self.nodes[node].queue.is_empty()
                && self.rngs[node].gen_f64() < aloha.p
            {
                self.start_transmission(now, node);
            }
        }
        self.engine
            .schedule_in(aloha.slot, Event::AlohaSlot { index: index + 1 });
    }

    fn on_hybrid_slot(&mut self, now: SimTime, index: u64) {
        let MacKind::Hybrid(h) = self.cfg.mac else {
            unreachable!("HybridSlot event under a different MAC");
        };
        let frame_len = self.nodes.len() as u64 + u64::from(h.contention_slots);
        let within = index % frame_len;
        if within < self.nodes.len() as u64 {
            // Managed phase: the owner's guaranteed slot.
            let owner = within as usize;
            if self.nodes[owner].alive
                && !self.nodes[owner].transmitting
                && !self.nodes[owner].queue.is_empty()
            {
                self.start_transmission(now, owner);
            }
        } else {
            // Random access phase: only *backlogged* nodes (more than one
            // queued packet) gamble for the slot — a lone fresh packet is
            // safer waiting for its guaranteed slot than risking a
            // collision it cannot retransmit.
            for node in 0..self.nodes.len() {
                if self.nodes[node].alive
                    && !self.nodes[node].transmitting
                    && self.nodes[node].queue.len() > 1
                    && self.rngs[node].gen_f64() < h.p
                {
                    self.start_transmission(now, node);
                }
            }
        }
        self.engine
            .schedule_in(h.slot, Event::HybridSlot { index: index + 1 });
    }

    fn on_tdma_slot(&mut self, now: SimTime, index: u64) {
        let MacKind::Tdma(tdma) = self.cfg.mac else {
            unreachable!("TdmaSlot event under CSMA");
        };
        let owner = (index % self.nodes.len() as u64) as usize;
        if self.nodes[owner].alive
            && !self.nodes[owner].transmitting
            && !self.nodes[owner].queue.is_empty()
        {
            self.start_transmission(now, owner);
        }
        self.engine
            .schedule_in(tdma.slot, Event::TdmaSlot { index: index + 1 });
    }

    /// The end time of the last in-flight transmission audible at `node`
    /// (current time if none are audible).
    fn audible_busy_until(&mut self, now: SimTime, node: usize) -> SimTime {
        let transmissions: Vec<(usize, SimTime)> = self.medium.active_transmissions().collect();
        let loc = self.nodes[node].loc;
        let mut until = now;
        for (tx, start) in transmissions {
            let pl = self.link_loss_db(self.nodes[tx].loc, loc, now);
            if self.cfg.radio.link_closes(pl) {
                until = until.max(start + self.tpkt);
            }
        }
        until
    }

    /// Carrier sense: is any in-flight transmission audible at `node`?
    /// (CCA threshold taken equal to the receiver sensitivity.)
    fn channel_busy_at(&mut self, now: SimTime, node: usize) -> bool {
        let transmitters: Vec<usize> = self.medium.active_transmitters().collect();
        let loc = self.nodes[node].loc;
        transmitters.into_iter().any(|tx| {
            let pl = self.link_loss_db(self.nodes[tx].loc, loc, now);
            self.cfg.radio.link_closes(pl)
        })
    }

    // --- radio layer ----------------------------------------------------------

    fn start_transmission(&mut self, now: SimTime, node: usize) {
        let pkt = self.nodes[node]
            .queue
            .pop_front()
            .expect("start_transmission on empty queue");
        self.nodes[node].transmitting = true;
        self.transmissions += 1;
        // Determine audibility per receiver at transmission start.
        let tx_loc = self.nodes[node].loc;
        let mut audible = Vec::with_capacity(self.nodes.len() - 1);
        for r in 0..self.nodes.len() {
            if r == node || self.nodes[r].transmitting || !self.nodes[r].alive {
                continue;
            }
            let pl = self.link_loss_db(tx_loc, self.nodes[r].loc, now);
            if self.cfg.radio.link_closes(pl) {
                audible.push(r);
            }
        }
        self.medium.start_tx(node, pkt, now, &audible);
        self.record(TraceEvent::TxStart {
            t: now,
            node,
            origin: pkt.origin,
            seq: pkt.seq,
            relay: pkt.relay,
        });
        self.nodes[node].tx_energy_j +=
            self.tpkt.as_secs_f64() * self.cfg.radio.tx_power.consumption_mw() * 1e-3;
        self.engine.schedule_in(self.tpkt, Event::TxEnd { node });
    }

    fn on_tx_end(&mut self, now: SimTime, node: usize) {
        self.nodes[node].transmitting = false;
        let (pkt, receptions) = self.medium.end_tx(node);
        let rx_energy = self.tpkt.as_secs_f64() * self.cfg.radio.rx_consumption_mw * 1e-3;
        for rec in receptions {
            self.nodes[rec.receiver].rx_energy_j += rx_energy;
            if !rec.corrupted {
                self.deliveries += 1;
                self.record(TraceEvent::Delivered {
                    t: now,
                    rx: rec.receiver,
                    origin: pkt.origin,
                    seq: pkt.seq,
                });
                self.deliver(now, rec.receiver, pkt);
            } else {
                self.record(TraceEvent::Corrupted {
                    t: now,
                    rx: rec.receiver,
                    tx: node,
                });
            }
        }
        self.mac_kick(now, node);
    }

    // --- routing + application reception -----------------------------------

    fn deliver(&mut self, now: SimTime, node: usize, pkt: Packet) {
        // Application bookkeeping: count unique (origin, seq) arrivals.
        if pkt.origin != node {
            let origin = pkt.origin;
            let seq = pkt.seq;
            if self.nodes[node].received[origin].insert(seq) {
                // First arrival of this packet at this receiver: a latency
                // sample from generation to application delivery.
                if let Some(&t0) = self.gen_times.get(&pkt.key()) {
                    self.latency
                        .record(now.duration_since(t0).as_secs_f64() * 1e3);
                }
            }
        }
        // Routing decision.
        match self.cfg.routing {
            Routing::Star { coordinator } => {
                if node == coordinator
                    && !pkt.relay
                    && pkt.origin != node
                    && self.nodes[node].relayed.insert(pkt.key())
                {
                    let copy = pkt.relayed_by(node);
                    self.enqueue(now, node, copy);
                }
            }
            Routing::Mesh {
                max_hops,
                flood_mode,
            } => {
                if !pkt.has_visited(node) && pkt.hops < max_hops {
                    let relay_ok = match flood_mode {
                        FloodMode::DedupPerNode => self.nodes[node].relayed.insert(pkt.key()),
                        FloodMode::HistoryOnly => true,
                    };
                    if relay_ok {
                        let copy = pkt.relayed_by(node);
                        self.enqueue(now, node, copy);
                    }
                }
            }
        }
    }

    // --- metrics -------------------------------------------------------------

    fn finish(self) -> SimOutcome {
        let n = self.nodes.len();
        let secs = self.t_sim.as_secs_f64();

        // Eq. (6): PDR_k = 1/(N-1) * sum_{i != k} received_{i->k} / sent_i.
        let node_pdr: Vec<f64> = (0..n)
            .map(|k| {
                let mut sum = 0.0;
                let mut pairs = 0u32;
                for i in 0..n {
                    if i == k || self.nodes[i].generated == 0 {
                        continue;
                    }
                    sum += self.nodes[k].received[i].len() as f64 / self.nodes[i].generated as f64;
                    pairs += 1;
                }
                if pairs == 0 {
                    0.0
                } else {
                    sum / pairs as f64
                }
            })
            .collect();
        // Eq. (7): network PDR.
        let pdr = node_pdr.iter().sum::<f64>() / n as f64;

        let node_power_mw: Vec<f64> = self
            .nodes
            .iter()
            .map(|st| {
                let radio_w = (st.tx_energy_j + st.rx_energy_j) / secs;
                (self.cfg.app.baseline_power_w + radio_w) * 1e3
            })
            .collect();

        // Eq. (4): the coordinator is exempt in a star (bigger battery),
        // and nodes killed by fault injection no longer limit lifetime.
        // Harvested power offsets the drain (net-zero nodes live forever).
        let coordinator = self.cfg.coordinator();
        let considered = (0..n).filter(|&i| Some(i) != coordinator && self.nodes[i].alive);
        let harvest_mw = self.cfg.harvest_power_w * 1e3;
        let net_power_mw: Vec<f64> = node_power_mw
            .iter()
            .map(|&p| (p - harvest_mw).max(0.0))
            .collect();
        let nlt_days = network_lifetime_days(&net_power_mw, self.cfg.battery_j, considered.clone());
        let max_power_mw = considered.map(|i| node_power_mw[i]).fold(0.0f64, f64::max);

        let generated = self.nodes.iter().map(|s| s.generated).sum();
        let latency = if self.latency.count() == 0 {
            LatencyStats::default()
        } else {
            LatencyStats {
                samples: self.latency.count(),
                mean_ms: self.latency.mean(),
                std_ms: self.latency.std_dev(),
                max_ms: self.latency.max(),
            }
        };
        SimOutcome {
            pdr,
            node_pdr,
            nlt_days,
            node_power_mw,
            max_power_mw,
            latency,
            counts: TrafficCounts {
                generated,
                transmissions: self.transmissions,
                deliveries: self.deliveries,
                collisions: self.medium.collisions(),
                buffer_drops: self.buffer_drops,
                mac_drops: self.mac_drops,
            },
            sim_seconds: secs,
        }
    }
}
