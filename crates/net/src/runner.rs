//! Convenience entry points for running simulations.

use hi_channel::{Channel, ChannelModel, ChannelParams};
use hi_des::SimDuration;

use crate::metrics::{average_outcomes, SimOutcome};
use crate::params::{ConfigError, NetworkConfig};
use crate::sim::NetworkSim;

/// Runs one simulation of `cfg` over an arbitrary channel model.
///
/// # Errors
///
/// Returns [`ConfigError`] for structurally invalid configurations.
pub fn simulate<C: ChannelModel>(
    cfg: &NetworkConfig,
    channel: C,
    t_sim: SimDuration,
    seed: u64,
) -> Result<SimOutcome, ConfigError> {
    use hi_trace::wellknown as wk;
    let mut span = hi_trace::span("net.replication");
    let t_begin = hi_trace::now_ns();
    let outcome = NetworkSim::new(cfg.clone(), channel, t_sim, seed)?.run();
    hi_trace::counter(wk::NET_REPLICATIONS, 1);
    hi_trace::counter(wk::NET_PACKETS_GENERATED, outcome.counts.generated);
    hi_trace::counter(wk::NET_PACKETS_DELIVERED, outcome.counts.deliveries);
    hi_trace::counter(wk::NET_TRANSMISSIONS, outcome.counts.transmissions);
    hi_trace::counter(wk::NET_DROPS_COLLISION, outcome.counts.collisions);
    hi_trace::counter(wk::NET_DROPS_BUFFER, outcome.counts.buffer_drops);
    hi_trace::counter(wk::NET_DROPS_MAC, outcome.counts.mac_drops);
    if let (Some(t0), Some(t1)) = (t_begin, hi_trace::now_ns()) {
        hi_trace::histogram(wk::NET_REPLICATION_NS, t1.saturating_sub(t0));
    }
    if span.is_recording() {
        span.arg("seed", seed);
        span.arg("pdr", outcome.pdr);
    }
    Ok(outcome)
}

/// Runs one simulation with the stochastic body channel built from
/// `channel_params`; the channel's fading RNG is seeded from `seed`.
///
/// # Errors
///
/// Returns [`ConfigError`] for structurally invalid configurations.
pub fn simulate_stochastic(
    cfg: &NetworkConfig,
    channel_params: ChannelParams,
    t_sim: SimDuration,
    seed: u64,
) -> Result<SimOutcome, ConfigError> {
    // Decorrelate the channel stream from the MAC/app stream.
    let channel = Channel::new(
        channel_params,
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
    );
    simulate(cfg, channel, t_sim, seed)
}

/// Runs `runs` independent replications (seeds `base_seed..base_seed+runs`)
/// and averages the outcomes — the paper's "averaged over 3 runs" protocol.
///
/// # Errors
///
/// Returns [`ConfigError`] for structurally invalid configurations.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn simulate_averaged(
    cfg: &NetworkConfig,
    channel_params: ChannelParams,
    t_sim: SimDuration,
    base_seed: u64,
    runs: u32,
) -> Result<SimOutcome, ConfigError> {
    assert!(runs > 0, "need at least one run");
    let outcomes: Result<Vec<_>, _> = (0..runs)
        .map(|r| simulate_stochastic(cfg, channel_params, t_sim, base_seed + u64::from(r)))
        .collect();
    Ok(average_outcomes(&outcomes?))
}
