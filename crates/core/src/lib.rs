//! Design-space exploration for a Human Intranet network.
//!
//! This crate is the primary contribution of the `hi-opt` workspace: a
//! from-scratch reproduction of *"Optimized Design of a Human Intranet
//! Network"* (Moin, Nuzzo, Sangiovanni-Vincentelli, Rabaey — DAC 2017).
//! Given application-driven topological constraints and a reliability
//! floor `PDRmin`, it selects the node placement and full network-stack
//! configuration (radio transmit power, MAC protocol, routing topology)
//! that maximizes network lifetime:
//!
//! * [`DesignSpace`] / [`TopologyConstraints`] — the constrained discrete
//!   space of `(ν, χ)` design vectors ([`DesignPoint`]);
//! * [`power`] — the coarse analytic power model (eqs. 3, 5, 9) used to
//!   rank candidates cheaply, and the α bound-correction;
//! * [`MilpEncoding`] — the relaxed problem `P̃` as a mixed integer linear
//!   program (solved exactly by [`hi_milp`]);
//! * [`explore`] — **Algorithm 1**: the iterative MILP + discrete-event
//!   simulation loop with power cuts and the α-corrected optimality test;
//! * [`exhaustive_search`] and [`simulated_annealing`] — the baselines the
//!   paper compares against.
//!
//! # Quickstart
//!
//! Find the lifetime-optimal configuration at 70% reliability with a
//! fast simulation protocol:
//!
//! ```
//! use hi_channel::ChannelParams;
//! use hi_core::{explore, Problem, SimEvaluator};
//! use hi_des::SimDuration;
//!
//! # fn main() -> Result<(), hi_core::ExploreError> {
//! let problem = Problem::paper_default(0.70);
//! let mut evaluator = SimEvaluator::new(
//!     ChannelParams::default(),
//!     SimDuration::from_secs(30.0), // paper protocol uses 600 s x 3 runs
//!     1,
//!     42,
//! );
//! let outcome = explore(&problem, &mut evaluator)?;
//! let (point, eval) = outcome.best.expect("70% is achievable");
//! println!("optimal: {point} (PDR {:.1}%, {:.1} days)",
//!          eval.pdr * 100.0, eval.nlt_days);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm1;
mod checkpoint;
mod constraints;
mod crc32;
mod evaluator;
mod exhaustive;
mod ilp_heuristic;
mod milp_encode;
mod parallel;
mod point;
pub mod power;
mod profiles;
mod robust;
mod robust_milp;
mod robustness;
mod sa;
mod suitefile;
mod supervised;
mod tradeoff;

pub use algorithm1::{
    explore, explore_par, explore_par_from, explore_par_observed, explore_with_options,
    ExplorationOutcome, ExploreError, ExploreOptions, Problem, StopReason,
};
pub use checkpoint::{
    load_checkpoint_file, load_recovering, CheckpointLoadError, CheckpointRecovery,
    ExploreCheckpoint, ENGINE_ALGORITHM1, ENGINE_ILP_HEURISTIC, ENGINE_ROBUST_MILP,
};
pub use constraints::{DesignSpace, TopologyConstraints};
pub use crc32::crc32_ieee;
pub use evaluator::{
    Evaluation, Evaluator, FnEvaluator, PointEvaluator, SharedSimEvaluator, SimEvaluator,
    SimProtocol,
};
pub use exhaustive::{exhaustive_search, exhaustive_search_par, ExhaustiveOutcome};
pub use hi_exec::{CancelToken, ChaosPolicy, EvalError, RetryPolicy, Supervisor};
pub use ilp_heuristic::ilp_heuristic_search;
pub use milp_encode::MilpEncoding;
pub use parallel::ExecContext;
pub use point::{DesignPoint, MacChoice, Placement, RouteChoice};
pub use profiles::AppProfile;
pub use robust::{FaultSuite, RobustEvaluation, RobustEvaluator, RobustMode};
pub use robust_milp::{robust_milp_search, RobustOutcome};
pub use robustness::{deviation_power_mw, LinkDeviation, RobustnessSpec, DEVIATION_CAP_DB};
pub use sa::{simulated_annealing, simulated_annealing_restarts, SaOutcome, SaParams};
pub use suitefile::{parse_fault_suite, SuiteParseError};
pub use supervised::{supervision_spec, warmup_events_floor, SupervisedEvaluator};
pub use tradeoff::{explore_tradeoff, explore_tradeoff_par, TradeoffPoint};
