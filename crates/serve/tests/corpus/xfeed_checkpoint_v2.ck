hi-opt explore checkpoint v2
pdr_min 3fe6666666666666
alpha_correction 1
iterations 4
candidates 48
simulations 48
cut 3ff0119999999997
cut 3ff051eb851eb855
cut 3ff129999999999e
best 331 3fe6888888888889 404128f6e2751296 3fea3947ae147ad7
end
crc32 eb75f633
