hi-opt explore checkpoint v2
pdr_min 3fefae147ae147ae
alpha_correction 0
iterations 2
candidates 31
simulations 31
best none
end
crc32 b1916d85
