# Every directive the grammar knows, in one block.
profile full monty   # ids may contain spaces
geometry 1.05
channel -1.5
traffic 12.5 128
pdrmin 0.95
engine algorithm1
tsim 120
runs 5
seed 42
faults scenarios/demo.suite q25
