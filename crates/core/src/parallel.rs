//! Parallel execution plumbing for the search engines.
//!
//! [`ExecContext`] bundles the three `hi-exec` pieces — thread pool,
//! cancellation token and (through [`SharedSimEvaluator`]) the shared
//! evaluation cache — behind one handle that every batch entry point
//! (`exhaustive_search_par`, `explore_par`, `simulated_annealing_restarts`,
//! `explore_tradeoff_par`) accepts. A context built with `threads <= 1`
//! spawns no pool at all and runs the exact sequential code path, so the
//! parallel entry points strictly generalize the sequential ones.

use hi_exec::{CancelToken, EvalError, ThreadPool};

use crate::evaluator::{Evaluation, PointEvaluator};
use crate::point::DesignPoint;

/// Execution resources for the batch search entry points.
#[derive(Debug)]
pub struct ExecContext {
    pool: Option<ThreadPool>,
    cancel: CancelToken,
}

impl ExecContext {
    /// A context with `threads` workers. `threads <= 1` means strictly
    /// sequential: no pool is spawned and evaluations run on the calling
    /// thread in input order.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: (threads > 1).then(|| ThreadPool::new(threads)),
            cancel: CancelToken::new(),
        }
    }

    /// The strictly sequential context.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A context sized by [`hi_exec::default_threads`] (the
    /// `HI_EXEC_THREADS` environment variable, else the machine's
    /// available parallelism).
    pub fn from_env() -> Self {
        Self::new(hi_exec::default_threads())
    }

    /// Worker threads evaluations run on (1 for the sequential context).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ThreadPool::threads)
    }

    /// A clone of the context's cancellation token; cancelling it makes
    /// every engine running under this context stop between evaluations
    /// and report [`StopReason::Cancelled`](crate::StopReason::Cancelled)
    /// (or return its current partial result).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether the context has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Applies `f` to every item — on the pool if there is one, else
    /// sequentially in input order — returning results in input order.
    /// `None` marks items skipped after cancellation; without
    /// cancellation every slot is `Some` regardless of thread count.
    pub(crate) fn map_cancellable<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Option<R>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        match &self.pool {
            None => items
                .into_iter()
                .map(|item| (!self.cancel.is_cancelled()).then(|| f(item)))
                .collect(),
            Some(pool) => pool.par_map_cancellable(items, self.cancel.clone(), f),
        }
    }

    /// Evaluates `points` against `evaluator`, returning evaluations in
    /// input order. `None` marks points skipped after cancellation;
    /// without cancellation every slot is `Some`, bit-identical for every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics on the first point whose evaluation fails; use
    /// [`try_eval_points`](Self::try_eval_points) on paths that must
    /// survive broken points.
    pub fn eval_points<P: PointEvaluator>(
        &self,
        evaluator: &P,
        points: &[DesignPoint],
    ) -> Vec<Option<Evaluation>> {
        self.try_eval_points(evaluator, points)
            .into_iter()
            .zip(points)
            .map(|(slot, point)| {
                slot.map(|r| match r {
                    Ok(eval) => eval,
                    Err(e) => panic!("evaluation of {point} failed: {e}"),
                })
            })
            .collect()
    }

    /// [`eval_points`](Self::eval_points), hardened: a failing (or
    /// panicking) evaluation degrades to a per-slot [`EvalError`] instead
    /// of aborting the batch. Both execution paths catch panics, so the
    /// slot-level results are bit-identical for every thread count.
    pub fn try_eval_points<P: PointEvaluator>(
        &self,
        evaluator: &P,
        points: &[DesignPoint],
    ) -> Vec<Option<Result<Evaluation, EvalError>>> {
        let evaluator = evaluator.clone();
        match &self.pool {
            None => points
                .iter()
                .map(|p| {
                    (!self.cancel.is_cancelled()).then(|| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            evaluator.try_eval(p)
                        }))
                        .unwrap_or_else(|payload| Err(EvalError::from_panic(payload.as_ref())))
                    })
                })
                .collect(),
            Some(pool) => pool.par_map_catching(points.to_vec(), self.cancel.clone(), move |p| {
                evaluator.try_eval(&p)
            }),
        }
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimProtocol;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_des::SimDuration;
    use hi_net::TxPower;

    fn points() -> Vec<DesignPoint> {
        TxPower::ALL
            .iter()
            .map(|&tx_power| DesignPoint {
                placement: Placement::from_indices([0, 1, 3, 5]),
                tx_power,
                mac: MacChoice::Tdma,
                routing: RouteChoice::Star,
            })
            .collect()
    }

    #[test]
    fn sequential_context_has_no_pool() {
        let ctx = ExecContext::sequential();
        assert_eq!(ctx.threads(), 1);
        let ctx = ExecContext::new(0);
        assert_eq!(ctx.threads(), 1);
    }

    #[test]
    fn eval_points_is_thread_count_invariant() {
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 17);
        let run = |threads: usize| {
            let ctx = ExecContext::new(threads);
            let ev = protocol.shared_evaluator();
            ctx.eval_points(&ev, &points())
        };
        let sequential = run(1);
        assert!(sequential.iter().all(Option::is_some));
        assert_eq!(sequential, run(4));
    }

    #[test]
    fn cancelled_context_skips_sequential_work() {
        let protocol = SimProtocol::new(SimDuration::from_secs(2.0), 1, 17);
        let ctx = ExecContext::sequential();
        ctx.cancel_token().cancel();
        assert!(ctx.is_cancelled());
        let ev = protocol.shared_evaluator();
        let out = ctx.eval_points(&ev, &points());
        assert!(out.iter().all(Option::is_none));
        assert_eq!(ev.cache_len(), 0);
    }
}
