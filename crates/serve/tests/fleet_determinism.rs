//! Fleet-level determinism: the service inherits the workspace's core
//! guarantee — bit-identical results at any thread count — and adds its
//! own: a duplicate profile re-submitted to a warm fleet runs entirely
//! from cache, spending zero new simulations.
//!
//! The batch runs through the real [`Server`] (queue, persistence,
//! scheduler), not a shortcut harness, so what is proven is what the
//! daemon actually does.

use std::sync::Arc;

use hi_serve::{JobState, ServeConfig, Server};

/// A 4-profile fleet: three users sharing one evaluation protocol (two
/// engines among them) plus one with different physics. Deliberately
/// small simulations — determinism does not need long horizons.
const FLEET: &str = "\
profile alice
tsim 2
runs 1
pdrmin 0.9

profile bob
tsim 2
runs 1
pdrmin 0.85

profile carol
tsim 2
runs 1
pdrmin 0.9
engine exhaustive

profile dave
tsim 2
runs 1
pdrmin 0.9
geometry 1.15
traffic 25 64
";

fn state_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hi-serve-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Submits `fleet`, runs the scheduler to completion, returns every
/// result block in job-id order.
fn run_fleet(threads: usize, tag: &str, fleet: &str) -> Vec<String> {
    let dir = state_dir(tag);
    let mut config = ServeConfig::new(&dir);
    config.threads = threads;
    let server = Arc::new(Server::new(config).unwrap());
    let ids = server.submit(fleet).unwrap();
    let scheduler = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.scheduler_loop())
    };
    let mut results = Vec::new();
    for &id in &ids {
        let state = server.wait(id, &mut |_| true).unwrap();
        assert_eq!(state, JobState::Done, "job {id} failed");
        results.push(server.result(id).unwrap());
    }
    server.request_shutdown();
    scheduler.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    results
}

#[test]
fn a_fleet_batch_is_bit_identical_across_thread_counts() {
    let sequential = run_fleet(1, "t1", FLEET);
    let pooled = run_fleet(8, "t8", FLEET);
    assert_eq!(sequential.len(), 4);
    // Bit-identical result blocks — including the hex-exact metric
    // fields AND the simulation counts: the fleet cache's dedup pattern
    // is part of the deterministic contract, not an optimization that
    // may vary with scheduling.
    assert_eq!(sequential, pooled);
    // And the dedup pattern is the designed one: alice (first on her
    // evaluator) simulates, bob shares her protocol so spends nothing
    // new only where points overlap; dave's physics differ, so he pays
    // full freight. Pin alice and dave as strictly positive.
    let sims = |block: &str| -> u64 {
        block
            .lines()
            .find_map(|l| l.strip_prefix("simulations "))
            .expect("result block carries a simulations line")
            .parse()
            .expect("simulation count parses")
    };
    assert!(sims(&sequential[0]) > 0, "{}", sequential[0]);
    assert!(sims(&sequential[3]) > 0, "{}", sequential[3]);
}

#[test]
fn a_resubmitted_duplicate_profile_costs_zero_simulations() {
    let dir = state_dir("dup");
    let mut config = ServeConfig::new(&dir);
    config.threads = 2;
    let server = Arc::new(Server::new(config).unwrap());
    let scheduler = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.scheduler_loop())
    };
    let one_user = "profile alice\ntsim 2\nruns 1\npdrmin 0.9\n";
    let first = server.submit(one_user).unwrap();
    assert_eq!(
        server.wait(first[0], &mut |_| true).unwrap(),
        JobState::Done
    );
    let warm_misses = {
        let stats_block = server.stats_block();
        stats_block
            .lines()
            .find_map(|l| l.strip_prefix("serve.fleet.cache_misses "))
            .unwrap()
            .parse::<u64>()
            .unwrap()
    };
    assert!(warm_misses > 0, "the first job simulated something");

    // Same profile again — different user id, same physics: the search
    // replays over a warm cache and every evaluation is a hit.
    let dup = server
        .submit("profile alice-again\ntsim 2\nruns 1\npdrmin 0.9\n")
        .unwrap();
    assert_eq!(server.wait(dup[0], &mut |_| true).unwrap(), JobState::Done);
    let block = server.result(dup[0]).unwrap();
    let sims: Vec<&str> = block
        .lines()
        .filter(|l| l.starts_with("simulations "))
        .collect();
    assert_eq!(sims, vec!["simulations 0"], "{block}");

    // The fleet counters agree: no new misses, only hits.
    let stats_block = server.stats_block();
    let misses_after: u64 = stats_block
        .lines()
        .find_map(|l| l.strip_prefix("serve.fleet.cache_misses "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(misses_after, warm_misses, "{stats_block}");

    // Apart from the id line (and id-derived text), the duplicate's
    // result block matches the original byte for byte.
    let original = server.result(first[0]).unwrap();
    let strip_id = |block: &str| -> String {
        block
            .lines()
            .filter(|l| !l.starts_with("profile ") && !l.starts_with("simulations "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_id(&original), strip_id(&block));

    server.request_shutdown();
    scheduler.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
