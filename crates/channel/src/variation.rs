//! Temporal channel variation `δPL_ij(t)` as a Gauss–Markov process.

use hi_des::rng::{standard_normal, Rng};
use hi_des::SimTime;

/// Parameters of the Ornstein–Uhlenbeck temporal-variation process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationParams {
    /// Stationary standard deviation of the variation, dB.
    pub sigma_db: f64,
    /// Correlation time constant, seconds. Samples `Δt` apart are
    /// correlated with coefficient `exp(−Δt/τ)`.
    pub tau_s: f64,
}

impl Default for VariationParams {
    fn default() -> Self {
        // On-body 2.4 GHz links show several dB of slow shadowing driven by
        // posture with sub-second decorrelation during walking; these
        // defaults give deep (>2σ = 14 dB) fades a few percent of the time.
        Self {
            sigma_db: 7.0,
            tau_s: 0.8,
        }
    }
}

/// One link's Ornstein–Uhlenbeck state.
///
/// The conditional law after an elapsed `Δt` given the last value `δ0` is
/// `N(ρ δ0, σ²(1 − ρ²))` with `ρ = exp(−Δt/τ)` — i.e. the process is the
/// continuous-time analogue of an AR(1) chain, and its conditional density
/// depends exactly on the previous observation and the elapsed time, the
/// structure postulated by the paper (§2.1.1).
#[derive(Debug, Clone, Copy)]
pub struct OuProcess {
    params: VariationParams,
    last_value: f64,
    last_time: Option<SimTime>,
}

impl OuProcess {
    /// Creates a process in its stationary regime (first sample is drawn
    /// from the `N(0, σ²)` marginal).
    pub fn new(params: VariationParams) -> Self {
        Self {
            params,
            last_value: 0.0,
            last_time: None,
        }
    }

    /// The parameters this process was built with.
    pub fn params(&self) -> VariationParams {
        self.params
    }

    /// Samples `δPL(t)`, updating the internal state.
    ///
    /// Querying at the same time twice returns the same value; time must
    /// not go backwards.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous query time.
    pub fn sample(&mut self, t: SimTime, rng: &mut Rng) -> f64 {
        let sigma = self.params.sigma_db;
        match self.last_time {
            None => {
                let z: f64 = standard_normal(rng);
                self.last_value = sigma * z;
                self.last_time = Some(t);
                self.last_value
            }
            Some(t0) => {
                if t == t0 {
                    return self.last_value;
                }
                let dt = t.duration_since(t0).as_secs_f64();
                let rho = (-dt / self.params.tau_s).exp();
                let z: f64 = standard_normal(rng);
                self.last_value = rho * self.last_value + sigma * (1.0 - rho * rho).sqrt() * z;
                self.last_time = Some(t);
                self.last_value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_des::rng::stream;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn same_time_same_value() {
        let mut p = OuProcess::new(VariationParams::default());
        let mut rng = stream(1, 0);
        let a = p.sample(t(1.0), &mut rng);
        let b = p.sample(t(1.0), &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn stationary_moments() {
        // With large Δt between samples the process is white N(0, σ²).
        let params = VariationParams {
            sigma_db: 6.0,
            tau_s: 0.5,
        };
        let mut p = OuProcess::new(params);
        let mut rng = stream(7, 0);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let x = p.sample(t(10.0 * (i + 1) as f64), &mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn short_gaps_are_highly_correlated() {
        let params = VariationParams {
            sigma_db: 6.0,
            tau_s: 1.0,
        };
        let mut rng = stream(3, 0);
        // Estimate lag-Δt autocorrelation empirically via many short pairs.
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..5_000 {
            let mut p = OuProcess::new(params);
            let base = t(k as f64 * 100.0 + 1.0);
            let a = p.sample(base, &mut rng);
            let b = p.sample(base + hi_des::SimDuration::from_millis(10.0), &mut rng);
            num += a * b;
            den += a * a;
        }
        let rho = num / den;
        let expected = (-0.01f64 / 1.0).exp(); // ≈ 0.99
        assert!((rho - expected).abs() < 0.05, "rho {rho} vs {expected}");
    }

    #[test]
    fn long_gaps_decorrelate() {
        let params = VariationParams {
            sigma_db: 6.0,
            tau_s: 0.5,
        };
        let mut rng = stream(4, 0);
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..20_000 {
            let mut p = OuProcess::new(params);
            let base = t(k as f64 * 100.0 + 1.0);
            let a = p.sample(base, &mut rng);
            let b = p.sample(base + hi_des::SimDuration::from_secs(10.0), &mut rng);
            num += a * b;
            den += a * a;
        }
        let rho = num / den;
        assert!(rho.abs() < 0.05, "rho {rho} should be ~0");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let params = VariationParams::default();
        let run = |seed| {
            let mut p = OuProcess::new(params);
            let mut rng = stream(seed, 9);
            (0..10)
                .map(|i| p.sample(t(0.1 * (i + 1) as f64), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
