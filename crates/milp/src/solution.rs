//! Solve results.

use crate::VarId;

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// An optimal solution was found and proven.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

/// The result of solving a [`Model`](crate::Model).
///
/// When [`status`](Solution::status) is not [`SolveStatus::Optimal`] the
/// variable values are meaningless and [`Solution::objective`] panics.
#[derive(Debug, Clone)]
pub struct Solution {
    status: SolveStatus,
    values: Vec<f64>,
    objective: Option<f64>,
    lint: Vec<hi_lint::Finding>,
}

impl Solution {
    pub(crate) fn optimal(values: Vec<f64>, objective: f64) -> Self {
        Self {
            status: SolveStatus::Optimal,
            values,
            objective: Some(objective),
            lint: Vec::new(),
        }
    }

    pub(crate) fn infeasible() -> Self {
        Self {
            status: SolveStatus::Infeasible,
            values: Vec::new(),
            objective: None,
            lint: Vec::new(),
        }
    }

    pub(crate) fn unbounded() -> Self {
        Self {
            status: SolveStatus::Unbounded,
            values: Vec::new(),
            objective: None,
            lint: Vec::new(),
        }
    }

    pub(crate) fn set_lint_findings(&mut self, findings: Vec<hi_lint::Finding>) {
        self.lint = findings;
    }

    /// The outcome classification.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// True if an optimum was found.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// The optimal objective value.
    ///
    /// # Panics
    ///
    /// Panics if the solve did not end with [`SolveStatus::Optimal`].
    pub fn objective(&self) -> f64 {
        self.objective
            .expect("objective only defined for optimal solutions")
    }

    /// The value of a variable in the optimum.
    ///
    /// # Panics
    ///
    /// Panics if the solve was not optimal or the id is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// The value of a binary/integer variable rounded to the nearest `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the solve was not optimal or the id is out of range.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.0].round() as i64
    }

    /// The dense assignment (index = variable insertion order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Warning/info findings the pre-solve static analyzer collected for
    /// the model this solution came from (error findings abort the solve,
    /// so they never appear here).
    pub fn lint_findings(&self) -> &[hi_lint::Finding] {
        &self.lint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_accessors() {
        let s = Solution::optimal(vec![1.0, 0.25], 4.5);
        assert!(s.is_optimal());
        assert_eq!(s.objective(), 4.5);
        assert_eq!(s.value(VarId(1)), 0.25);
        assert_eq!(s.int_value(VarId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "optimal")]
    fn objective_panics_when_infeasible() {
        let s = Solution::infeasible();
        let _ = s.objective();
    }

    #[test]
    fn status_flags() {
        assert_eq!(Solution::unbounded().status(), SolveStatus::Unbounded);
        assert_eq!(Solution::infeasible().status(), SolveStatus::Infeasible);
        assert!(!Solution::infeasible().is_optimal());
    }
}
