//! Γ-robustness specifications: per-link deviation bounds derived from a
//! fault suite, ready for the Bertsimas–Sim dualization in
//! [`MilpEncoding`](crate::MilpEncoding).
//!
//! PR 3's [`RobustEvaluator`](crate::RobustEvaluator) bolts robustness
//! onto *evaluation*: every candidate is simulated under every scenario.
//! This module is the other half of ROADMAP item 4 — robustness in the
//! *formulation*. A [`RobustnessSpec`] summarizes a
//! [`FaultSuite`](crate::FaultSuite) as one deviation bound `δ_l` (dB)
//! per body-site pair: the worst extra path loss any scenario can inject
//! on that link. The Γ-robust MILP then charges the objective for the Γ
//! worst active deviations, so its optimum is immune (in the analytic
//! model) to up to Γ links deviating at once — and simulation is only
//! needed to *verify* the final candidate, not to search.
//!
//! The derivation is deliberately coarse and deterministic:
//!
//! * a link blackout on pair `(a, b)` → the pair deviates by the full
//!   [`DEVIATION_CAP_DB`] (the real injection is [`BLACKOUT_LOSS_DB`],
//!   but any loss past the cap already kills every link budget in the
//!   paper's channel, so the cap keeps the MILP well conditioned);
//! * a site outage or battery depletion at site `s` → every pair
//!   touching `s` deviates by the cap (a dead endpoint is a dead link);
//! * an interference burst → every pair deviates by the burst's
//!   `extra_loss_db` (bursts are wideband).
//!
//! Each pair keeps the *maximum* deviation over all scenarios, capped.
//! Pairs with zero deviation are omitted: they are not protected, and
//! Γ budgets only count protected links.

use hi_channel::BodyLocation;
use hi_net::AppParams;

use crate::point::RouteChoice;
use crate::power::radio_power_mw;
use crate::robust::FaultSuite;
use hi_net::TxPower;

/// Deviation bounds saturate here: a 40 dB extra loss already exceeds
/// the whole dynamic range between the paper's Tx power levels, so
/// larger values (e.g. a blackout's `1e9` dB) add no information and
/// would wreck the MILP's conditioning.
pub const DEVIATION_CAP_DB: f64 = 40.0;

/// One protected link: a body-site pair and its worst-case extra path
/// loss (dB) across the fault suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDeviation {
    /// Lower body-site index of the (unordered) pair.
    pub site_a: usize,
    /// Higher body-site index of the pair.
    pub site_b: usize,
    /// Worst-case extra path loss on the link, dB, in
    /// `(0, DEVIATION_CAP_DB]`.
    pub delta_db: f64,
}

/// A Γ-robustness specification: protect against up to `gamma` links
/// deviating by their bounds simultaneously.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessSpec {
    /// The deviation budget Γ: how many protected links the adversary
    /// may push to their bounds at once. `0` degenerates to nominal.
    pub gamma: u32,
    /// The protected links, sorted by `(site_a, site_b)`.
    pub deviations: Vec<LinkDeviation>,
}

impl RobustnessSpec {
    /// Derives per-link deviation bounds from `suite` (see the
    /// [module docs](self) for the mapping).
    pub fn from_suite(suite: &FaultSuite, gamma: u32) -> Self {
        let n = BodyLocation::COUNT;
        let mut delta = vec![vec![0.0f64; n]; n];
        for scenario in &suite.scenarios {
            // Bursts are wideband: the worst one hits every pair.
            let burst_db = scenario
                .bursts
                .iter()
                .map(|b| b.extra_loss_db)
                .fold(0.0f64, f64::max);
            // Dead endpoints: outages and depletions kill every link of
            // their site. (Not `touches_site`, which also counts blackout
            // endpoints — a blackout only kills its own link.)
            let dead = |s: usize| {
                scenario.outages.iter().any(|o| o.site == s)
                    || scenario.depletions.iter().any(|d| d.site == s)
            };
            for (a, row) in delta.iter_mut().enumerate() {
                for (b, slot) in row.iter_mut().enumerate().skip(a + 1) {
                    let mut d = burst_db;
                    if dead(a) || dead(b) {
                        d = DEVIATION_CAP_DB;
                    }
                    if scenario.blackouts.iter().any(|bl| {
                        (bl.site_a, bl.site_b) == (a, b) || (bl.site_a, bl.site_b) == (b, a)
                    }) {
                        d = DEVIATION_CAP_DB;
                    }
                    *slot = slot.max(d.min(DEVIATION_CAP_DB));
                }
            }
        }
        let mut deviations = Vec::new();
        for (a, row) in delta.iter().enumerate() {
            for (b, &delta_db) in row.iter().enumerate().skip(a + 1) {
                if delta_db > 0.0 {
                    deviations.push(LinkDeviation {
                        site_a: a,
                        site_b: b,
                        delta_db,
                    });
                }
            }
        }
        Self { gamma, deviations }
    }

    /// True when the spec cannot change any solution: no budget or no
    /// protected links. Degenerate specs make the robust engines
    /// delegate to plain Algorithm 1, bit for bit.
    pub fn is_degenerate(&self) -> bool {
        self.gamma == 0 || self.deviations.is_empty()
    }

    /// The deviation bound of pair `(a, b)` (order-insensitive), dB;
    /// `0` for unprotected pairs.
    pub fn delta_db(&self, a: usize, b: usize) -> f64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.deviations
            .iter()
            .find(|d| (d.site_a, d.site_b) == (lo, hi))
            .map_or(0.0, |d| d.delta_db)
    }
}

/// Converts a deviation bound (dB) into the power margin (mW) the
/// Γ-robust objective charges for it.
///
/// The analytic model (eq. 5) has no explicit path-loss term, so the
/// conversion uses the model's own dB-to-mW exchange rate: the paper's
/// Tx ladder spans 20 dB (−20 → 0 dBm) and, for the reference 4-node
/// star, costs `radio_power_mw(0 dBm) − radio_power_mw(−20 dBm)` to
/// climb — i.e. the power a node pays to buy 20 dB of link margin.
/// A link deviating by `δ` dB therefore costs `δ/20` of that climb.
/// The mapping is monotone, strictly positive for positive `δ`, and a
/// pure function of `app` — everything determinism needs.
pub fn deviation_power_mw(delta_db: f64, app: &AppParams) -> f64 {
    let climb = radio_power_mw(4, TxPower::ZeroDbm, RouteChoice::Star, app)
        - radio_power_mw(4, TxPower::Minus20Dbm, RouteChoice::Star, app);
    (delta_db.clamp(0.0, DEVIATION_CAP_DB) / 20.0) * climb
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_des::{SimDuration, SimTime, Window};
    use hi_net::{BatteryDepletion, FaultScenario, InterferenceBurst, LinkBlackout, SiteOutage};

    fn demo_like_suite() -> FaultSuite {
        let mut outage = FaultScenario::named("outage");
        outage.outages.push(SiteOutage {
            site: 5,
            window: Window::open_ended(SimTime::ZERO),
        });
        let mut blackout = FaultScenario::named("blackout");
        blackout.blackouts.push(LinkBlackout {
            site_a: 0,
            site_b: 3,
            window: Window::from_secs(1.0, 2.0),
        });
        blackout.blackouts.push(LinkBlackout {
            site_a: 4,
            site_b: 0,
            window: Window::from_secs(1.0, 2.0),
        });
        let mut burst = FaultScenario::named("burst");
        burst.bursts.push(InterferenceBurst {
            window: Window::from_secs(0.0, 5.0),
            extra_loss_db: 9.0,
        });
        FaultSuite::new(vec![outage, blackout, burst])
    }

    #[test]
    fn deviations_cover_every_pair_touched_by_the_suite() {
        let spec = RobustnessSpec::from_suite(&demo_like_suite(), 2);
        assert_eq!(spec.gamma, 2);
        // The burst touches all 45 pairs, so every pair is protected.
        assert_eq!(spec.deviations.len(), 45);
        // Outage at site 5: every pair touching 5 is capped.
        assert_eq!(spec.delta_db(5, 7), DEVIATION_CAP_DB);
        assert_eq!(spec.delta_db(0, 5), DEVIATION_CAP_DB);
        // Blackouts, order-insensitive.
        assert_eq!(spec.delta_db(0, 3), DEVIATION_CAP_DB);
        assert_eq!(spec.delta_db(4, 0), DEVIATION_CAP_DB);
        // Everything else only sees the 9 dB burst.
        assert_eq!(spec.delta_db(1, 2), 9.0);
        assert_eq!(spec.delta_db(0, 7), 9.0);
        // Pairs are canonical (a < b) and sorted.
        for w in spec.deviations.windows(2) {
            assert!(w[0].site_a < w[0].site_b);
            assert!((w[0].site_a, w[0].site_b) < (w[1].site_a, w[1].site_b));
        }
    }

    #[test]
    fn depletions_count_as_dead_endpoints() {
        let mut s = FaultScenario::named("drained");
        s.depletions.push(BatteryDepletion {
            site: 2,
            at: SimDuration::from_secs(1.0),
        });
        let spec = RobustnessSpec::from_suite(&FaultSuite::new(vec![s]), 1);
        assert_eq!(spec.deviations.len(), 9, "pairs touching site 2 only");
        assert!(spec
            .deviations
            .iter()
            .all(|d| (d.site_a == 2 || d.site_b == 2) && d.delta_db == DEVIATION_CAP_DB));
        assert_eq!(spec.delta_db(1, 3), 0.0, "untouched pair is unprotected");
    }

    #[test]
    fn empty_suite_is_degenerate() {
        let spec = RobustnessSpec::from_suite(&FaultSuite::empty(), 3);
        assert!(spec.deviations.is_empty());
        assert!(spec.is_degenerate());
        assert!(RobustnessSpec::from_suite(&demo_like_suite(), 0).is_degenerate());
        assert!(!RobustnessSpec::from_suite(&demo_like_suite(), 1).is_degenerate());
    }

    #[test]
    fn deviation_power_is_monotone_and_capped() {
        let app = AppParams::default();
        assert_eq!(deviation_power_mw(0.0, &app), 0.0);
        let p9 = deviation_power_mw(9.0, &app);
        let p20 = deviation_power_mw(20.0, &app);
        let p40 = deviation_power_mw(40.0, &app);
        assert!(p9 > 0.0 && p20 > p9 && p40 > p20);
        // 20 dB of margin costs exactly the −20 → 0 dBm ladder climb.
        let climb = radio_power_mw(4, TxPower::ZeroDbm, RouteChoice::Star, &app)
            - radio_power_mw(4, TxPower::Minus20Dbm, RouteChoice::Star, &app);
        assert!((p20 - climb).abs() < 1e-12);
        // The cap saturates the exchange rate.
        assert_eq!(
            deviation_power_mw(400.0, &app).to_bits(),
            p40.to_bits(),
            "past the cap all deviations price the same"
        );
    }
}
