//! Algorithm 1 of the paper: MILP-guided, simulation-verified design-space
//! exploration.
//!
//! Each iteration asks the MILP for the set `S` of configurations with the
//! lowest analytic power `P̄*` still admissible, simulates them, keeps the
//! best reliability-feasible candidate, and prunes the level with a power
//! cut. The loop stops when the MILP runs dry or when the α-corrected
//! analytic bound proves that no remaining configuration can beat the
//! incumbent: `P̄*/α(S*, PDRmin) > P̄min`.

use hi_net::AppParams;

use crate::constraints::DesignSpace;
use crate::evaluator::{Evaluation, Evaluator, SharedSimEvaluator};
use crate::exhaustive::{best_feasible, improves};
use crate::milp_encode::MilpEncoding;
use crate::parallel::ExecContext;
use crate::point::DesignPoint;
use crate::power::alpha;

/// The optimization problem `P` (eq. 8): maximize lifetime subject to a
/// reliability floor over a constrained design space.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Topological/configuration constraints defining the space.
    pub space: DesignSpace,
    /// The reliability floor `PDRmin` in `[0, 1]`.
    pub pdr_min: f64,
    /// Application-layer parameters (traffic, baseline power).
    pub app: AppParams,
}

impl Problem {
    /// The paper's §4.1 problem at a given `PDRmin`.
    ///
    /// # Panics
    ///
    /// Panics if `pdr_min` is outside `[0, 1]`.
    pub fn paper_default(pdr_min: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pdr_min),
            "pdr_min must be in [0, 1], got {pdr_min}"
        );
        Self {
            space: DesignSpace::paper_default(),
            pdr_min,
            app: AppParams::default(),
        }
    }
}

/// Why the exploration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The MILP became infeasible: every admissible level was explored.
    MilpExhausted,
    /// The α-corrected analytic bound proved the incumbent optimal.
    BoundProven,
    /// The execution context's [`CancelToken`](hi_exec::CancelToken)
    /// fired: the loop stopped early and `best` holds the incumbent from
    /// the last *fully evaluated* candidate level (partial levels are
    /// discarded so cancellation can never report a wrong optimum, only
    /// a premature one).
    Cancelled,
}

/// The result of a design-space exploration.
#[derive(Debug, Clone)]
pub struct ExplorationOutcome {
    /// The optimal design and its measured performance, or `None` if no
    /// configuration satisfies the reliability constraint.
    pub best: Option<(DesignPoint, Evaluation)>,
    /// MILP query iterations performed.
    pub iterations: u32,
    /// Candidate configurations proposed by the MILP across all
    /// iterations.
    pub candidates_proposed: u64,
    /// Unique simulations run (the evaluator's counter).
    pub simulations: u64,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
}

impl ExplorationOutcome {
    /// True if a feasible optimum was found.
    pub fn is_feasible(&self) -> bool {
        self.best.is_some()
    }
}

/// Errors from [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The underlying MILP solver failed.
    Milp(hi_milp::SolveError),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Milp(e) => write!(f, "milp solver failure: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Milp(e) => Some(e),
        }
    }
}

impl From<hi_milp::SolveError> for ExploreError {
    fn from(e: hi_milp::SolveError) -> Self {
        ExploreError::Milp(e)
    }
}

/// Tuning knobs for [`explore_with_options`]; the defaults reproduce the
/// paper's Algorithm 1 exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Apply the α divisor in the termination test (line 5). Disabling it
    /// makes the bound naively compare `P̄*` against `P̄min` — an ablation
    /// showing why the paper needs α: the analytic model *over*estimates
    /// the power of lossy configurations, so the naive test can stop one
    /// level early and return a false optimum.
    pub alpha_correction: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            alpha_correction: true,
        }
    }
}

/// Runs Algorithm 1 on `problem`, using `evaluator` as the `RunSim` oracle.
///
/// # Errors
///
/// Returns [`ExploreError`] if the MILP solver fails (structurally
/// impossible for well-formed problems; numerical safety valve).
pub fn explore(
    problem: &Problem,
    evaluator: &mut dyn Evaluator,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_with_options(problem, evaluator, ExploreOptions::default())
}

/// [`explore`] with explicit [`ExploreOptions`] (ablation entry point).
///
/// # Errors
///
/// Returns [`ExploreError`] if the MILP solver fails.
pub fn explore_with_options(
    problem: &Problem,
    evaluator: &mut dyn Evaluator,
    options: ExploreOptions,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_impl(problem, options, &mut SeqOracle(evaluator))
}

/// [`explore`] on the execution engine: each candidate level (the MILP's
/// pool `S`) fans out over `exec`'s thread pool and the per-level
/// reduction stays sequential over pool order, so the outcome — best
/// point, iteration count, candidate count and simulation count — is
/// bit-identical for every thread count (`threads == 1` runs the plain
/// sequential loop).
///
/// Cancelling `exec` stops in-flight candidate evaluations between tasks
/// and breaks the loop with [`StopReason::Cancelled`]; the incumbent of
/// the last fully evaluated level is returned.
///
/// # Errors
///
/// Returns [`ExploreError`] if the MILP solver fails.
pub fn explore_par(
    problem: &Problem,
    evaluator: &SharedSimEvaluator,
    options: ExploreOptions,
    exec: &ExecContext,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_impl(problem, options, &mut ParOracle { evaluator, exec })
}

/// How `explore_impl` measures candidate levels: sequentially through a
/// `&mut dyn Evaluator`, or batched over the execution engine.
trait CandidateOracle {
    /// Evaluates one candidate level in pool order. `None` entries mark
    /// candidates skipped because of cancellation.
    fn eval_level(&mut self, pool: &[DesignPoint]) -> Vec<Option<Evaluation>>;
    /// The evaluator's unique-simulation counter.
    fn unique_evaluations(&self) -> u64;
    /// Whether the search has been cancelled.
    fn cancelled(&self) -> bool;
}

struct SeqOracle<'a>(&'a mut dyn Evaluator);

impl CandidateOracle for SeqOracle<'_> {
    fn eval_level(&mut self, pool: &[DesignPoint]) -> Vec<Option<Evaluation>> {
        pool.iter().map(|p| Some(self.0.evaluate(p))).collect()
    }

    fn unique_evaluations(&self) -> u64 {
        self.0.unique_evaluations()
    }

    fn cancelled(&self) -> bool {
        false
    }
}

struct ParOracle<'a> {
    evaluator: &'a SharedSimEvaluator,
    exec: &'a ExecContext,
}

impl CandidateOracle for ParOracle<'_> {
    fn eval_level(&mut self, pool: &[DesignPoint]) -> Vec<Option<Evaluation>> {
        self.exec.eval_points(self.evaluator, pool)
    }

    fn unique_evaluations(&self) -> u64 {
        self.evaluator.unique_evaluations()
    }

    fn cancelled(&self) -> bool {
        self.exec.is_cancelled()
    }
}

fn explore_impl(
    problem: &Problem,
    options: ExploreOptions,
    oracle: &mut dyn CandidateOracle,
) -> Result<ExplorationOutcome, ExploreError> {
    let mut encoding = MilpEncoding::new(problem.space.constraints(), &problem.app);
    let mut best: Option<(DesignPoint, Evaluation)> = None;
    let mut p_min = f64::INFINITY; // P̄min: best simulated power so far
    let mut iterations = 0u32;
    let mut candidates_proposed = 0u64;
    let sims_before = oracle.unique_evaluations();

    let stop_reason = loop {
        if oracle.cancelled() {
            break StopReason::Cancelled;
        }
        // Line 3: (S, P̄*) <- RunMILP(P̃).
        let (pool, p_star) = encoding.solve_pool()?;
        iterations += 1;
        let Some(p_star) = p_star else {
            break StopReason::MilpExhausted; // lines 4 & 5 (S = {})
        };
        // Line 5: optimality proof via the α-corrected bound.
        if let Some((incumbent, _)) = &best {
            let a = if options.alpha_correction {
                alpha(incumbent, problem.pdr_min, &problem.app)
            } else {
                1.0
            };
            if p_star / a > p_min {
                break StopReason::BoundProven;
            }
        }
        candidates_proposed += pool.len() as u64;

        // Line 7: RunSim(S); line 8: Sort. The reduction walks pool order,
        // so the level best (ties: lowest power, then first in pool order)
        // is independent of evaluation scheduling.
        let evals = oracle.eval_level(&pool);
        if oracle.cancelled() {
            // A partially evaluated level could elect a wrong level-best;
            // discard it and report the incumbent so far.
            break StopReason::Cancelled;
        }
        let level: Vec<(DesignPoint, Evaluation)> = pool
            .iter()
            .zip(evals)
            .filter_map(|(point, eval)| eval.map(|e| (*point, e)))
            .collect();
        // Lines 9-10: update the incumbent.
        if let Some((pt, ev)) = best_feasible(&level, problem.pdr_min) {
            if best.as_ref().is_none_or(|(_, b)| !improves(b, &ev)) {
                p_min = ev.power_mw;
                best = Some((pt, ev));
            }
        }
        // Line 11: prune the current analytic level.
        encoding.add_power_cut(p_star);
    };

    Ok(ExplorationOutcome {
        best,
        iterations,
        candidates_proposed,
        simulations: oracle.unique_evaluations() - sims_before,
        stop_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::point::RouteChoice;
    use crate::power::analytic_power_mw;
    use hi_net::TxPower;

    /// A synthetic oracle with a paper-like reliability ladder:
    /// PDR grows with Tx power and with mesh redundancy; simulated power
    /// tracks the analytic value scaled slightly by PDR.
    fn ladder_oracle(point: &DesignPoint) -> Evaluation {
        let app = AppParams::default();
        let base = match point.tx_power {
            TxPower::Minus20Dbm => 0.45,
            TxPower::Minus10Dbm => 0.70,
            TxPower::ZeroDbm => 0.93,
        };
        let bonus = match point.routing {
            RouteChoice::Star => 0.0,
            RouteChoice::Mesh => 0.06 + 0.01 * (point.num_nodes() as f64 - 4.0),
        };
        let pdr = (base + bonus).min(1.0);
        let power = analytic_power_mw(point, &app) * (0.8 + 0.2 * pdr);
        Evaluation {
            pdr,
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
            power_mw: power,
        }
    }

    fn run(pdr_min: f64) -> (ExplorationOutcome, u64) {
        let problem = Problem::paper_default(pdr_min);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let out = explore(&problem, &mut ev).unwrap();
        let sims = ev.unique_evaluations();
        (out, sims)
    }

    #[test]
    fn low_reliability_selects_cheapest_feasible_star() {
        let (out, _) = run(0.40);
        let (pt, ev) = out.best.expect("feasible");
        assert_eq!(pt.tx_power, TxPower::Minus20Dbm);
        assert_eq!(pt.routing, RouteChoice::Star);
        assert!(ev.pdr >= 0.40);
    }

    #[test]
    fn mid_reliability_raises_tx_power() {
        let (out, _) = run(0.60);
        let (pt, _) = out.best.unwrap();
        assert_eq!(pt.tx_power, TxPower::Minus10Dbm);
        assert_eq!(pt.routing, RouteChoice::Star);
    }

    #[test]
    fn high_reliability_switches_to_mesh() {
        let (out, _) = run(0.97);
        let (pt, _) = out.best.unwrap();
        assert_eq!(pt.routing, RouteChoice::Mesh);
    }

    #[test]
    fn full_reliability_needs_bigger_mesh() {
        let (out, _) = run(1.0);
        let (pt, ev) = out.best.unwrap();
        assert_eq!(pt.routing, RouteChoice::Mesh);
        assert!(pt.num_nodes() >= 5, "oracle caps 4-node mesh below 100%");
        assert_eq!(ev.pdr, 1.0);
    }

    #[test]
    fn impossible_reliability_reported_infeasible() {
        // Oracle never exceeds 1.0 but a floor above every reachable pdr:
        let problem = Problem::paper_default(1.0);
        let mut ev = FnEvaluator::new(|p| {
            let mut e = ladder_oracle(p);
            e.pdr = e.pdr.min(0.99); // nothing reaches 1.0
            e
        });
        let out = explore(&problem, &mut ev).unwrap();
        assert!(out.best.is_none());
        assert_eq!(out.stop_reason, StopReason::MilpExhausted);
    }

    #[test]
    fn explores_fewer_points_than_exhaustive() {
        let (out, sims) = run(0.60);
        assert!(out.is_feasible());
        // The paper reports an 87% reduction; our oracle ladder stops
        // after a couple of levels out of 1320 points.
        assert!(
            sims < 1320 / 4,
            "Algorithm 1 simulated {sims} of 1320 points"
        );
        assert_eq!(out.simulations, sims);
    }

    #[test]
    fn terminates_soon_after_first_feasible_level() {
        // The paper observes termination shortly after the first feasible
        // configuration appears; with the ladder oracle the bound fires.
        let (out, _) = run(0.60);
        assert_eq!(out.stop_reason, StopReason::BoundProven);
        assert!(out.iterations <= 8, "iterations = {}", out.iterations);
    }

    #[test]
    fn optimum_maximizes_nlt_among_feasible_points() {
        // Brute-force the oracle over the whole space and compare.
        let problem = Problem::paper_default(0.9);
        let mut ev = FnEvaluator::new(ladder_oracle);
        let out = explore(&problem, &mut ev).unwrap();
        let (_, got) = out.best.unwrap();

        let best_nlt = problem
            .space
            .points()
            .into_iter()
            .map(|p| ladder_oracle(&p))
            .filter(|e| e.pdr >= 0.9)
            .map(|e| e.nlt_days)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (got.nlt_days - best_nlt).abs() < 1e-9,
            "algorithm {} vs exhaustive {}",
            got.nlt_days,
            best_nlt
        );
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn problem_validates_pdr_min() {
        let _ = Problem::paper_default(1.2);
    }
}
