//! Cooperative cancellation.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::AtomicBool;

/// A shared flag for cooperative cancellation.
///
/// Clones observe the same flag. Cancellation is *cooperative*: nothing is
/// interrupted preemptively — [`ThreadPool::par_map_cancellable`]
/// (and any engine loop holding a token) checks the flag between tasks
/// and skips work whose result can no longer matter. A task that already
/// started always runs to completion, so data structures are never seen
/// half-updated.
///
/// [`ThreadPool::par_map_cancellable`]: crate::ThreadPool::par_map_cancellable
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self(Arc::new(AtomicBool::new(false)))
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(feature = "shadow")))]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }
}
