//! CSV import/export of average path-loss matrices.
//!
//! Users with their own body-channel measurement campaign (e.g. the NICTA
//! dataset the paper uses) can drop in a measured matrix instead of the
//! synthetic one: a 10×10 comma-separated table in [`BodyLocation`] index
//! order, dB units, optionally preceded by comment lines starting with
//! `#` or a header row of site names.

use std::error::Error;
use std::fmt;

use crate::{BodyLocation, PathLossMatrix};

/// Error from [`matrix_from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseMatrixError {
    /// Expected exactly 10 data rows.
    WrongRowCount(usize),
    /// A data row did not hold exactly 10 values.
    WrongColumnCount {
        /// Zero-based data-row index.
        row: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// Zero-based data-row index.
        row: usize,
        /// Zero-based column index.
        col: usize,
    },
}

impl fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMatrixError::WrongRowCount(n) => {
                write!(f, "expected 10 data rows, found {n}")
            }
            ParseMatrixError::WrongColumnCount { row, found } => {
                write!(f, "row {row} holds {found} fields instead of 10")
            }
            ParseMatrixError::BadNumber { row, col } => {
                write!(f, "field at row {row}, column {col} is not a number")
            }
        }
    }
}

impl Error for ParseMatrixError {}

/// Parses a path-loss matrix from CSV text.
///
/// Lines starting with `#` are skipped; a first non-comment line whose
/// first field is not numeric is treated as a header and skipped too. The
/// matrix is symmetrized (averaging `(i,j)` and `(j,i)`) and the diagonal
/// zeroed, as in [`PathLossMatrix::from_values`].
///
/// # Errors
///
/// Returns [`ParseMatrixError`] on malformed input.
pub fn matrix_from_csv(text: &str) -> Result<PathLossMatrix, ParseMatrixError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut saw_header = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let first_numeric = fields.first().is_some_and(|f| f.parse::<f64>().is_ok());
        if !first_numeric && !saw_header && rows.is_empty() {
            saw_header = true;
            continue;
        }
        let row_idx = rows.len();
        if fields.len() != BodyLocation::COUNT {
            return Err(ParseMatrixError::WrongColumnCount {
                row: row_idx,
                found: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(BodyLocation::COUNT);
        for (col, field) in fields.iter().enumerate() {
            let v: f64 = field
                .parse()
                .map_err(|_| ParseMatrixError::BadNumber { row: row_idx, col })?;
            row.push(v);
        }
        rows.push(row);
    }
    if rows.len() != BodyLocation::COUNT {
        return Err(ParseMatrixError::WrongRowCount(rows.len()));
    }
    let mut values = [[0.0; BodyLocation::COUNT]; BodyLocation::COUNT];
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            values[i][j] = v;
        }
    }
    Ok(PathLossMatrix::from_values(values))
}

/// Renders a matrix as CSV with a site-name header row.
pub fn matrix_to_csv(matrix: &PathLossMatrix) -> String {
    let mut out = String::new();
    let header: Vec<&str> = BodyLocation::ALL.iter().map(|l| l.name()).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for &a in &BodyLocation::ALL {
        let row: Vec<String> = BodyLocation::ALL
            .iter()
            .map(|&b| format!("{:.2}", matrix.loss_db(a, b)))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathLossParams;

    #[test]
    fn roundtrip_synthetic_matrix() {
        let m = PathLossMatrix::synthetic(&PathLossParams::default());
        let csv = matrix_to_csv(&m);
        let parsed = matrix_from_csv(&csv).unwrap();
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                assert!(
                    (m.loss_db(a, b) - parsed.loss_db(a, b)).abs() < 0.01,
                    "{a}-{b}"
                );
            }
        }
    }

    #[test]
    fn comments_and_header_skipped() {
        let mut body = String::from("# campaign 2017-03\nchest,a,b,c,d,e,f,g,h,i\n");
        for i in 0..10 {
            let row: Vec<String> = (0..10)
                .map(|j| {
                    if i == j {
                        "0".into()
                    } else {
                        format!("{}", 50 + i + j)
                    }
                })
                .collect();
            body.push_str(&row.join(","));
            body.push('\n');
        }
        let m = matrix_from_csv(&body).unwrap();
        assert_eq!(m.loss_db(BodyLocation::Chest, BodyLocation::LeftHip), 51.0);
    }

    #[test]
    fn wrong_row_count_rejected() {
        assert_eq!(
            matrix_from_csv("1,2,3,4,5,6,7,8,9,10\n"),
            Err(ParseMatrixError::WrongRowCount(1))
        );
    }

    #[test]
    fn wrong_column_count_rejected() {
        let err = matrix_from_csv("1,2,3\n").unwrap_err();
        assert_eq!(err, ParseMatrixError::WrongColumnCount { row: 0, found: 3 });
    }

    #[test]
    fn bad_number_rejected() {
        let mut body = String::new();
        for i in 0..10 {
            let row: Vec<String> = (0..10)
                .map(|j| {
                    if i == 2 && j == 5 {
                        "oops".into()
                    } else {
                        "60".into()
                    }
                })
                .collect();
            body.push_str(&row.join(","));
            body.push('\n');
        }
        assert_eq!(
            matrix_from_csv(&body),
            Err(ParseMatrixError::BadNumber { row: 2, col: 5 })
        );
    }

    #[test]
    fn display_messages() {
        let e = ParseMatrixError::WrongRowCount(3);
        assert_eq!(e.to_string(), "expected 10 data rows, found 3");
    }
}
