//! Static validation of execution-supervision policies.
//!
//! The supervised execution layer (retries, logical deadlines, chaos
//! injection) is deliberately permissive at run time: a zero attempt
//! bound clamps to one, a hopeless event budget simply fails every
//! evaluation, chaos runs wherever it is enabled. This pass is where
//! those configurations get *explained* before a run wastes its budget
//! discovering them:
//!
//! * **HL038** — a retry/deadline misconfiguration: an attempt bound of
//!   zero (the run would evaluate nothing as written), a DES-event budget
//!   below the warm-up horizon (every replication schedules its initial
//!   events before delivering any payload, so such a budget trips on
//!   *every* evaluation), or retrying permanently-classified failures
//!   (deterministic evaluators fail permanently the same way every time,
//!   so the retries only multiply the cost of each broken point) — all
//!   errors;
//! * **HL039** — a chaos policy present in a release build or a robust
//!   (`--robust`) run (warning): chaos is a test instrument for the
//!   engine, and fault-aware scoring under injected engine faults
//!   conflates the two fault models.
//!
//! Like the rest of the crate this module is dependency-free: callers
//! lower their policy types into a [`SupervisionSpec`].

use crate::report::{Finding, Report, RuleId, Span};

/// One supervision configuration, lowered to plain numbers for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionSpec {
    /// Total attempts per evaluation, including the first.
    pub max_attempts: u32,
    /// Whether permanently-classified failures are retried.
    pub retry_permanent: bool,
    /// The per-replication DES-event budget, if any.
    pub event_budget: Option<u64>,
    /// The minimum events a replication dispatches before any payload
    /// can move (one initial application event per node plus the
    /// end-of-run event); budgets below this floor trip on every
    /// evaluation.
    pub warmup_events: u64,
    /// Whether a chaos (fault-injection) policy is active.
    pub chaos_enabled: bool,
    /// Whether this is a release (optimized) build.
    pub release_build: bool,
    /// Whether the run scores candidates against a fault suite
    /// (`--robust`).
    pub robust_run: bool,
}

/// Lints a supervision policy (see the module docs for the rules).
pub fn lint_supervision(spec: &SupervisionSpec) -> Report {
    let mut report = Report::new();
    if spec.max_attempts == 0 {
        report.push(Finding::new(
            RuleId::RetryMisconfigured,
            Span::Model,
            "retry policy allows 0 attempts — as written the run would \
             evaluate nothing (the engine clamps to 1)",
        ));
    }
    if spec.retry_permanent {
        report.push(Finding::new(
            RuleId::RetryMisconfigured,
            Span::Model,
            "retry policy retries permanent failures — deterministic \
             evaluations fail permanently the same way every time, so the \
             retries only multiply the cost of each broken point",
        ));
    }
    if let Some(budget) = spec.event_budget {
        if budget < spec.warmup_events {
            report.push(Finding::new(
                RuleId::RetryMisconfigured,
                Span::Model,
                format!(
                    "event budget {budget} is below the DES warm-up horizon \
                     ({} events) — every evaluation trips the deadline before \
                     a single packet moves",
                    spec.warmup_events
                ),
            ));
        }
    }
    if spec.chaos_enabled && (spec.release_build || spec.robust_run) {
        let where_ = match (spec.release_build, spec.robust_run) {
            (true, true) => "a release build and a --robust run",
            (true, false) => "a release build",
            _ => "a --robust run",
        };
        report.push(Finding::new(
            RuleId::ChaosInRelease,
            Span::Model,
            format!(
                "chaos injection is enabled in {where_} — chaos is a \
                 debug/test instrument for the engine, not a production or \
                 fault-suite scoring mode"
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> SupervisionSpec {
        SupervisionSpec {
            max_attempts: 3,
            retry_permanent: false,
            event_budget: None,
            warmup_events: 7,
            chaos_enabled: false,
            release_build: false,
            robust_run: false,
        }
    }

    #[test]
    fn a_sane_policy_is_clean() {
        assert!(lint_supervision(&clean()).is_clean());
        // A generous budget is fine too.
        let spec = SupervisionSpec {
            event_budget: Some(1_000_000),
            ..clean()
        };
        assert!(lint_supervision(&spec).is_clean());
        // Chaos in a debug nominal run is what chaos is for.
        let spec = SupervisionSpec {
            chaos_enabled: true,
            ..clean()
        };
        assert!(lint_supervision(&spec).is_clean());
    }

    #[test]
    fn hl038_fires_on_each_misconfiguration() {
        let spec = SupervisionSpec {
            max_attempts: 0,
            ..clean()
        };
        let report = lint_supervision(&spec);
        assert!(report.has_rule(RuleId::RetryMisconfigured));
        assert!(report.has_errors());

        let spec = SupervisionSpec {
            retry_permanent: true,
            ..clean()
        };
        assert!(lint_supervision(&spec).has_errors());

        let spec = SupervisionSpec {
            event_budget: Some(6),
            warmup_events: 7,
            ..clean()
        };
        let report = lint_supervision(&spec);
        assert!(report.has_rule(RuleId::RetryMisconfigured), "{report}");
        // At exactly the floor the budget is legal (tight, not broken).
        let spec = SupervisionSpec {
            event_budget: Some(7),
            warmup_events: 7,
            ..clean()
        };
        assert!(lint_supervision(&spec).is_clean());
    }

    #[test]
    fn hl039_warns_on_chaos_in_release_or_robust() {
        for (release, robust) in [(true, false), (false, true), (true, true)] {
            let spec = SupervisionSpec {
                chaos_enabled: true,
                release_build: release,
                robust_run: robust,
                ..clean()
            };
            let report = lint_supervision(&spec);
            assert!(report.has_rule(RuleId::ChaosInRelease));
            assert!(!report.has_errors(), "HL039 is a warning");
        }
        // No chaos, no finding — even in release robust runs.
        let spec = SupervisionSpec {
            release_build: true,
            robust_run: true,
            ..clean()
        };
        assert!(lint_supervision(&spec).is_clean());
    }
}
