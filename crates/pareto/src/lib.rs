//! Incremental multi-objective Pareto archive over `(power, PDR,
//! latency)` — the "query the frontier instead of re-sweeping it" core
//! of `tradeoff --archive` and the daemon's `FRONT` command.
//!
//! The paper's Algorithm 1 answers one question per run: the cheapest
//! design above one PDR floor. Every run, though, evaluates dozens of
//! candidates whose full objective vectors are thrown away once the
//! single optimum is reported. This crate keeps them: every evaluation
//! any engine performs (exhaustive, Algorithm 1, simulated annealing,
//! robust) is offered to a [`ParetoArchive`], which maintains the
//! non-dominated front incrementally. A later trade-off question is then
//! a lookup, not a sweep.
//!
//! # Dominance model
//!
//! All three objectives are *minimized*: power (mW), `1 − PDR`
//! (unreliability), and latency (ms). Network lifetime rides along as a
//! carried metric (it is `2430 mWh / power` up to unit conversion, so a
//! separate axis would be redundant) and is reported with every front
//! point.
//!
//! The archive uses **epsilon-box dominance** (Laumanns-style): each
//! objective axis is divided into boxes of width `epsilon[i]`, a point's
//! box vector is `floor(objective[i] / epsilon[i])`, and point `a`
//! dominates point `b` iff `box(a) ≤ box(b)` componentwise with at
//! least one strict `<`. At most one point survives per box; within a
//! box the winner is chosen by a strict total order (objective
//! lexicographic, then **lowest fingerprint**). Both relations are
//! functions of the point alone, which gives the two properties the
//! daemon's determinism contract needs:
//!
//! * **Insertion-order invariance.** Box dominance is a partial order
//!   on box vectors (transitive, irreflexive), and two same-box points
//!   dominate exactly the same third boxes — so whether a point is
//!   displaced early or rejected late, the surviving set is the same.
//!   The final front is exactly: the best in-box representative of
//!   every box not dominated by any other occupied box.
//! * **Thread invariance.** The archive is fed from evaluation caches
//!   whose contents are thread-invariant; since insertion order cannot
//!   matter, neither can the thread count that produced the feed.
//!
//! No dependencies, std only; persistence lives in `hi-serve` (the
//! archive travels through the same CRC-framed segment discipline as
//! the evaluation cache).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Default box width on the power axis, mW.
pub const DEFAULT_EPS_POWER_MW: f64 = 1e-6;
/// Default box width on the unreliability (`1 − PDR`) axis.
pub const DEFAULT_EPS_PDR: f64 = 1e-6;
/// Default box width on the latency axis, ms.
pub const DEFAULT_EPS_LATENCY_MS: f64 = 1e-6;

/// Epsilon-box widths, one per minimized objective axis.
///
/// The defaults are deliberately tiny: they make epsilon-box dominance
/// coincide with plain Pareto dominance for any realistically separated
/// evaluations, while still bounding the archive and keeping every
/// comparison integral (box indices), hence exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveConfig {
    /// Box width on the power axis, mW. Must be positive and finite.
    pub eps_power_mw: f64,
    /// Box width on the unreliability (`1 − PDR`) axis. Must be
    /// positive, finite, and at most 1 (the axis spans `[0, 1]`).
    pub eps_pdr: f64,
    /// Box width on the latency axis, ms. Must be positive and finite.
    pub eps_latency_ms: f64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        Self {
            eps_power_mw: DEFAULT_EPS_POWER_MW,
            eps_pdr: DEFAULT_EPS_PDR,
            eps_latency_ms: DEFAULT_EPS_LATENCY_MS,
        }
    }
}

impl ArchiveConfig {
    /// Checks the config for degeneracy: zero, negative or non-finite
    /// epsilons (every point would share one box, or box indices would
    /// overflow), and epsilons wider than their objective's sensible
    /// range (the archive would collapse to a single point).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let axes = [
            ("power epsilon (mW)", self.eps_power_mw, 1e3),
            ("pdr epsilon", self.eps_pdr, 1.0),
            ("latency epsilon (ms)", self.eps_latency_ms, 1e6),
        ];
        for (name, eps, range) in axes {
            if !eps.is_finite() || eps <= 0.0 {
                return Err(format!("{name} must be positive and finite, got {eps}"));
            }
            if eps > range {
                return Err(format!(
                    "{name} is {eps}, wider than the whole objective range ({range}): \
                     the archive would collapse to one box"
                ));
            }
        }
        Ok(())
    }

    /// The box vector of `point` — the integral coordinates all
    /// dominance comparisons run on.
    fn box_of(&self, point: &FrontPoint) -> [i64; 3] {
        let idx = |value: f64, eps: f64| (value / eps).floor() as i64;
        let [power, unreliability, latency] = point.objectives();
        [
            idx(power, self.eps_power_mw),
            idx(unreliability, self.eps_pdr),
            idx(latency, self.eps_latency_ms),
        ]
    }
}

/// One archived point: a design fingerprint with its full objective
/// vector. Floats are carried bit-exactly; two `FrontPoint`s are equal
/// iff every field is bit-equal.
#[derive(Debug, Clone, Copy)]
pub struct FrontPoint {
    /// The design point's fingerprint (`DesignPoint::fingerprint()` in
    /// `hi-core`; this crate treats it as an opaque, totally ordered id).
    pub fingerprint: u64,
    /// Simulated power of the lifetime-limiting node, mW (minimized).
    pub power_mw: f64,
    /// Packet delivery ratio in `[0, 1]` (maximized; archived as the
    /// minimized objective `1 − pdr`).
    pub pdr: f64,
    /// Mean end-to-end latency, ms (minimized).
    pub latency_ms: f64,
    /// Network lifetime, days — carried for reporting, not an axis.
    pub nlt_days: f64,
}

impl PartialEq for FrontPoint {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.power_mw.to_bits() == other.power_mw.to_bits()
            && self.pdr.to_bits() == other.pdr.to_bits()
            && self.latency_ms.to_bits() == other.latency_ms.to_bits()
            && self.nlt_days.to_bits() == other.nlt_days.to_bits()
    }
}

impl Eq for FrontPoint {}

impl FrontPoint {
    /// The minimized objective vector: `(power, 1 − pdr, latency)`.
    pub fn objectives(&self) -> [f64; 3] {
        [self.power_mw, 1.0 - self.pdr, self.latency_ms]
    }

    /// The strict total order used within one epsilon box: objective
    /// lexicographic (better power, then better reliability, then
    /// better latency), ties broken by **lowest fingerprint**. Equal
    /// only for the same fingerprint with bit-equal objectives.
    fn in_box_cmp(&self, other: &Self) -> Ordering {
        let a = self.objectives();
        let b = other.objectives();
        for i in 0..3 {
            match a[i].total_cmp(&b[i]) {
                Ordering::Equal => continue,
                unequal => return unequal,
            }
        }
        self.fingerprint.cmp(&other.fingerprint)
    }
}

/// `a ≤ b` componentwise with at least one strict `<`.
fn box_dominates(a: &[i64; 3], b: &[i64; 3]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a != b
}

/// What one [`ParetoArchive::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The point joined the front, displacing `displaced` members it
    /// (box-)dominated or beat within its own box.
    Added {
        /// Members removed to admit this point.
        displaced: usize,
    },
    /// The point is dominated by (or loses its box to, or identically
    /// duplicates) an existing member; the archive is unchanged.
    Dominated,
}

/// An incrementally maintained epsilon-box Pareto front.
///
/// Points live in a `BTreeMap` keyed by fingerprint, so iteration —
/// and therefore every rendered front — is deterministic regardless of
/// the order evaluations arrived in.
#[derive(Debug, Clone)]
pub struct ParetoArchive {
    config: ArchiveConfig,
    points: BTreeMap<u64, FrontPoint>,
}

impl Default for ParetoArchive {
    fn default() -> Self {
        Self::new(ArchiveConfig::default())
    }
}

impl ParetoArchive {
    /// An empty archive under `config`.
    pub fn new(config: ArchiveConfig) -> Self {
        Self {
            config,
            points: BTreeMap::new(),
        }
    }

    /// The box configuration.
    pub fn config(&self) -> &ArchiveConfig {
        &self.config
    }

    /// Offers `point` to the archive. The design space guarantees
    /// finite objectives; non-finite values still terminate (total
    /// orders throughout) but their box indices saturate.
    pub fn insert(&mut self, point: FrontPoint) -> InsertOutcome {
        let pb = self.config.box_of(&point);
        for member in self.points.values() {
            let mb = self.config.box_of(member);
            if box_dominates(&mb, &pb) {
                return InsertOutcome::Dominated;
            }
            if mb == pb && member.in_box_cmp(&point) != Ordering::Greater {
                // The member wins its box (or is the identical point).
                return InsertOutcome::Dominated;
            }
        }
        let displaced: Vec<u64> = self
            .points
            .values()
            .filter(|member| {
                let mb = self.config.box_of(member);
                // Same box: the candidate proved strictly better above.
                box_dominates(&pb, &mb) || mb == pb
            })
            .map(|member| member.fingerprint)
            .collect();
        let count = displaced.len();
        for fingerprint in displaced {
            self.points.remove(&fingerprint);
        }
        self.points.insert(point.fingerprint, point);
        InsertOutcome::Added { displaced: count }
    }

    /// The current front, in ascending fingerprint order.
    pub fn front(&self) -> Vec<FrontPoint> {
        self.points.values().copied().collect()
    }

    /// Iterates the front in ascending fingerprint order.
    pub fn iter(&self) -> impl Iterator<Item = &FrontPoint> {
        self.points.values()
    }

    /// The front member with the lowest power among those with
    /// `pdr ≥ floor` — the archive's answer to one `tradeoff` row.
    /// Ties on power keep the lowest fingerprint (the iteration order).
    pub fn best_for_floor(&self, floor: f64) -> Option<FrontPoint> {
        self.points
            .values()
            .filter(|p| p.pdr >= floor)
            .min_by(|a, b| {
                a.power_mw
                    .total_cmp(&b.power_mw)
                    .then(a.fingerprint.cmp(&b.fingerprint))
            })
            .copied()
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops every point: the invalidation hook for when the physics
    /// behind the archived evaluations changes (new fault suite, new
    /// channel/traffic parameters) and old fronts would lie.
    pub fn clear(&mut self) {
        self.points.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(fingerprint: u64, power: f64, pdr: f64, latency: f64) -> FrontPoint {
        FrontPoint {
            fingerprint,
            power_mw: power,
            pdr,
            latency_ms: latency,
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
        }
    }

    #[test]
    fn dominated_points_are_rejected_and_dominating_points_displace() {
        let mut archive = ParetoArchive::default();
        assert_eq!(
            archive.insert(fp(10, 1.0, 0.9, 5.0)),
            InsertOutcome::Added { displaced: 0 }
        );
        // Worse on every axis: rejected.
        assert_eq!(
            archive.insert(fp(11, 1.1, 0.8, 6.0)),
            InsertOutcome::Dominated
        );
        // Better on every axis: displaces the incumbent.
        assert_eq!(
            archive.insert(fp(12, 0.9, 0.95, 4.0)),
            InsertOutcome::Added { displaced: 1 }
        );
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.front()[0].fingerprint, 12);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut archive = ParetoArchive::default();
        archive.insert(fp(1, 1.0, 0.99, 5.0)); // high power, high pdr
        archive.insert(fp(2, 0.5, 0.70, 5.0)); // low power, low pdr
        archive.insert(fp(3, 0.8, 0.90, 2.0)); // middle, best latency
        assert_eq!(archive.len(), 3);
    }

    #[test]
    fn same_box_keeps_the_objective_winner_then_lowest_fingerprint() {
        let config = ArchiveConfig {
            eps_power_mw: 0.5,
            eps_pdr: 0.1,
            eps_latency_ms: 10.0,
        };
        // Same box, strictly better objectives: winner regardless of order.
        let mut archive = ParetoArchive::new(config);
        archive.insert(fp(7, 1.20, 0.91, 5.0));
        archive.insert(fp(3, 1.10, 0.92, 5.0));
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.front()[0].fingerprint, 3);
        // Bit-identical objectives: lowest fingerprint wins, both orders.
        for pair in [[9u64, 4], [4, 9]] {
            let mut archive = ParetoArchive::new(config);
            for id in pair {
                archive.insert(fp(id, 1.10, 0.92, 5.0));
            }
            assert_eq!(archive.front()[0].fingerprint, 4, "order {pair:?}");
        }
    }

    #[test]
    fn reinserting_an_archived_point_is_a_no_op() {
        let mut archive = ParetoArchive::default();
        archive.insert(fp(5, 1.0, 0.9, 5.0));
        assert_eq!(
            archive.insert(fp(5, 1.0, 0.9, 5.0)),
            InsertOutcome::Dominated
        );
        assert_eq!(archive.len(), 1);
    }

    #[test]
    fn the_front_is_insertion_order_invariant() {
        // A mix of dominated, incomparable and same-box points, offered
        // in many deterministic orders: every order must produce the
        // bit-identical front.
        let points = vec![
            fp(1, 1.00, 0.90, 5.0),
            fp(2, 1.10, 0.80, 6.0), // dominated by 1
            fp(3, 0.90, 0.95, 4.0), // dominates 1
            fp(4, 0.90, 0.95, 4.0), // same box as 3, higher fingerprint
            fp(5, 0.50, 0.60, 9.0), // incomparable
            fp(6, 0.50, 0.60, 8.0), // dominates 5
            fp(7, 2.00, 0.99, 1.0), // incomparable
            fp(8, 2.00, 0.99, 1.5), // dominated by 7
        ];
        let reference: Vec<FrontPoint> = {
            let mut archive = ParetoArchive::default();
            for p in &points {
                archive.insert(*p);
            }
            archive.front()
        };
        assert_eq!(
            reference.iter().map(|p| p.fingerprint).collect::<Vec<_>>(),
            vec![3, 6, 7]
        );
        // Rotations, the reversal, and LCG-driven shuffles.
        let mut orders: Vec<Vec<usize>> = (0..points.len())
            .map(|r| (0..points.len()).map(|i| (i + r) % points.len()).collect())
            .collect();
        orders.push((0..points.len()).rev().collect());
        let mut state = 0x2017dacu64;
        for _ in 0..16 {
            let mut order: Vec<usize> = (0..points.len()).collect();
            for i in (1..order.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                order.swap(i, (state >> 33) as usize % (i + 1));
            }
            orders.push(order);
        }
        for order in orders {
            let mut archive = ParetoArchive::default();
            for &i in &order {
                archive.insert(points[i]);
            }
            assert_eq!(archive.front(), reference, "order {order:?}");
        }
    }

    #[test]
    fn best_for_floor_answers_tradeoff_rows() {
        let mut archive = ParetoArchive::default();
        archive.insert(fp(1, 0.5, 0.70, 5.0));
        archive.insert(fp(2, 0.8, 0.90, 5.0));
        archive.insert(fp(3, 1.2, 0.99, 4.0));
        assert_eq!(archive.best_for_floor(0.6).unwrap().fingerprint, 1);
        assert_eq!(archive.best_for_floor(0.9).unwrap().fingerprint, 2);
        assert_eq!(archive.best_for_floor(0.95).unwrap().fingerprint, 3);
        assert!(archive.best_for_floor(0.999).is_none());
    }

    #[test]
    fn clear_is_the_invalidation_hook() {
        let mut archive = ParetoArchive::default();
        archive.insert(fp(1, 1.0, 0.9, 5.0));
        archive.clear();
        assert!(archive.is_empty());
        assert_eq!(
            archive.insert(fp(2, 9.9, 0.1, 99.0)),
            InsertOutcome::Added { displaced: 0 }
        );
    }

    #[test]
    fn degenerate_configs_fail_validation() {
        assert!(ArchiveConfig::default().validate().is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let config = ArchiveConfig {
                eps_power_mw: bad,
                ..ArchiveConfig::default()
            };
            assert!(config.validate().is_err(), "eps_power_mw = {bad}");
        }
        let too_wide = ArchiveConfig {
            eps_pdr: 1.5,
            ..ArchiveConfig::default()
        };
        let err = too_wide.validate().unwrap_err();
        assert!(err.contains("wider than"), "{err}");
    }
}
