//! Experiment E6 (extension): sensitivity of the flooding mesh to the
//! maximum hop count `Nhops`. The paper fixes `Nhops = 2`; this sweep
//! shows the reliability/lifetime trade as the hop budget grows, and why
//! two hops is the sweet spot for a ≤6-node body network.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_hops
//! ```

use hi_bench::ExpOptions;
use hi_channel::{BodyLocation, ChannelParams};
use hi_net::{simulate_averaged, FloodMode, MacKind, NetworkConfig, Routing, TxPower};

fn main() {
    let opts = ExpOptions::from_args();
    let placements = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::LeftUpperArm,
    ];
    println!("# Experiment E6: flooding mesh vs maximum hop count (5 nodes)");
    println!("tx_power\tnhops\tpdr_pct\tnlt_days\ttransmissions\tlatency_ms");
    for power in [TxPower::Minus10Dbm, TxPower::ZeroDbm] {
        for hops in 1..=4u8 {
            let mut cfg = NetworkConfig::new(
                placements.clone(),
                power,
                MacKind::tdma(),
                Routing::Mesh {
                    max_hops: hops,
                    flood_mode: FloodMode::DedupPerNode,
                },
            );
            cfg.mac_buffer = 64;
            let out = simulate_averaged(
                &cfg,
                ChannelParams::default(),
                opts.t_sim,
                opts.seed,
                opts.runs,
            )
            .expect("valid config");
            println!(
                "{power}\t{hops}\t{:.2}\t{:.2}\t{}\t{:.2}",
                out.pdr_percent(),
                out.nlt_days,
                out.counts.transmissions,
                out.latency.mean_ms
            );
        }
    }
    println!("\n# with per-node duplicate suppression, hop budgets beyond 2 buy");
    println!("# little PDR on a <=6-node network but keep costing latency/energy.");
}
