//! CPLEX-LP-format export.
//!
//! Writes a [`Model`] in the widely understood LP text format so models
//! can be inspected, diffed in tests, or cross-checked against external
//! solvers (CPLEX, Gurobi, HiGHS, `lp_solve` all read it).

use std::fmt::Write as _;

use crate::{LinExpr, Model, Objective, Sense, VarType};

/// Renders `model` in CPLEX LP format.
///
/// Variable names are taken from the model; empty or duplicate names are
/// made unique by suffixing the dense index, since the LP format requires
/// identifiers.
///
/// # Examples
///
/// ```
/// use hi_milp::{lp_format, Model, Sense};
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_integer("y", 0.0, 5.0);
/// m.add_constraint(x + y, Sense::Le, 4.0);
/// m.maximize(x * 3.0 + y * 2.0);
/// let text = lp_format::to_lp_string(&m);
/// assert!(text.starts_with("Maximize"));
/// assert!(text.contains("Binaries"));
/// ```
pub fn to_lp_string(model: &Model) -> String {
    let names = unique_names(model);
    let mut out = String::new();

    match model.objective.as_ref() {
        Some((Objective::Maximize, e)) => {
            out.push_str("Maximize\n obj: ");
            write_expr(&mut out, e, &names);
        }
        Some((Objective::Minimize, e)) => {
            out.push_str("Minimize\n obj: ");
            write_expr(&mut out, e, &names);
        }
        None => out.push_str("Minimize\n obj: 0"),
    }
    out.push('\n');

    out.push_str("Subject To\n");
    for (i, c) in model.constraints.iter().enumerate() {
        let _ = write!(out, " c{i}: ");
        write_expr(&mut out, &c.expr, &names);
        let op = match c.sense {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        };
        let _ = writeln!(out, " {} {}", op, fmt_num(c.rhs));
    }

    out.push_str("Bounds\n");
    for (i, v) in model.vars.iter().enumerate() {
        if v.ty == VarType::Binary {
            continue; // implied 0/1
        }
        let name = &names[i];
        let lb = v.lb;
        let ub = v.ub;
        if lb == f64::NEG_INFINITY && ub == f64::INFINITY {
            let _ = writeln!(out, " {name} free");
        } else if lb == f64::NEG_INFINITY {
            let _ = writeln!(out, " -inf <= {name} <= {}", fmt_num(ub));
        } else if ub == f64::INFINITY {
            let _ = writeln!(out, " {name} >= {}", fmt_num(lb));
        } else {
            let _ = writeln!(out, " {} <= {name} <= {}", fmt_num(lb), fmt_num(ub));
        }
    }

    let generals: Vec<&String> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Integer)
        .map(|(i, _)| &names[i])
        .collect();
    if !generals.is_empty() {
        out.push_str("Generals\n");
        for n in generals {
            let _ = writeln!(out, " {n}");
        }
    }
    let binaries: Vec<&String> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Binary)
        .map(|(i, _)| &names[i])
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binaries\n");
        for n in binaries {
            let _ = writeln!(out, " {n}");
        }
    }
    out.push_str("End\n");
    out
}

fn unique_names(model: &Model) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    model
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let base = sanitize(v.name());
            let name = if base.is_empty() || !seen.insert(base.clone()) {
                let fallback = format!("{base}_{i}");
                seen.insert(fallback.clone());
                fallback
            } else {
                base
            };
            name
        })
        .collect()
}

/// LP identifiers cannot start with a digit or contain operators.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'x');
    }
    s
}

fn write_expr(out: &mut String, e: &LinExpr, names: &[String]) {
    let mut first = true;
    for (v, c) in e.iter() {
        if first {
            if c < 0.0 {
                let _ = write!(out, "- {} {}", fmt_num(-c), names[v.index()]);
            } else {
                let _ = write!(out, "{} {}", fmt_num(c), names[v.index()]);
            }
            first = false;
        } else if c < 0.0 {
            let _ = write!(out, " - {} {}", fmt_num(-c), names[v.index()]);
        } else {
            let _ = write!(out, " + {} {}", fmt_num(c), names[v.index()]);
        }
    }
    let k = e.constant();
    if k != 0.0 || first {
        if first {
            let _ = write!(out, "{}", fmt_num(k));
        } else if k < 0.0 {
            let _ = write!(out, " - {}", fmt_num(-k));
        } else {
            let _ = write!(out, " + {}", fmt_num(k));
        }
    }
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn golden_small_model() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0.0, 5.0);
        let z = m.add_continuous("z", -1.0, f64::INFINITY);
        m.add_constraint(x + y * 2.0 - z, Sense::Le, 4.0);
        m.add_constraint(y - x, Sense::Ge, 0.0);
        m.maximize(x * 3.0 + y * 2.0 + z * 0.5);
        let text = to_lp_string(&m);
        let expected = "\
Maximize
 obj: 3 x + 2 y + 0.5 z
Subject To
 c0: 1 x + 2 y - 1 z <= 4
 c1: - 1 x + 1 y >= 0
Bounds
 0 <= y <= 5
 z >= -1
Generals
 y
Binaries
 x
End
";
        assert_eq!(text, expected);
    }

    #[test]
    fn duplicate_and_bad_names_are_fixed() {
        let mut m = Model::new();
        m.add_binary("a b"); // space -> underscore
        m.add_binary("a_b"); // now duplicate
        m.add_binary("1st"); // leading digit
        m.minimize(crate::LinExpr::constant_expr(0.0));
        let text = to_lp_string(&m);
        assert!(text.contains("a_b"));
        assert!(text.contains("a_b_1"));
        assert!(text.contains("x1st"));
    }

    #[test]
    fn free_variable_rendered() {
        let mut m = Model::new();
        let x = m.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        m.minimize(x * 1.0);
        assert!(to_lp_string(&m).contains(" x free"));
    }

    #[test]
    fn constant_objective_renders() {
        let mut m = Model::new();
        let _ = m.add_binary("b");
        m.minimize(crate::LinExpr::constant_expr(7.0));
        let text = to_lp_string(&m);
        assert!(text.contains("obj: 7"));
    }
}
