//! Model-checking tests: the *real* `hi-exec` protocols under `hi-check`.
//!
//! Compiled only with `--features shadow`, where [`crate::sync`] resolves
//! to the checker's instrumented primitives. Each test hands a closure
//! over genuine `ThreadPool` / `EvalCache` / `CancelToken` code to
//! [`hi_check::explore`], which runs it across bounded-preemption thread
//! interleavings and verifies vector-clock, lock-order and wakeup
//! invariants on every one. These are the checks the mutant suite in
//! `crates/check/tests/mutants.rs` proves have teeth.
//!
//! Budgets are deliberately modest: the pool model already interleaves
//! three OS-visible threads (two workers plus the submitter), and a few
//! thousand schedules with preemption bound 2 is the loom-style sweet
//! spot — exhaustive for the bug classes we seed, minutes not hours.

use hi_check::{explore, Config};

use crate::{CancelToken, EvalCache, ThreadPool};

fn budget(max_executions: u64) -> Config {
    Config {
        max_executions,
        ..Config::default()
    }
}

/// Asserts a clean sweep and that exploration actually branched.
fn assert_clean(name: &str, config: &Config, model: impl Fn() + Send + Sync + 'static) {
    let report = explore(config, model);
    assert!(
        report.is_clean(),
        "{name}: checker found {}",
        report.violation.expect("violation present")
    );
    assert!(
        report.executions > 1,
        "{name}: only one interleaving explored"
    );
}

#[test]
fn pool_park_unpark_and_steal_check_clean() {
    // Two workers and the submitting thread: covers the generation-counter
    // park/unpark protocol, the injector/deque scan and the completion
    // latch of `par_map`, with results asserted in input order.
    assert_clean("pool.par_map", &budget(3_000), || {
        let pool = ThreadPool::new(2);
        let out = pool.par_map(vec![1u64, 2], |x| x * 10);
        assert_eq!(out, vec![10, 20]);
        drop(pool);
    });
}

#[test]
fn pool_empty_batch_and_shutdown_check_clean() {
    // Shutdown racing workers that never received work: the pure
    // park/unpark handshake, no tasks to hide a lost wakeup behind.
    assert_clean("pool.shutdown", &budget(3_000), || {
        let pool = ThreadPool::new(2);
        let out: Vec<u64> = pool.par_map(Vec::new(), |x: u64| x);
        assert!(out.is_empty());
        drop(pool);
    });
}

#[test]
fn cache_settle_waiter_handoff_checks_clean() {
    // Three getters race one cold key; exactly one computes, the others
    // take the condvar waiter path and must observe the settled value.
    // One shard keeps shard selection deterministic under the checker.
    assert_clean("cache.get_or_compute", &budget(3_000), || {
        let cache = std::sync::Arc::new(EvalCache::<u64, u64>::with_shards(1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                crate::sync::thread::spawn_named("getter".into(), move || {
                    assert_eq!(cache.get_or_compute(7, || 42), 42);
                })
            })
            .collect();
        assert_eq!(cache.get_or_compute(7, || 42), 42);
        for h in handles {
            h.join().expect("getter panicked");
        }
        assert_eq!(cache.misses(), 1, "key computed more than once");
    });
}

#[test]
fn cancel_mid_batch_checks_clean() {
    // Cancellation raced against a two-task batch: whatever the schedule,
    // a slot is either a real result or `None`, the latch always settles,
    // and the cancel flag's Release/Acquire pairing publishes cleanly.
    assert_clean("pool.cancel", &budget(3_000), || {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            crate::sync::thread::spawn_named("canceller".into(), move || token.cancel())
        };
        let out = pool.par_map_cancellable(vec![1u64, 2], token, |x| x + 1);
        for (i, slot) in out.iter().enumerate() {
            assert!(
                slot.is_none() || *slot == Some(i as u64 + 2),
                "slot {i} corrupted: {slot:?}"
            );
        }
        canceller.join().expect("canceller panicked");
        drop(pool);
    });
}

#[test]
fn cancellation_observed_inside_cache_waiter_checks_clean() {
    // A waiter parked on the cache's `settled` condvar wakes into a
    // cancelled world: the wait itself must still hand over the value
    // (exactly-once), with cancellation only deciding what the caller
    // does *next* — the protocol hi-sup's retry loop relies on.
    assert_clean("cache.cancelled_waiter", &budget(3_000), || {
        let cache = std::sync::Arc::new(EvalCache::<u64, u64>::with_shards(1));
        let token = CancelToken::new();
        let getter = {
            let cache = std::sync::Arc::clone(&cache);
            let token = token.clone();
            crate::sync::thread::spawn_named("waiter".into(), move || {
                let value = cache.get_or_compute(3, || 30);
                // The value is authoritative even if cancel already fired.
                assert_eq!(value, 30);
                token.is_cancelled()
            })
        };
        let value = cache.get_or_compute(3, || 30);
        token.cancel();
        assert_eq!(value, 30);
        let _saw_cancel = getter.join().expect("waiter panicked");
        assert_eq!(cache.misses(), 1);
    });
}
