//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::VarId;

/// One `coefficient * variable` term of a [`LinExpr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// The variable this term refers to.
    pub var: VarId,
    /// The multiplying coefficient.
    pub coeff: f64,
}

/// A linear expression `c0 + c1*x1 + c2*x2 + ...`.
///
/// `LinExpr` supports the arithmetic you would expect from a modelling
/// language: expressions, variables, and `f64` scalars can be combined with
/// `+`, `-` and `*` (scalar multiplication only — the expression is linear
/// by construction).
///
/// ```
/// use hi_milp::{LinExpr, Model, VarType};
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// let e = x * 2.0 + y - 1.0;
/// assert_eq!(e.constant(), -1.0);
/// assert_eq!(e.terms().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// Coefficients keyed by variable; kept sorted for determinism.
    coeffs: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a constant expression.
    pub fn constant_expr(value: f64) -> Self {
        Self {
            coeffs: BTreeMap::new(),
            constant: value,
        }
    }

    /// Creates the expression `1.0 * var`.
    pub fn var(var: VarId) -> Self {
        Self::term(var, 1.0)
    }

    /// Creates the expression `coeff * var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(var, coeff);
        Self {
            coeffs,
            constant: 0.0,
        }
    }

    /// Sums `1.0 * v` over an iterator of variables.
    pub fn sum<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        let mut e = Self::new();
        for v in vars {
            e.add_term(v, 1.0);
        }
        e
    }

    /// Adds `coeff * var` to this expression in place.
    pub fn add_term(&mut self, var: VarId, coeff: f64) {
        let entry = self.coeffs.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() == 0.0 {
            self.coeffs.remove(&var);
        }
    }

    /// The additive constant of the expression.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Adds to the additive constant.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// The coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.coeffs.get(&var).copied().unwrap_or(0.0)
    }

    /// The non-zero terms, ordered by variable index.
    pub fn terms(&self) -> Vec<Term> {
        self.coeffs
            .iter()
            .map(|(&var, &coeff)| Term { var, coeff })
            .collect()
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.coeffs.iter().map(|(&v, &c)| (v, c))
    }

    /// True if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the expression against a dense assignment
    /// (`values[i]` is the value of the variable with index `i`).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of bounds for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .coeffs
                .iter()
                .map(|(v, c)| c * values[v.0])
                .sum::<f64>()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.coeffs {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl SubAssign<LinExpr> for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.coeffs {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.coeffs.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        self.coeffs.retain(|_, c| {
            *c *= rhs;
            c.abs() != 0.0
        });
        self.constant *= rhs;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

// -- VarId arithmetic sugar ------------------------------------------------

impl Add<VarId> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        LinExpr::var(self) + LinExpr::var(rhs)
    }
}

impl Add<LinExpr> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::var(self) + rhs
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        self + LinExpr::var(rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Add<f64> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::var(self) + rhs
    }
}

impl Sub<VarId> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        LinExpr::var(self) - LinExpr::var(rhs)
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        self - LinExpr::var(rhs)
    }
}

impl Sub<LinExpr> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::var(self) - rhs
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Sub<f64> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::var(self) - rhs
    }
}

impl Mul<f64> for VarId {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::term(self, rhs)
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: VarId) -> LinExpr {
        LinExpr::term(rhs, self)
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        iter.fold(LinExpr::new(), |acc, e| acc + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn add_and_merge_terms() {
        let e = v(0) + v(1) + v(0);
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 1.0);
    }

    #[test]
    fn cancellation_removes_term() {
        let e = v(0) - v(0);
        assert!(e.is_constant());
        assert_eq!(e.terms().len(), 0);
    }

    #[test]
    fn scalar_mul_scales_everything() {
        let e = (v(0) + 2.0) * 3.0;
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.constant(), 6.0);
    }

    #[test]
    fn eval_dense() {
        let e = v(0) * 2.0 + v(2) - 1.0;
        assert_eq!(e.eval(&[1.0, 99.0, 4.0]), 2.0 + 4.0 - 1.0);
    }

    #[test]
    fn sum_of_vars() {
        let e = LinExpr::sum([v(0), v(1), v(2)]);
        assert_eq!(e.terms().len(), 3);
        assert_eq!(e.coeff(v(1)), 1.0);
    }

    #[test]
    fn neg_flips_signs() {
        let e = -(v(0) * 2.0 - 3.0);
        assert_eq!(e.coeff(v(0)), -2.0);
        assert_eq!(e.constant(), 3.0);
    }

    #[test]
    fn sum_trait_accumulates() {
        let e: LinExpr = (0..3).map(|i| v(i) * (i as f64 + 1.0)).sum();
        assert_eq!(e.coeff(v(2)), 3.0);
    }
}
