//! Reproducible random-number streams, self-contained (no external crates).
//!
//! Simulation models need many *independent* random sources (one per node,
//! per link, per traffic generator, ...) that are all derived from a single
//! master seed so a run can be reproduced exactly. [`derive_seed`] maps
//! `(master, stream_id)` to a well-mixed 64-bit seed via SplitMix64, and
//! [`stream`] builds an [`Rng`] (xoshiro256++) from it.

use std::ops::Range;

/// SplitMix64 step: a fast, well-distributed 64-bit mixer.
///
/// Used to derive independent stream seeds from `(master_seed, stream_id)`
/// pairs and to expand a 64-bit seed into xoshiro256++ state. The constants
/// are from Steele, Lea & Flood's SplitMix paper.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stream seed from a master seed and a stream identifier.
///
/// Different `(master, stream)` pairs produce decorrelated seeds; the same
/// pair always produces the same seed.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// This is Blackman & Vigna's xoshiro256++ 1.0: 256 bits of state, a
/// 2^256 − 1 period and excellent statistical quality — more than enough
/// for simulation workloads — with no external dependency. State is seeded
/// through SplitMix64 so any 64-bit seed (including 0) yields a healthy
/// state.
///
/// # Examples
///
/// ```
/// let mut a = hi_des::rng::stream(42, 0);
/// let mut b = hi_des::rng::stream(42, 0);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        Self {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below requires a positive bound");
        // Widening-multiply rejection sampling (Lemire 2018): unbiased and
        // branch-light for the small bounds simulations use.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        // Use the high bit: the low bits of some generators are weaker,
        // and this keeps the choice independent of `gen_below` rejection.
        self.next_u64() >> 63 == 1
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool_p(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Draws a standard-normal variate via the Box–Muller transform.
///
/// Kept here so model crates do not need an extra distribution dependency.
///
/// # Examples
///
/// ```
/// let mut rng = hi_des::rng::stream(1, 0);
/// let z = hi_des::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal(rng: &mut Rng) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Creates a PRNG for the given `(master, stream)` pair.
///
/// # Examples
///
/// ```
/// let mut a = hi_des::rng::stream(42, 0);
/// let mut b = hi_des::rng::stream(42, 1);
/// assert_ne!(a.next_u64(), b.next_u64()); // decorrelated streams
/// ```
pub fn stream(master: u64, stream: u64) -> Rng {
    Rng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pair_same_stream() {
        let draw = || {
            let mut r = stream(1, 2);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream(1, 0);
        let mut b = stream(1, 1);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_reference_vector() {
        // First output for state 0 per the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn derived_seeds_are_spread() {
        // Weak avalanche check: consecutive stream ids give seeds that
        // differ in many bits.
        let a = derive_seed(7, 100);
        let b = derive_seed(7, 101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = stream(3, 3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_f64_mean_is_near_half() {
        let mut r = stream(9, 0);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut r = stream(5, 0);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = r.gen_range(2..9);
            assert!((2..9).contains(&k));
            seen[k - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut r = stream(11, 0);
        let mut counts = [0u32; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[r.gen_below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.02, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn gen_below_zero_panics() {
        stream(0, 0).gen_below(0);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = stream(13, 0);
        let n = 50_000;
        let heads = (0..n).filter(|_| r.gen_bool()).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn bernoulli_tracks_p() {
        let mut r = stream(17, 0);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool_p(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = stream(19, 0);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn zero_seed_is_healthy() {
        // SplitMix64 expansion must not leave an all-zero xoshiro state.
        let mut r = Rng::seed_from_u64(0);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }
}
