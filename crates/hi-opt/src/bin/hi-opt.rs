//! `hi-opt` command-line interface.
//!
//! ```text
//! hi-opt explore  --pdr-min 0.9 [--tsim 600] [--runs 3] [--seed 42] [--threads 8]
//! hi-opt simulate --sites 0,1,3,5 --power 0 --mac tdma --routing mesh
//! hi-opt space
//! hi-opt lint
//! ```
//!
//! Every simulation-backed command takes `--threads <n>` and fans its
//! evaluations over the `hi-exec` pool; results are bit-identical for
//! every thread count.

use std::process::ExitCode;

use hi_opt::channel::{BodyLocation, ChannelParams};
use hi_opt::des::SimDuration;
use hi_opt::net::{
    average_outcomes, simulate_stochastic, MacKind, NetworkConfig, Routing, TxPower,
};
use hi_opt::{
    explore_par, explore_tradeoff_par, DesignSpace, Evaluator, ExecContext, ExploreOptions,
    MilpEncoding, Problem, SimProtocol, TopologyConstraints,
};

const USAGE: &str = "\
hi-opt — optimized design of a Human Intranet network (DAC 2017)

USAGE:
    hi-opt explore  --pdr-min <0..1> [--tsim <secs>] [--runs <n>] [--seed <n>]
                    [--threads <n>]
    hi-opt tradeoff [--floors <p1,p2,...>] [--tsim <secs>] [--runs <n>] [--seed <n>]
                    [--threads <n>]
    hi-opt simulate --sites <i,j,...> --power <-20|-10|0> --mac <csma|tdma>
                    --routing <star|mesh> [--tsim <secs>] [--runs <n>] [--seed <n>]
                    [--threads <n>]
    hi-opt space
    hi-opt lint     [--seed <n>]

COMMANDS:
    explore    run Algorithm 1: MILP-proposed candidates verified by
               discrete-event simulation; prints the lifetime-optimal
               configuration meeting the PDR floor
    tradeoff   sweep reliability floors and print the architecture ladder
               (default floors: 50,60,70,80,90,95,99%)
    simulate   evaluate one explicit configuration
    space      describe the design space and its constraints
    lint       statically analyze the paper scenario: configuration space,
               MILP encoding, the full Algorithm-1 cut ladder and a sample
               event schedule; exits 1 on error-severity findings

`--threads <n>` sizes the deterministic evaluation pool (default: the
HI_EXEC_THREADS environment variable, else all cores). Any value yields
bit-identical results; 1 disables the pool entirely.

SITES (index = paper's n_i):
    0 chest  1 l-hip  2 r-hip  3 l-ankle  4 r-ankle
    5 l-wrist  6 r-wrist  7 l-arm  8 head  9 back
";

struct Common {
    t_sim: SimDuration,
    runs: u32,
    seed: u64,
    threads: usize,
}

impl Common {
    /// The one simulation protocol every evaluator of this invocation is
    /// built from, so `--tsim`/`--runs`/`--seed` cannot drift between the
    /// sequential path and the pool workers.
    fn protocol(&self) -> SimProtocol {
        SimProtocol::new(self.t_sim, self.runs, self.seed)
    }

    fn exec_context(&self) -> ExecContext {
        ExecContext::new(self.threads)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "explore" => cmd_explore(&args[1..]),
        "tradeoff" => cmd_tradeoff(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "space" => cmd_space(),
        "lint" => cmd_lint(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_common(args: &[String]) -> Result<(Common, Vec<(String, String)>), String> {
    let mut common = Common {
        t_sim: SimDuration::from_secs(60.0),
        runs: 3,
        seed: 0xDAC_2017,
        threads: hi_opt::exec::default_threads(),
    };
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        let value = args
            .get(i + 1)
            .cloned()
            .ok_or_else(|| format!("missing value for `{key}`"))?;
        match key.as_str() {
            "--tsim" => {
                let secs: f64 = value.parse().map_err(|_| "bad --tsim".to_owned())?;
                common.t_sim = SimDuration::from_secs(secs);
            }
            "--runs" => common.runs = value.parse().map_err(|_| "bad --runs".to_owned())?,
            "--seed" => common.seed = value.parse().map_err(|_| "bad --seed".to_owned())?,
            "--threads" => {
                common.threads = value.parse().map_err(|_| "bad --threads".to_owned())?
            }
            _ => rest.push((key, value)),
        }
        i += 2;
    }
    if common.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    if common.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if common.t_sim.is_zero() {
        return Err("--tsim must be positive".into());
    }
    Ok((common, rest))
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    let (common, rest) = parse_common(args)?;
    let mut pdr_min = None;
    for (k, v) in rest {
        match k.as_str() {
            "--pdr-min" => {
                pdr_min = Some(v.parse::<f64>().map_err(|_| "bad --pdr-min".to_owned())?)
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let pdr_min = pdr_min.ok_or("explore requires --pdr-min")?;
    if !(0.0..=1.0).contains(&pdr_min) {
        return Err("--pdr-min must be within [0, 1]".into());
    }
    let problem = Problem::paper_default(pdr_min);
    let evaluator = common.protocol().shared_evaluator();
    let exec = common.exec_context();
    let outcome = explore_par(&problem, &evaluator, ExploreOptions::default(), &exec)
        .map_err(|e| e.to_string())?;
    match outcome.best {
        Some((point, eval)) => {
            println!("optimal design : {point}");
            println!(
                "placements     : {:?}",
                point
                    .placement
                    .locations()
                    .iter()
                    .map(|l| l.name())
                    .collect::<Vec<_>>()
            );
            println!("PDR            : {:.2}%", eval.pdr * 100.0);
            println!("lifetime       : {:.1} days", eval.nlt_days);
            println!("worst power    : {:.3} mW", eval.power_mw);
        }
        None => println!(
            "infeasible: no configuration reaches {:.1}% PDR",
            pdr_min * 100.0
        ),
    }
    println!(
        "effort         : {} simulations, {} MILP iterations ({:?})",
        outcome.simulations, outcome.iterations, outcome.stop_reason
    );
    Ok(())
}

fn cmd_tradeoff(args: &[String]) -> Result<(), String> {
    let (common, rest) = parse_common(args)?;
    let mut floors: Vec<f64> = vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99];
    for (k, v) in rest {
        match k.as_str() {
            "--floors" => {
                floors = v
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map(|p| p / 100.0))
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --floors (expected e.g. 50,80,95)".to_owned())?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if floors.iter().any(|f| !(0.0..=1.0).contains(f)) {
        return Err("floors must be percentages within [0, 100]".into());
    }
    let template = Problem::paper_default(0.5);
    let evaluator = common.protocol().shared_evaluator();
    let exec = common.exec_context();
    let sweep =
        explore_tradeoff_par(&template, &floors, &evaluator, &exec).map_err(|e| e.to_string())?;
    println!(
        "{:>7}  {:<34} {:>7} {:>10}",
        "PDRmin", "design", "PDR", "lifetime"
    );
    for point in sweep {
        match point.best {
            Some((design, eval)) => println!(
                "{:>6.1}%  {:<34} {:>6.1}% {:>8.1} d",
                point.pdr_min * 100.0,
                design.to_string(),
                eval.pdr * 100.0,
                eval.nlt_days
            ),
            None => println!("{:>6.1}%  (infeasible)", point.pdr_min * 100.0),
        }
    }
    println!(
        "total unique simulations: {}",
        evaluator.unique_evaluations()
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (common, rest) = parse_common(args)?;
    let mut sites: Option<Vec<usize>> = None;
    let mut power = None;
    let mut mac = None;
    let mut routing = None;
    for (k, v) in rest {
        match k.as_str() {
            "--sites" => {
                sites = Some(
                    v.split(',')
                        .map(|s| s.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| "bad --sites (expected e.g. 0,1,3,5)".to_owned())?,
                )
            }
            "--power" => {
                power = Some(match v.as_str() {
                    "-20" => TxPower::Minus20Dbm,
                    "-10" => TxPower::Minus10Dbm,
                    "0" => TxPower::ZeroDbm,
                    _ => return Err("bad --power (use -20, -10 or 0)".into()),
                })
            }
            "--mac" => {
                mac = Some(match v.as_str() {
                    "csma" => MacKind::csma(),
                    "tdma" => MacKind::tdma(),
                    _ => return Err("bad --mac (use csma or tdma)".into()),
                })
            }
            "--routing" => {
                routing = Some(match v.as_str() {
                    "star" => None, // resolved after sites are known
                    "mesh" => Some(Routing::mesh()),
                    _ => return Err("bad --routing (use star or mesh)".into()),
                })
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let sites = sites.ok_or("simulate requires --sites")?;
    let power = power.ok_or("simulate requires --power")?;
    let mac = mac.ok_or("simulate requires --mac")?;
    let routing = routing.ok_or("simulate requires --routing")?;

    let placements: Vec<BodyLocation> = sites
        .iter()
        .map(|&i| BodyLocation::from_index(i).ok_or(format!("site index {i} out of range")))
        .collect::<Result<_, _>>()?;
    let routing = match routing {
        Some(mesh) => mesh,
        None => {
            let coordinator = placements
                .iter()
                .position(|&l| l == BodyLocation::Chest)
                .ok_or("star routing requires site 0 (chest) as coordinator")?;
            Routing::Star { coordinator }
        }
    };
    let cfg = NetworkConfig::new(placements, power, mac, routing);
    cfg.validate().map_err(|e| e.to_string())?;
    // Replication r always gets seed `base + r` in input order, so the
    // pooled average is bit-identical to `hi_net::simulate_averaged`.
    let workers = common.threads.min(common.runs as usize);
    let run_one = {
        let cfg = cfg.clone();
        let (t_sim, seed) = (common.t_sim, common.seed);
        move |r: u32| {
            simulate_stochastic(&cfg, ChannelParams::default(), t_sim, seed + u64::from(r))
        }
    };
    let replications: Result<Vec<_>, _> = if workers > 1 {
        let pool = hi_opt::exec::ThreadPool::new(workers);
        pool.par_map((0..common.runs).collect(), run_one)
            .into_iter()
            .collect()
    } else {
        (0..common.runs).map(run_one).collect()
    };
    let out = average_outcomes(&replications.map_err(|e| e.to_string())?);
    println!("configuration  : {}", cfg.summary());
    println!("PDR            : {:.2}%", out.pdr_percent());
    println!("lifetime       : {:.1} days", out.nlt_days);
    println!("worst power    : {:.3} mW", out.max_power_mw);
    println!(
        "latency        : mean {:.2} ms, jitter {:.2} ms, max {:.2} ms",
        out.latency.mean_ms, out.latency.std_ms, out.latency.max_ms
    );
    println!(
        "traffic        : {} generated, {} transmissions, {} collisions, {} drops",
        out.counts.generated,
        out.counts.transmissions,
        out.counts.collisions,
        out.counts.buffer_drops + out.counts.mac_drops
    );
    Ok(())
}

fn cmd_space() -> Result<(), String> {
    let space = DesignSpace::paper_default();
    let constraints = space.constraints();
    println!("design space (paper §4.1 defaults)");
    println!("  candidate sites      : 10 (see `hi-opt --help` for the index map)");
    println!("  required             : chest (n0 = 1)");
    println!(
        "  at least one of      : {{l-hip, r-hip}}, {{l-ankle, r-ankle}}, {{l-wrist, r-wrist}}"
    );
    println!(
        "  node count           : {} ..= {}",
        constraints.min_nodes, constraints.max_nodes
    );
    println!(
        "  feasible placements  : {}",
        constraints.feasible_placements().len()
    );
    println!("  stack choices        : 3 Tx powers x 2 MACs x 2 routings");
    println!("  feasible points      : {}", space.points().len());
    println!(
        "  unconstrained space  : {} (the paper's 12,288)",
        DesignSpace::unconstrained_size()
    );
    Ok(())
}

fn print_lint_section(title: &str, report: &hi_opt::lint::Report) {
    println!("{title}");
    if report.is_clean() {
        println!("  clean");
    } else {
        for finding in report.findings() {
            println!("  {finding}");
        }
    }
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    use hi_opt::lint::{lint_schedule, lint_space, Report, SpaceDim};

    let mut seed: u64 = 0xDAC_2017;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --seed")?;
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let constraints = TopologyConstraints::paper_default();
    let app = hi_opt::net::AppParams::default();
    let mut total = Report::new();

    // 1. The configuration space itself (paper §4.1 dimensions).
    let dims = [
        SpaceDim::new(
            "feasible placements",
            constraints.feasible_placements().len() as u64,
        ),
        SpaceDim::new("tx power", TxPower::ALL.len() as u64),
        SpaceDim::new("mac", 2),
        SpaceDim::new("routing", 2),
    ];
    let report = lint_space(&dims);
    print_lint_section("configuration space", &report);
    total.merge(report);

    // 2. The MILP encoding of the relaxed problem P-tilde, as built.
    let enc = MilpEncoding::new(&constraints, &app);
    let report = enc.lint_report();
    print_lint_section("milp encoding (no cuts)", &report);
    total.merge(report);

    // 3. The full Algorithm-1 cut ladder: every power cut RunMILP would
    //    ever add, checked for structural damage and redundancy.
    let mut enc = MilpEncoding::new(&constraints, &app);
    let mut levels = 0u32;
    loop {
        let (_, p) = enc.solve_pool().map_err(|e| e.to_string())?;
        match p {
            Some(p) => {
                levels += 1;
                enc.add_power_cut(p);
            }
            None => break,
        }
    }
    let report = enc.lint_report();
    print_lint_section(&format!("cut ladder ({levels} levels)"), &report);
    total.merge(report);

    // 4. A sample event schedule drained through the DES engine.
    let mut rng = hi_opt::des::rng::stream(seed, 7);
    let mut engine = hi_opt::des::Engine::new();
    for event in 0u32..64 {
        let t_ns = rng.gen_below(10_000_000_000); // within 10 s
        engine.schedule_at(hi_opt::des::SimTime::from_nanos(t_ns), event);
    }
    let mut times = Vec::new();
    while let Some((t, _)) = engine.pop() {
        times.push(t.as_secs_f64());
    }
    let report = lint_schedule(&times);
    print_lint_section("event schedule sample (64 events)", &report);
    total.merge(report);

    println!();
    println!(
        "summary: {} error(s), {} warning(s), {} info(s)",
        total.error_count(),
        total.warning_count(),
        total.info_count()
    );
    if total.has_errors() {
        // Error severity means a structurally broken artifact; make the
        // failure visible to scripts without dumping the usage banner.
        std::process::exit(1);
    }
    Ok(())
}
