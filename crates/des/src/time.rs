//! Integer simulated time.
//!
//! Times are nanoseconds since simulation start, stored in a `u64`:
//! exact comparisons, exact ordering, no floating-point drift in the event
//! queue. Conversions to and from seconds are provided for model code that
//! naturally works in SI units (e.g. packet durations from bit rates).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time (nanoseconds since t = 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Whole nanoseconds since t = 0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t = 0 as a float (lossy beyond ~2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from (non-negative, finite) milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on negative, NaN or overflowing input.
    pub fn from_millis(ms: f64) -> Self {
        SimDuration(secs_to_nanos(ms * 1e-3))
    }

    /// Creates a duration from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative, NaN or overflowing input.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let ns = secs * 1e9;
    assert!(
        ns <= u64::MAX as f64,
        "time overflows u64 nanoseconds: {secs} s"
    );
    ns.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow (negative duration)"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.0) + SimDuration::from_millis(250.0);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        let d = t - SimTime::from_secs(1.0);
        assert_eq!(d, SimDuration::from_millis(250.0));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10) * 3;
        assert_eq!(d.as_nanos(), 30_000);
        assert_eq!((d / 3).as_nanos(), 10_000);
    }

    #[test]
    #[should_panic(expected = "after self")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO - SimTime::from_secs(1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn saturating_add_clamps() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_secs(1.0));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(0.5).to_string(), "0.500000000s");
    }
}
