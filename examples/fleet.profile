# A demo fleet for `hi-opt serve`: four wearers of the paper's WBAN.
#
# alice, bob and carol share identical physics (default body geometry,
# channel and traffic), so the daemon's fleet cache runs their three
# jobs on ONE evaluation stream — every design point simulates once.
# Their different floors and engines are free: those are search knobs,
# not simulation knobs. dave's body and traffic differ, so he gets his
# own stream.

profile alice
pdrmin 0.9

profile bob
pdrmin 0.85

profile carol
pdrmin 0.9
engine exhaustive

profile dave
geometry 1.15              # 15% taller: every link distance scales
channel 2.0                # lossier environment: +2 dB path loss
traffic 25 64              # chattier sensors: 25 pkt/s of 64 bytes
pdrmin 0.9
