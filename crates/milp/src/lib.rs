//! A self-contained mixed integer linear programming (MILP) solver.
//!
//! This crate is the optimization substrate of the `hi-opt` workspace, the
//! open-source reproduction of *"Optimized Design of a Human Intranet
//! Network"* (DAC 2017). The paper drives its design-space exploration with
//! IBM CPLEX through PuLP; this crate replaces that proprietary dependency
//! with a from-scratch exact solver sized for the paper's problem class:
//! small, mostly-binary MILPs with a few dozen variables and constraints.
//!
//! # Components
//!
//! * [`Model`] — a builder-style modelling API with typed [`VarId`]s,
//!   [`LinExpr`] linear expressions (with operator overloading), and
//!   `<=`/`==`/`>=` constraints.
//! * [`simplex`] — a dense two-phase primal simplex for the LP relaxation,
//!   with Bland's anti-cycling rule.
//! * [`branch`] — best-first branch & bound over the integer variables.
//! * [`pool`] — enumeration of *all* optimal solutions over the binary
//!   variables via no-good cuts, mirroring the "set of candidate solutions"
//!   returned by line 3 of Algorithm 1 in the paper.
//! * [`presolve`] — activity-based bound tightening, run automatically
//!   before branch & bound.
//! * [`lp_format`] — CPLEX-LP-format export for debugging and interop.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y <= 4`, `x <= 3` with integer `x, y`:
//!
//! ```
//! use hi_milp::{Model, Sense, VarType};
//!
//! # fn main() -> Result<(), hi_milp::SolveError> {
//! let mut m = Model::new();
//! let x = m.add_var("x", VarType::Integer, 0.0, f64::INFINITY);
//! let y = m.add_var("y", VarType::Integer, 0.0, f64::INFINITY);
//! m.add_constraint(x + y, Sense::Le, 4.0);
//! m.add_constraint(x * 1.0, Sense::Le, 3.0);
//! m.maximize(x * 3.0 + y * 2.0);
//! let sol = m.solve()?;
//! assert!((sol.objective() - 11.0).abs() < 1e-6); // x = 3, y = 1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
mod error;
mod expr;
pub mod lp_format;
mod model;
pub mod pool;
pub mod presolve;
pub mod simplex;
mod solution;

pub use error::SolveError;
pub use expr::{LinExpr, Term};
pub use model::{Constraint, Model, Objective, Sense, VarType, Variable};
pub use solution::{Solution, SolveStatus};

/// Identifier of a decision variable within a [`Model`].
///
/// `VarId`s are handed out by [`Model::add_var`] and friends, are only
/// meaningful for the model that created them, and index solutions densely
/// (the first variable added is index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Returns the dense index of this variable inside its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Absolute tolerance used throughout the solver when comparing floating
/// point quantities (integrality, feasibility, and optimality checks).
pub const TOL: f64 = 1e-7;
