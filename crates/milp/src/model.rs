//! The modelling API: variables, constraints and objective.

use crate::{branch, LinExpr, Solution, SolveError, VarId, TOL};

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarType {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer in `[0, 1]`.
    Binary,
}

/// The comparison sense of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr == rhs`
    Eq,
    /// `expr >= rhs`
    Ge,
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// A decision variable's metadata.
#[derive(Debug, Clone)]
pub struct Variable {
    pub(crate) name: String,
    pub(crate) ty: VarType,
    pub(crate) lb: f64,
    pub(crate) ub: f64,
}

impl Variable {
    /// The variable's name, as given at creation.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's domain type.
    pub fn var_type(&self) -> VarType {
        self.ty
    }

    /// The lower bound (possibly `-inf`).
    pub fn lower_bound(&self) -> f64 {
        self.lb
    }

    /// The upper bound (possibly `+inf`).
    pub fn upper_bound(&self) -> f64 {
        self.ub
    }
}

/// A linear constraint `expr (<=|==|>=) rhs`.
///
/// The expression's additive constant is folded into `rhs` at construction,
/// so `expr.constant()` is always zero here.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) sense: Sense,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// The left-hand-side expression (constant-free).
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The comparison sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The right-hand-side constant.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Checks whether a dense assignment satisfies this constraint within
    /// tolerance `tol`.
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval(values);
        match self.sense {
            Sense::Le => lhs <= self.rhs + tol,
            Sense::Ge => lhs >= self.rhs - tol,
            Sense::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A mixed integer linear program under construction.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Option<(Objective, LinExpr)>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with an explicit type and bounds, returning its id.
    ///
    /// For `VarType::Binary` the given bounds are intersected with `[0, 1]`.
    pub fn add_var(&mut self, name: &str, ty: VarType, lb: f64, ub: f64) -> VarId {
        let (lb, ub) = match ty {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.to_owned(),
            ty,
            lb,
            ub,
        });
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: &str) -> VarId {
        self.add_var(name, VarType::Binary, 0.0, 1.0)
    }

    /// Adds an integer variable with the given bounds.
    pub fn add_integer(&mut self, name: &str, lb: f64, ub: f64) -> VarId {
        self.add_var(name, VarType::Integer, lb, ub)
    }

    /// Adds a continuous variable with the given bounds.
    pub fn add_continuous(&mut self, name: &str, lb: f64, ub: f64) -> VarId {
        self.add_var(name, VarType::Continuous, lb, ub)
    }

    /// Adds the constraint `expr (sense) rhs`.
    ///
    /// Any constant inside `expr` is moved to the right-hand side.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, sense: Sense, rhs: f64) {
        let mut expr = expr.into();
        let c = expr.constant();
        expr.add_constant(-c);
        self.constraints.push(Constraint {
            expr,
            sense,
            rhs: rhs - c,
        });
    }

    /// Sets the objective to minimize `expr`.
    pub fn minimize(&mut self, expr: impl Into<LinExpr>) {
        self.objective = Some((Objective::Minimize, expr.into()));
    }

    /// Sets the objective to maximize `expr`.
    pub fn maximize(&mut self, expr: impl Into<LinExpr>) {
        self.objective = Some((Objective::Maximize, expr.into()));
    }

    /// Number of variables in the model.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints in the model.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Metadata for a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// The model's constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective direction and expression, if set.
    pub fn objective(&self) -> Option<(&Objective, &LinExpr)> {
        self.objective.as_ref().map(|(d, e)| (d, e))
    }

    /// The ids of all integer-constrained (integer or binary) variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.ty, VarType::Integer | VarType::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Tightens a variable's bounds in place (used by branch & bound and by
    /// callers that refine a model between solves).
    pub fn set_bounds(&mut self, id: VarId, lb: f64, ub: f64) {
        self.vars[id.0].lb = lb;
        self.vars[id.0].ub = ub;
    }

    /// Checks a dense assignment against every constraint, every bound and
    /// every integrality requirement.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if matches!(v.ty, VarType::Integer | VarType::Binary) && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(values, tol))
    }

    /// Validates structural invariants (finite coefficients, ordered
    /// bounds, an objective being present).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SolveError`].
    pub fn validate(&self) -> Result<(), SolveError> {
        for v in &self.vars {
            if v.lb > v.ub + TOL {
                return Err(SolveError::InvalidBounds {
                    var: v.name.clone(),
                });
            }
        }
        let obj = self
            .objective
            .as_ref()
            .ok_or(SolveError::MissingObjective)?;
        let finite_expr =
            |e: &LinExpr| e.iter().all(|(_, c)| c.is_finite()) && e.constant().is_finite();
        if !finite_expr(&obj.1) {
            return Err(SolveError::NonFiniteCoefficient);
        }
        for c in &self.constraints {
            if !finite_expr(&c.expr) || !c.rhs.is_finite() {
                return Err(SolveError::NonFiniteCoefficient);
            }
        }
        Ok(())
    }

    /// Converts the model into the static analyzer's IR.
    ///
    /// Constraints are named `c0`, `c1`, ... in insertion order; variables
    /// keep their given names.
    pub fn to_lint_model(&self) -> hi_lint::LintModel {
        let mut lm = hi_lint::LintModel::new();
        for v in &self.vars {
            lm.var(
                &v.name,
                v.lb,
                v.ub,
                matches!(v.ty, VarType::Integer | VarType::Binary),
            );
        }
        for (i, c) in self.constraints.iter().enumerate() {
            let terms: Vec<(usize, f64)> = c.expr.iter().map(|(id, coeff)| (id.0, coeff)).collect();
            let sense = match c.sense {
                Sense::Le => hi_lint::RowSense::Le,
                Sense::Eq => hi_lint::RowSense::Eq,
                Sense::Ge => hi_lint::RowSense::Ge,
            };
            lm.row(&format!("c{i}"), terms, sense, c.rhs);
        }
        if let Some((_, expr)) = &self.objective {
            lm.objective = expr.iter().map(|(id, coeff)| (id.0, coeff)).collect();
        }
        lm
    }

    /// Runs the static analyzer ([`hi_lint::analyze`]) over the model.
    pub fn lint(&self) -> hi_lint::Report {
        hi_lint::analyze(&self.to_lint_model())
    }

    /// Solves the model exactly (branch & bound over the LP relaxation).
    ///
    /// The static analyzer runs first: error-severity findings abort the
    /// solve with [`SolveError::Lint`], while warnings and infos are
    /// carried on the returned solution
    /// ([`Solution::lint_findings`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] on malformed models or if solver limits are
    /// hit. Infeasibility and unboundedness are *not* errors: they are
    /// reported through [`Solution::status`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        let mut solve_span = hi_trace::span("milp.solve");
        let t_begin = hi_trace::now_ns();
        self.validate()?;
        let mut report = self.lint();
        // Canonical order + dedup, so the findings riding on the solution
        // are deterministic however many passes produced them.
        report.normalize();
        if report.has_errors() {
            let first = report
                .with_severity(hi_lint::Severity::Error)
                .next()
                .expect("has_errors implies an error finding")
                .to_string();
            return Err(SolveError::Lint {
                first,
                errors: report.error_count(),
            });
        }
        let mut solution = branch::solve(self)?;
        solution.set_lint_findings(report.into_findings());
        hi_trace::counter(hi_trace::wellknown::MILP_SOLVES, 1);
        if let (Some(t0), Some(t1)) = (t_begin, hi_trace::now_ns()) {
            hi_trace::histogram(hi_trace::wellknown::MILP_SOLVE_NS, t1.saturating_sub(t0));
        }
        if solve_span.is_recording() {
            solve_span.arg("status", format!("{:?}", solution.status()));
        }
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folds_into_rhs() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(x + 3.0, Sense::Le, 5.0);
        let c = &m.constraints()[0];
        assert_eq!(c.rhs(), 2.0);
        assert_eq!(c.expr().constant(), 0.0);
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::new();
        let x = m.add_var("x", VarType::Binary, -5.0, 7.0);
        assert_eq!(m.var(x).lower_bound(), 0.0);
        assert_eq!(m.var(x).upper_bound(), 1.0);
    }

    #[test]
    fn validate_catches_crossed_bounds() {
        let mut m = Model::new();
        m.add_continuous("x", 2.0, 1.0);
        m.minimize(LinExpr::constant_expr(0.0));
        assert!(matches!(
            m.validate(),
            Err(SolveError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn validate_requires_objective() {
        let m = Model::new();
        assert_eq!(m.validate(), Err(SolveError::MissingObjective));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.minimize(x * f64::NAN);
        assert_eq!(m.validate(), Err(SolveError::NonFiniteCoefficient));
    }

    #[test]
    fn feasibility_check_covers_integrality() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint(x * 1.0, Sense::Le, 5.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[3.5], 1e-9));
        assert!(!m.is_feasible(&[6.0], 1e-9));
    }

    #[test]
    fn integer_vars_lists_binaries_too() {
        let mut m = Model::new();
        let _c = m.add_continuous("c", 0.0, 1.0);
        let b = m.add_binary("b");
        let i = m.add_integer("i", 0.0, 3.0);
        assert_eq!(m.integer_vars(), vec![b, i]);
    }
}
