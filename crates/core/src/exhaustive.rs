//! Exhaustive-search baseline: simulate every feasible configuration.
//!
//! This is the reference the paper measures its "87% reduction in the
//! number of required simulations" against.

use crate::algorithm1::Problem;
use crate::evaluator::{Evaluation, Evaluator};
use crate::point::DesignPoint;

/// Result of an exhaustive sweep.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    /// The lifetime-optimal reliability-feasible point, if any.
    pub best: Option<(DesignPoint, Evaluation)>,
    /// Every `(point, evaluation)` pair, in enumeration order — the raw
    /// material of the paper's Fig. 3 scatter.
    pub evaluations: Vec<(DesignPoint, Evaluation)>,
    /// Unique simulations run.
    pub simulations: u64,
}

/// Evaluates every point of the problem's design space and returns the
/// best feasible one along with the full sweep.
pub fn exhaustive_search(problem: &Problem, evaluator: &mut dyn Evaluator) -> ExhaustiveOutcome {
    let before = evaluator.unique_evaluations();
    let mut best: Option<(DesignPoint, Evaluation)> = None;
    let mut evaluations = Vec::new();
    for point in problem.space.points() {
        let eval = evaluator.evaluate(&point);
        if eval.pdr >= problem.pdr_min {
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| eval.power_mw < b.power_mw);
            if better {
                best = Some((point, eval));
            }
        }
        evaluations.push((point, eval));
    }
    ExhaustiveOutcome {
        best,
        evaluations,
        simulations: evaluator.unique_evaluations() - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use crate::power::analytic_power_mw;
    use hi_net::AppParams;

    fn oracle(point: &DesignPoint) -> Evaluation {
        let app = AppParams::default();
        let power = analytic_power_mw(point, &app);
        Evaluation {
            pdr: if point.tx_power == hi_net::TxPower::ZeroDbm {
                0.95
            } else {
                0.5
            },
            nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
            power_mw: power,
        }
    }

    #[test]
    fn sweeps_whole_space() {
        let problem = Problem::paper_default(0.9);
        let mut ev = FnEvaluator::new(oracle);
        let out = exhaustive_search(&problem, &mut ev);
        assert_eq!(out.evaluations.len(), 1320);
        assert_eq!(out.simulations, 1320);
        let (pt, _) = out.best.unwrap();
        // Cheapest feasible: 4-node star at 0 dBm.
        assert_eq!(pt.tx_power, hi_net::TxPower::ZeroDbm);
        assert_eq!(pt.num_nodes(), 4);
    }

    #[test]
    fn reports_infeasible_when_nothing_qualifies() {
        let problem = Problem::paper_default(0.99);
        let mut ev = FnEvaluator::new(oracle);
        let out = exhaustive_search(&problem, &mut ev);
        assert!(out.best.is_none());
        assert_eq!(out.evaluations.len(), 1320);
    }
}
