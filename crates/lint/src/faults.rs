//! Static validation of fault-scenario specifications.
//!
//! The simulator deliberately accepts degenerate fault windows (an
//! inverted window is simply inert, a window past the horizon never
//! fires) so that scenario files stay replayable across tools. This pass
//! is where those specs get *explained* before a run spends hours
//! simulating them:
//!
//! * **HL033** — a window that closes before it opens (or has a NaN/−∞
//!   edge) is inert; the scenario does not do what it reads as (error);
//! * **HL034** — two windows on the same entity overlap, so the first
//!   recovery revives the node mid-outage (warning);
//! * **HL035** — a window opening at/after the simulation horizon can
//!   never take effect (warning);
//! * **HL036** — the scenario disables the hub node, taking the entire
//!   star network down for the window (warning — legal, but usually a
//!   site-index typo rather than an intended doomsday case).
//!
//! Like the rest of the crate this module is dependency-free: callers
//! lower their scenario types into [`FaultWindowSpec`]s (plain seconds).

use crate::report::{Finding, Report, RuleId, Span};

/// What a fault window acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEntity {
    /// One node/site (outages, depletions).
    Node(usize),
    /// One link between two sites, unordered (blackouts).
    Link(usize, usize),
    /// The shared medium (interference bursts).
    Medium,
}

impl FaultEntity {
    /// Canonical form: link endpoints sorted, so `Link(2, 5)` and
    /// `Link(5, 2)` denote the same entity.
    fn canonical(self) -> Self {
        match self {
            FaultEntity::Link(a, b) if a > b => FaultEntity::Link(b, a),
            other => other,
        }
    }
}

impl std::fmt::Display for FaultEntity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.canonical() {
            FaultEntity::Node(site) => write!(f, "site {site}"),
            FaultEntity::Link(a, b) => write!(f, "link {a}-{b}"),
            FaultEntity::Medium => f.write_str("medium"),
        }
    }
}

/// One fault window, lowered to plain seconds for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindowSpec {
    /// Where the window came from (scenario name, fault kind) — quoted in
    /// findings so reports stay actionable across multi-scenario files.
    pub label: String,
    /// What the window acts on.
    pub entity: FaultEntity,
    /// Window start in seconds.
    pub from_s: f64,
    /// Window end in seconds; `f64::INFINITY` means open-ended.
    pub until_s: f64,
}

impl FaultWindowSpec {
    fn is_inverted(&self) -> bool {
        !self.from_s.is_finite() || self.until_s.is_nan() || self.until_s < self.from_s
    }

    fn overlaps(&self, other: &Self) -> bool {
        // Half-open [from, until): touching windows don't overlap.
        self.from_s < other.until_s && other.from_s < self.until_s
    }
}

/// Lints fault windows against a simulation horizon (seconds) and, when
/// the analyzed design is a star, its hub site.
pub fn lint_faults(windows: &[FaultWindowSpec], horizon_s: f64, hub: Option<usize>) -> Report {
    let mut report = Report::new();
    for (index, w) in windows.iter().enumerate() {
        let span = Span::Event { index };
        if w.is_inverted() {
            report.push(Finding::new(
                RuleId::InvertedFaultWindow,
                span.clone(),
                format!(
                    "{}: window [{}, {}) on {} never activates — it is inert, \
                     not a fault",
                    w.label, w.from_s, w.until_s, w.entity
                ),
            ));
            continue; // downstream rules would only repeat the confusion
        }
        if w.from_s >= horizon_s {
            report.push(Finding::new(
                RuleId::FaultPastHorizon,
                span.clone(),
                format!(
                    "{}: window opens at {} s but the simulation ends at {} s \
                     — it can never take effect",
                    w.label, w.from_s, horizon_s
                ),
            ));
        }
        if let (FaultEntity::Node(site), Some(hub_site)) = (w.entity, hub) {
            if site == hub_site {
                report.push(Finding::new(
                    RuleId::HubDisabled,
                    span.clone(),
                    format!(
                        "{}: site {site} is the star hub — this window takes \
                         the whole network down",
                        w.label
                    ),
                ));
            }
        }
        for (earlier_index, earlier) in windows[..index].iter().enumerate() {
            if earlier.is_inverted()
                || earlier.entity.canonical() != w.entity.canonical()
                || !earlier.overlaps(w)
            {
                continue;
            }
            report.push(Finding::new(
                RuleId::OverlappingFaultWindows,
                span.clone(),
                format!(
                    "{}: window [{}, {}) on {} overlaps window #{earlier_index} \
                     [{}, {}) — the first recovery revives it mid-outage",
                    w.label, w.from_s, w.until_s, w.entity, earlier.from_s, earlier.until_s
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(entity: FaultEntity, from_s: f64, until_s: f64) -> FaultWindowSpec {
        FaultWindowSpec {
            label: "test/outage".into(),
            entity,
            from_s,
            until_s,
        }
    }

    #[test]
    fn clean_scenario_is_clean() {
        let windows = [
            spec(FaultEntity::Node(3), 1.0, 2.0),
            spec(FaultEntity::Node(3), 2.0, 3.0), // touching, not overlapping
            spec(FaultEntity::Link(1, 4), 0.0, f64::INFINITY),
            spec(FaultEntity::Medium, 5.0, 6.0),
        ];
        let report = lint_faults(&windows, 600.0, Some(0));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn inverted_and_nan_windows_are_errors() {
        for w in [
            spec(FaultEntity::Node(1), 5.0, 2.0),
            spec(FaultEntity::Node(1), f64::NAN, 2.0),
            spec(FaultEntity::Node(1), 1.0, f64::NAN),
            spec(FaultEntity::Node(1), f64::INFINITY, f64::INFINITY),
        ] {
            let report = lint_faults(std::slice::from_ref(&w), 600.0, None);
            assert!(report.has_rule(RuleId::InvertedFaultWindow), "{w:?}");
            assert!(report.has_errors());
        }
    }

    #[test]
    fn overlap_detects_unordered_link_pairs() {
        let windows = [
            spec(FaultEntity::Link(5, 2), 0.0, 10.0),
            spec(FaultEntity::Link(2, 5), 4.0, 6.0),
        ];
        let report = lint_faults(&windows, 600.0, None);
        assert!(report.has_rule(RuleId::OverlappingFaultWindows));
        // Different entities never overlap.
        let windows = [
            spec(FaultEntity::Node(1), 0.0, 10.0),
            spec(FaultEntity::Node(2), 0.0, 10.0),
            spec(FaultEntity::Link(1, 2), 0.0, 10.0),
            spec(FaultEntity::Medium, 0.0, 10.0),
        ];
        assert!(lint_faults(&windows, 600.0, None).is_clean());
    }

    #[test]
    fn inverted_windows_do_not_double_report_as_overlapping() {
        let windows = [
            spec(FaultEntity::Node(1), 0.0, 10.0),
            spec(FaultEntity::Node(1), 8.0, 2.0), // inverted
        ];
        let report = lint_faults(&windows, 600.0, None);
        assert!(report.has_rule(RuleId::InvertedFaultWindow));
        assert!(!report.has_rule(RuleId::OverlappingFaultWindows));
    }

    #[test]
    fn windows_past_the_horizon_warn() {
        let report = lint_faults(&[spec(FaultEntity::Node(1), 600.0, 700.0)], 600.0, None);
        assert!(report.has_rule(RuleId::FaultPastHorizon));
        let report = lint_faults(&[spec(FaultEntity::Node(1), 599.9, 700.0)], 600.0, None);
        assert!(
            !report.has_rule(RuleId::FaultPastHorizon),
            "overhang is fine"
        );
    }

    #[test]
    fn disabling_the_hub_warns_only_on_the_hub() {
        let windows = [
            spec(FaultEntity::Node(0), 1.0, 2.0),
            spec(FaultEntity::Node(3), 1.0, 2.0),
        ];
        let report = lint_faults(&windows, 600.0, Some(0));
        let hub_findings: Vec<_> = report
            .findings()
            .iter()
            .filter(|f| f.rule == RuleId::HubDisabled)
            .collect();
        assert_eq!(hub_findings.len(), 1);
        assert_eq!(hub_findings[0].span, Span::Event { index: 0 });
        // Mesh designs have no hub: the rule never fires.
        assert!(lint_faults(&windows, 600.0, None).is_clean());
    }
}
