//! Property-based tests of the event engine: delivery order, FIFO ties,
//! cancellation and horizon semantics under arbitrary schedules.

use hi_des::{Engine, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delivery_is_sorted_and_complete(times in prop::collection::vec(0u64..1_000, 0..64)) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut delivered = Vec::new();
        while let Some((t, id)) = engine.pop() {
            delivered.push((t.as_nanos(), id));
        }
        // Complete: every scheduled event arrives exactly once.
        prop_assert_eq!(delivered.len(), times.len());
        // Sorted by time, FIFO among equal timestamps (ids ascend within
        // the same instant because we scheduled them in id order).
        for w in delivered.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
            }
        }
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..1_000, 1..64),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut engine = Engine::new();
        let mut keep = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let h = engine.schedule_at(SimTime::from_nanos(t), i);
            if *cancel_mask.get(i).unwrap_or(&false) {
                engine.cancel(h);
            } else {
                keep.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, id)) = engine.pop() {
            delivered.push(id);
        }
        delivered.sort_unstable();
        prop_assert_eq!(delivered, keep);
    }

    #[test]
    fn horizon_is_a_clean_cut(
        times in prop::collection::vec(0u64..1_000, 1..64),
        horizon in 0u64..1_000,
    ) {
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::from_nanos(horizon));
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut count = 0usize;
        while let Some((t, _)) = engine.pop() {
            prop_assert!(t.as_nanos() <= horizon);
            count += 1;
        }
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn clock_is_monotone_under_interleaved_scheduling(
        seeds in prop::collection::vec(0u64..100, 1..32),
    ) {
        // Re-schedule from inside the run loop (events spawn events).
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::from_nanos(5_000));
        for (i, &s) in seeds.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(s), i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, gen)) = engine.pop() {
            prop_assert!(t >= last);
            last = t;
            if gen < 1_000 {
                // Spawn a follow-up event a pseudo-random delay ahead.
                let delay = (gen * 37 + 11) % 400 + 1;
                engine.schedule_at(
                    SimTime::from_nanos(t.as_nanos() + delay),
                    gen + 1_000,
                );
            }
        }
    }
}
